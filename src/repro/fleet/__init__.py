"""Fleet-scale ruleset sharding.

Composes alphabet-compatible DFAs into product/union shard machines so a
fleet scan pays **one input pass per shard** instead of one per ruleset,
then demultiplexes per-ruleset outcomes (final states, accepts, report
events) out of the product state — bit-identical to the per-machine
loop.  See :mod:`repro.fleet.shard` for the machine/demux layer and
:mod:`repro.fleet.planner` for the budgeted packing strategy.
"""

from repro.fleet.planner import ShardPlan, plan_shards
from repro.fleet.shard import (
    SHARD_FORMAT_VERSION,
    ShardMachine,
    build_shard,
    shard_key,
)

__all__ = [
    "SHARD_FORMAT_VERSION",
    "ShardMachine",
    "ShardPlan",
    "build_shard",
    "plan_shards",
    "shard_key",
]
