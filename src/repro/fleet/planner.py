"""Shard planner: pack a fleet of DFAs into budgeted product shards.

Packing is a bin-covering problem with an unusual cost function: a
shard's "size" is the *reachable product* state count of its members,
which only the construction itself can price (keyword machines compose
additively, adversarial machines multiplicatively).  So the planner uses
the budgeted pairwise fold in :mod:`repro.fleet.shard` as its exact cost
model — the trial build *is* the build, and a
:class:`~repro.automata.ops.ProductSizeExceeded` during a fold seals the
current shard and starts the next one.  No cost is wasted on products
that are later discarded.

Budget defaults to ``DENSE_MAX_STATES``: a shard that fits runs the
dense frontier kernel, the fastest backend in the repo.  Machines that
individually exceed the budget become *singleton fallback* shards — they
scan exactly as the per-machine loop did (same Dfa object, same compiled
artifact), so sharding is never a regression.

Two secondary limits keep shards schedulable:

* ``max_members`` caps members per shard (default: the half-core budget
  from :class:`~repro.hardware.allocation.APConfig`, so one planning
  round never builds more shards than cores it could retire them on).
* machines are packed in ascending state-count order within each
  alphabet group — small machines fold cheaply and pack densely; one
  giant machine then at worst closes a shard early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.automata.dfa import Dfa
from repro.automata.ops import ProductSizeExceeded
from repro.fleet.shard import ShardMachine, _ShardAccumulator
from repro.hardware.allocation import APConfig
from repro.kernels.batch import DENSE_MAX_STATES

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """The planner's output: shards plus the accounting behind them.

    ``singleton_fallbacks`` lists fleet indices of machines that were
    *forced* into singleton shards because they individually exceed the
    budget — distinct from machines that merely ended up alone when a
    fold overflowed.
    """

    shards: Tuple[ShardMachine, ...]
    max_states: int
    max_members: int
    singleton_fallbacks: Tuple[int, ...] = field(default=())

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_members(self) -> int:
        return sum(s.n_members for s in self.shards)

    @property
    def product_states(self) -> int:
        """Total states across all shard machines (dense-table cost)."""
        return sum(s.num_states for s in self.shards)

    def half_cores_per_shard(self, config: Optional[APConfig] = None) -> int:
        """Even half-core split across shards under an AP budget."""
        cfg = config if config is not None else APConfig()
        return max(1, cfg.total_half_cores // max(1, self.n_shards))

    def rounds(self, config: Optional[APConfig] = None) -> int:
        """Scan rounds needed when shards outnumber half-cores."""
        cfg = config if config is not None else APConfig()
        cores = max(1, cfg.total_half_cores)
        return -(-self.n_shards // cores)

    def member_to_shard(self) -> Dict[int, Tuple[int, int]]:
        """Map fleet index -> (shard number, member column)."""
        out: Dict[int, Tuple[int, int]] = {}
        for s, shard in enumerate(self.shards):
            for m, idx in enumerate(shard.member_indices):
                out[idx] = (s, m)
        return out


def plan_shards(
    dfas: Sequence[Dfa],
    max_states: Optional[int] = None,
    max_members: Optional[int] = None,
    config: Optional[APConfig] = None,
) -> ShardPlan:
    """Pack ``dfas`` into budgeted shards; every machine lands somewhere.

    Machines are grouped by alphabet size (products require a shared
    alphabet), sorted by ascending state count within each group, then
    greedily folded into the open shard until the budgeted fold raises
    :class:`ProductSizeExceeded` or ``max_members`` is reached — either
    seals the shard and the next machine opens a fresh one.  Machines
    whose *own* state count already exceeds ``max_states`` skip packing
    entirely and become singleton fallback shards.
    """
    if not dfas:
        raise ValueError("cannot plan shards for an empty fleet")
    budget = DENSE_MAX_STATES if max_states is None else int(max_states)
    if budget < 1:
        raise ValueError("max_states must be positive")
    cfg = config if config is not None else APConfig()
    members_cap = cfg.total_half_cores if max_members is None else int(max_members)
    members_cap = max(1, members_cap)

    groups: Dict[int, List[int]] = {}
    for i, dfa in enumerate(dfas):
        groups.setdefault(dfa.alphabet_size, []).append(i)

    shards: List[ShardMachine] = []
    fallbacks: List[int] = []
    for alphabet in sorted(groups):
        order = sorted(groups[alphabet], key=lambda i: dfas[i].num_states)
        packable: List[int] = []
        for i in order:
            if dfas[i].num_states > budget:
                fallbacks.append(i)
                shards.append(_ShardAccumulator(dfas[i], i).finish())
            else:
                packable.append(i)
        acc: Optional[_ShardAccumulator] = None
        for i in packable:
            if acc is None:
                acc = _ShardAccumulator(dfas[i], i)
                continue
            if acc.n_members >= members_cap:
                shards.append(acc.finish())
                acc = _ShardAccumulator(dfas[i], i)
                continue
            try:
                acc.extend(dfas[i], i, budget)
            except ProductSizeExceeded:
                # seal what fits; the rejected member opens the next shard
                shards.append(acc.finish())
                acc = _ShardAccumulator(dfas[i], i)
        if acc is not None:
            shards.append(acc.finish())

    plan = ShardPlan(
        shards=tuple(shards),
        max_states=budget,
        max_members=members_cap,
        singleton_fallbacks=tuple(sorted(fallbacks)),
    )
    if obs.is_enabled():
        obs.counter("fleet_shards_built_total").inc(plan.n_shards)
        obs.counter("fleet_shard_members_total").inc(plan.n_members)
        obs.counter("fleet_shard_singleton_fallbacks_total").inc(
            len(plan.singleton_fallbacks)
        )
        for s, shard in enumerate(plan.shards):
            obs.gauge("fleet_shard_states", shard=s).set(shard.num_states)
            obs.gauge("fleet_shard_member_count", shard=s).set(shard.n_members)
    return plan
