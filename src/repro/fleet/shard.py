"""Composable product/union shard machines for fleet-scale scanning.

The per-machine fleet loop pays one full input pass per ruleset.  A
*shard* machine amortizes that pass: the reachable product of several
alphabet-compatible member DFAs runs the input **once**, and every
member's outcome — final state, accept decision, report events — is
demultiplexed back out of the product state afterwards.  This is the
composable state→state-function view of Sin'ya & Matsuzaki's
*Simultaneous Finite Automata* and Pritchard's divide-and-conquer
symmetric FSA applied across *machines* instead of across input
segments: the product state is exactly the tuple of member states, so
demuxed results are bit-identical to running each member alone.

Construction folds members in pairwise with a **vectorized reachable
product**: BFS over pair codes (``a_state * |B| + b_state``) using one
fancy-indexed gather per frontier level, aborting with
:class:`~repro.automata.ops.ProductSizeExceeded` the moment the
reachable set outgrows the caller's budget — product sizes explode
multiplicatively in the worst case, and the planner
(:mod:`repro.fleet.planner`) uses that early abort as its exact cost
model.  Literal-heavy rulesets (ExactMatch / Snort-style keyword
machines) compose *additively* in practice, which is what makes
fleet-scale sharding pay.

A shard is a content-addressed artifact: :func:`shard_key` digests the
**sorted** member fingerprints, so member order never changes identity
and two fleets containing the same rulesets share shard artifacts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.automata.dfa import Dfa, as_symbols
from repro.automata.ops import ProductSizeExceeded

__all__ = [
    "SHARD_FORMAT_VERSION",
    "ShardMachine",
    "build_shard",
    "shard_key",
]

#: bumped whenever the shard artifact layout changes; part of the key
SHARD_FORMAT_VERSION = 1


def shard_key(member_fingerprints: Sequence[Tuple]) -> str:
    """Content address of a shard: digest of the sorted member identities.

    Sorting makes the key order-insensitive — a shard is identified by
    *which* rulesets it composes, not by the order the planner happened
    to fold them in.
    """
    payload = repr((SHARD_FORMAT_VERSION, tuple(sorted(member_fingerprints))))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _extend_product(
    table: np.ndarray,
    start: int,
    demux: np.ndarray,
    member: Dfa,
    max_states: Optional[int],
) -> Tuple[np.ndarray, int, np.ndarray]:
    """One pairwise fold step: ``(current product) x member``, budgeted.

    Returns the new ``(table, start, demux)`` triple over the *reachable*
    pair set only.  Raises :class:`ProductSizeExceeded` during the BFS —
    before any table is materialized — when the reachable set outgrows
    ``max_states``.
    """
    if table.shape[0] != member.alphabet_size:
        raise ValueError("shard members must share one alphabet")
    nb = member.num_states
    a64 = table.astype(np.int64)
    b64 = member.transitions.astype(np.int64)
    start_code = np.int64(start) * nb + member.start
    reach = np.asarray([start_code], dtype=np.int64)
    frontier = reach
    while frontier.size:
        qa = frontier // nb
        qb = frontier % nb
        nxt = np.unique(a64[:, qa] * nb + b64[:, qb])
        fresh = nxt[~np.isin(nxt, reach, assume_unique=True)]
        if not fresh.size:
            break
        reach = np.union1d(reach, fresh)
        if max_states is not None and reach.size > max_states:
            raise ProductSizeExceeded(
                f"reachable shard product exceeds {max_states} states "
                f"({table.shape[1]} x {nb} components)"
            )
        frontier = fresh
    qa = reach // nb
    qb = reach % nb
    targets = a64[:, qa] * nb + b64[:, qb]
    new_table = np.searchsorted(reach, targets).astype(np.int32)
    new_start = int(np.searchsorted(reach, start_code))
    new_demux = np.concatenate(
        [demux[qa], qb.astype(np.int32)[:, None]], axis=1
    )
    return new_table, new_start, new_demux


@dataclass
class ShardMachine:
    """One product/union shard: a product DFA plus its demux structure.

    Attributes
    ----------
    dfa:
        The shard's executable machine.  Multi-member shards carry the
        reachable product (accepting = *any* member accepts, the union
        semantics a scan needs to fire report events); singleton shards
        carry the member itself, so their compiled artifacts are shared
        with the per-machine loop.
    member_indices:
        Fleet positions of the members, in fold (column) order.
    member_fingerprints:
        :attr:`Dfa.fingerprint` per member, same order.
    demux:
        ``(num_states, n_members) int32``; ``demux[p, m]`` is member
        ``m``'s state when the product is in state ``p`` — the inverse of
        the product construction, applied after the single input pass.
    member_accept:
        ``(n_members, num_states) bool``; ``member_accept[m, p]`` marks
        product states whose ``m``-component is accepting.  Report demux
        filters the product's any-member events through it.
    key:
        :func:`shard_key` of the sorted member fingerprints.
    """

    dfa: Dfa
    member_indices: Tuple[int, ...]
    member_fingerprints: Tuple[Tuple, ...]
    demux: np.ndarray
    member_accept: np.ndarray
    key: str

    @property
    def n_members(self) -> int:
        return len(self.member_indices)

    @property
    def num_states(self) -> int:
        return self.dfa.num_states

    @property
    def nbytes(self) -> int:
        """Approximate artifact footprint (tables + demux structure)."""
        return (int(self.dfa.transitions.nbytes) + int(self.demux.nbytes)
                + int(self.member_accept.nbytes))

    def member_states(self, product_state: int) -> np.ndarray:
        """The tuple of member states encoded by one product state."""
        return self.demux[int(product_state)]

    def demux_finals(self, product_state: int) -> Dict[int, int]:
        """Per-member final states from the product's final state.

        Keys are the shard's :attr:`member_indices` (fleet positions);
        values are bit-identical to each member's own sequential run.
        """
        row = self.demux[int(product_state)]
        obs.counter("fleet_demux_machines_total").inc(self.n_members)
        return {idx: int(row[m]) for m, idx in enumerate(self.member_indices)}

    def scan_sequential(
        self, symbols, start_state: Optional[int] = None
    ) -> Tuple[int, Dict[int, List[Tuple[int, int]]]]:
        """One sequential product pass: final state + demuxed reports.

        The single loop is the whole point: one input traversal serves
        every member.  Returns ``(final_product_state, reports)`` where
        ``reports[member_index]`` is exactly the ``(offset, state)``
        event list the member's own :meth:`Dfa.run_reports` would emit.
        """
        syms = as_symbols(symbols)
        cur = self.dfa.start if start_state is None else int(start_state)
        table = self.dfa.transitions
        acc = self.dfa.accepting_mask
        demux = self.demux
        member_accept = self.member_accept
        members = self.member_indices
        out: Dict[int, List[Tuple[int, int]]] = {idx: [] for idx in members}
        n_events = 0
        for i, sym in enumerate(syms.tolist()):
            cur = int(table[sym, cur])
            if acc[cur]:
                row = demux[cur]
                for m, idx in enumerate(members):
                    if member_accept[m, cur]:
                        out[idx].append((i, int(row[m])))
                        n_events += 1
        obs.counter("fleet_demux_reports_total").inc(n_events)
        return cur, out


def build_shard(
    dfas: Sequence[Dfa],
    indices: Optional[Sequence[int]] = None,
    max_states: Optional[int] = None,
) -> ShardMachine:
    """Fold a member list into one :class:`ShardMachine`.

    ``indices`` names the members' fleet positions (defaults to
    ``0..len-1``); ``max_states`` bounds every intermediate *and* the
    final reachable product (:class:`ProductSizeExceeded` on overflow).
    """
    if not dfas:
        raise ValueError("a shard needs at least one member")
    if indices is None:
        indices = list(range(len(dfas)))
    if len(indices) != len(dfas):
        raise ValueError("one fleet index per member required")
    acc = _ShardAccumulator(dfas[0], int(indices[0]))
    for dfa, idx in zip(dfas[1:], list(indices)[1:]):
        acc.extend(dfa, int(idx), max_states)
    return acc.finish()


class _ShardAccumulator:
    """Incremental shard construction: one pairwise budgeted fold per add.

    The planner drives this directly — a failed :meth:`extend` raises
    :class:`ProductSizeExceeded` *without mutating* the accumulator, so
    the current shard can be sealed and the rejected member starts the
    next one.
    """

    def __init__(self, dfa: Dfa, index: int):
        self.dfas: List[Dfa] = [dfa]
        self.indices: List[int] = [index]
        self.table: np.ndarray = dfa.transitions
        self.start: int = dfa.start
        self.demux: np.ndarray = np.arange(
            dfa.num_states, dtype=np.int32
        )[:, None]

    @property
    def n_members(self) -> int:
        return len(self.dfas)

    @property
    def num_states(self) -> int:
        return int(self.table.shape[1])

    def extend(self, dfa: Dfa, index: int, max_states: Optional[int]) -> None:
        table, start, demux = _extend_product(
            self.table, self.start, self.demux, dfa, max_states
        )
        self.table, self.start, self.demux = table, start, demux
        self.dfas.append(dfa)
        self.indices.append(index)

    def finish(self) -> ShardMachine:
        member_accept = np.stack([
            dfa.accepting_mask[self.demux[:, m]]
            for m, dfa in enumerate(self.dfas)
        ])
        if len(self.dfas) == 1:
            # a singleton shard IS its member: same fingerprint, same
            # compiled artifact, demux is the identity
            dfa = self.dfas[0]
        else:
            accepting = np.flatnonzero(member_accept.any(axis=0))
            dfa = Dfa(self.table, self.start, accepting.tolist())
        fingerprints = tuple(d.fingerprint for d in self.dfas)
        return ShardMachine(
            dfa=dfa,
            member_indices=tuple(self.indices),
            member_fingerprints=fingerprints,
            demux=self.demux,
            member_accept=member_accept,
            key=shard_key(fingerprints),
        )
