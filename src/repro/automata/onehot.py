"""One-hot active-mask automata — the Automata Processor abstraction.

The AP (Section III-A of the paper) holds the current state *set* as an
N-bit active mask and, per input symbol, ANDs a match vector with the mask
and ORs selected rows of the state-transition matrix into the next mask.
Crucially the hardware cost of a step does not depend on how many bits are
set: stepping a single state and stepping a whole set cost the same.  That
observation is exactly what makes ``set(N) -> set(M)`` free, and CSE
possible.

Two functionally identical backends are provided:

- :class:`OneHotAutomaton` — numpy boolean-mask scatter (fast).
- :class:`PySetAutomaton` — pure-Python frozensets (slow, used to
  cross-check the numpy backend in tests).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

import numpy as np

from repro.automata.dfa import Dfa, as_symbols

__all__ = ["OneHotAutomaton", "PySetAutomaton"]


class OneHotAutomaton:
    """Active-mask view of a :class:`Dfa` (numpy backend)."""

    def __init__(self, dfa: Dfa):
        self.dfa = dfa

    @property
    def num_states(self) -> int:
        return self.dfa.num_states

    def mask_from_states(self, states: Iterable[int]) -> np.ndarray:
        """Build an N-bit active mask with the given bits set."""
        mask = np.zeros(self.num_states, dtype=bool)
        idx = list(states)
        if idx:
            mask[idx] = True
        return mask

    def states_from_mask(self, mask: np.ndarray) -> np.ndarray:
        """Sorted array of set bits."""
        return np.flatnonzero(mask).astype(np.int32)

    def step_mask(self, mask: np.ndarray, symbol: int) -> np.ndarray:
        """One transition of the active mask under ``symbol``.

        Equivalent to OR-ing transition-matrix rows of all active, matching
        states — i.e. one AP cycle, regardless of how many bits are set.
        """
        active = np.flatnonzero(mask)
        nxt = np.zeros_like(mask)
        if active.size:
            nxt[self.dfa.transitions[symbol].take(active)] = True
        return nxt

    def run_mask(
        self, mask: np.ndarray, symbols, record_sizes: bool = False
    ) -> Tuple[np.ndarray, List[int]]:
        """Run a full symbol sequence; optionally record per-step set sizes."""
        sizes: List[int] = []
        table = self.dfa.transitions
        active = np.flatnonzero(mask).astype(np.int32)
        for sym in as_symbols(symbols):
            active = np.unique(table[sym].take(active))
            if record_sizes:
                sizes.append(int(active.size))
        out = np.zeros_like(mask)
        out[active] = True
        return out, sizes


class PySetAutomaton:
    """Reference active-set machine built on Python frozensets.

    Semantically identical to :class:`OneHotAutomaton`; exists so property
    tests can diff the two implementations on random automata and inputs.
    """

    def __init__(self, dfa: Dfa):
        self.dfa = dfa
        # transition rows as plain lists for cheap scalar indexing
        self._rows: List[List[int]] = [row.tolist() for row in dfa.transitions]

    @property
    def num_states(self) -> int:
        return self.dfa.num_states

    def step_set(self, states: FrozenSet[int], symbol: int) -> FrozenSet[int]:
        row = self._rows[symbol]
        return frozenset(row[q] for q in states)

    def run_set(
        self, states: Iterable[int], symbols, record_sizes: bool = False
    ) -> Tuple[FrozenSet[int], List[int]]:
        cur = frozenset(int(q) for q in states)
        sizes: List[int] = []
        for sym in as_symbols(symbols):
            cur = self.step_set(cur, int(sym))
            if record_sizes:
                sizes.append(len(cur))
        return cur, sizes
