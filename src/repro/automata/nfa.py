"""Sparse nondeterministic finite automata with epsilon transitions.

The regex compiler (:mod:`repro.regex.compile`) produces Thompson NFAs;
:mod:`repro.automata.subset` turns them into the dense :class:`Dfa` used by
every engine.  The representation is deliberately sparse (dict of dicts)
because Thompson NFAs have at most two outgoing edges per state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = ["Nfa", "EPSILON"]

#: Pseudo-symbol used for epsilon (empty-string) transitions.
EPSILON: int = -1


class Nfa:
    """A nondeterministic finite automaton over integer symbols.

    States are created through :meth:`add_state`; transitions through
    :meth:`add_transition` (symbol ``EPSILON`` marks an epsilon edge).
    """

    def __init__(self, alphabet_size: int):
        if alphabet_size <= 0:
            raise ValueError("alphabet_size must be positive")
        self.alphabet_size = int(alphabet_size)
        #: transitions[state][symbol] -> set of target states
        self.transitions: List[Dict[int, Set[int]]] = []
        self.start: int = -1
        self.accepting: Set[int] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def add_state(self) -> int:
        """Create a fresh state and return its id."""
        self.transitions.append({})
        return len(self.transitions) - 1

    def add_transition(self, source: int, symbol: int, target: int) -> None:
        """Add an edge; ``symbol`` may be :data:`EPSILON`."""
        if symbol != EPSILON and not (0 <= symbol < self.alphabet_size):
            raise ValueError(f"symbol {symbol} out of range")
        if not (0 <= source < self.num_states and 0 <= target < self.num_states):
            raise ValueError("state id out of range")
        self.transitions[source].setdefault(symbol, set()).add(target)

    def add_symbols_transition(self, source: int, symbols: Iterable[int], target: int) -> None:
        """Add one edge per symbol in ``symbols`` (a character class)."""
        for sym in symbols:
            self.add_transition(source, sym, target)

    def set_start(self, state: int) -> None:
        if not (0 <= state < self.num_states):
            raise ValueError("state id out of range")
        self.start = state

    def add_accepting(self, state: int) -> None:
        if not (0 <= state < self.num_states):
            raise ValueError("state id out of range")
        self.accepting.add(state)

    def __repr__(self) -> str:
        return (
            f"Nfa(states={self.num_states}, alphabet={self.alphabet_size}, "
            f"start={self.start}, accepting={len(self.accepting)})"
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via epsilon edges."""
        closure: Set[int] = set(states)
        stack = list(closure)
        while stack:
            q = stack.pop()
            for t in self.transitions[q].get(EPSILON, ()):
                if t not in closure:
                    closure.add(t)
                    stack.append(t)
        return frozenset(closure)

    def step_set(self, states: Iterable[int], symbol: int) -> FrozenSet[int]:
        """Image of a state set under one symbol, with closure applied."""
        moved: Set[int] = set()
        for q in states:
            moved.update(self.transitions[q].get(symbol, ()))
        return self.epsilon_closure(moved)

    def run(self, symbols) -> FrozenSet[int]:
        """Run from the start state; returns the final active state set."""
        if self.start < 0:
            raise RuntimeError("start state not set")
        cur = self.epsilon_closure([self.start])
        for sym in symbols:
            cur = self.step_set(cur, int(sym))
        return cur

    def accepts(self, symbols) -> bool:
        """Whether the run ends with at least one accepting state active."""
        return bool(self.run(symbols) & self.accepting)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    @staticmethod
    def union(nfas: List["Nfa"]) -> "Nfa":
        """Combine pattern NFAs under a fresh start with epsilon edges.

        This is how a multi-pattern ruleset (e.g. a Snort rule file) becomes
        one automaton; accepting states of every component are preserved.
        """
        if not nfas:
            raise ValueError("need at least one NFA")
        alphabet = nfas[0].alphabet_size
        if any(n.alphabet_size != alphabet for n in nfas):
            raise ValueError("all NFAs must share an alphabet")
        combined = Nfa(alphabet)
        root = combined.add_state()
        combined.set_start(root)
        for nfa in nfas:
            if nfa.start < 0:
                raise RuntimeError("component NFA has no start state")
            offset = combined.num_states
            for _ in range(nfa.num_states):
                combined.add_state()
            for q, edges in enumerate(nfa.transitions):
                for sym, targets in edges.items():
                    for t in targets:
                        combined.add_transition(offset + q, sym, offset + t)
            combined.add_transition(root, EPSILON, offset + nfa.start)
            for a in nfa.accepting:
                combined.add_accepting(offset + a)
        return combined
