"""Structural analyses of DFAs.

These are the building blocks of the static optimizations in the comparator
engines (Section II-D of the paper):

- :func:`dead_states` — states from which no accepting state is reachable;
  enumeration flows entering them can be deactivated.
- :func:`symbol_image` / :func:`symbol_image_sizes` — the feasible state
  range after each symbol, used by PAP's *range-guided input partition*.
- :func:`connected_components` — undirected components of the transition
  graph, used by PAP's *connected component analysis*.
- :func:`always_active_states` — states with a self-loop on every symbol,
  PAP's *active state group*.
- :func:`common_parents` — the predecessor set under one symbol, PAP's
  *common parent* optimization.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.automata.dfa import Dfa

__all__ = [
    "dead_states",
    "symbol_image",
    "symbol_image_sizes",
    "symbol_frequencies",
    "connected_components",
    "always_active_states",
    "common_parents",
    "UnionFind",
]


class UnionFind:
    """Disjoint-set forest with path halving and union by size."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def groups(self) -> List[List[int]]:
        by_root: Dict[int, List[int]] = {}
        for x in range(len(self.parent)):
            by_root.setdefault(self.find(x), []).append(x)
        return list(by_root.values())


def dead_states(dfa: Dfa) -> np.ndarray:
    """Boolean mask of states that can never reach an accepting state.

    Computed by reverse BFS from the accepting set.  A flow whose state is
    dead can be dropped (the paper's *deactivation check*): its enumeration
    path is known to produce no further reports.
    """
    n = dfa.num_states
    alive = np.zeros(n, dtype=bool)
    if dfa.accepting:
        rev = dfa.reverse_edges()
        queue = deque(int(a) for a in dfa.accepting)
        for a in dfa.accepting:
            alive[a] = True
        while queue:
            q = queue.popleft()
            for p, _c in rev[q]:
                if not alive[p]:
                    alive[p] = True
                    queue.append(p)
    return ~alive


def symbol_image(dfa: Dfa, symbol: int, states: Optional[Iterable[int]] = None) -> np.ndarray:
    """States reachable in exactly one step on ``symbol``.

    With ``states`` omitted this is the *feasible range* of the symbol:
    wherever the machine was, after reading ``symbol`` it must be in this
    set.  PAP cuts segments at symbols with small feasible ranges so each
    segment starts from few possible states.
    """
    if states is None:
        return np.unique(dfa.transitions[symbol])
    idx = np.asarray(list(states), dtype=np.int32)
    return np.unique(dfa.transitions[symbol].take(idx))


def symbol_image_sizes(dfa: Dfa) -> np.ndarray:
    """Feasible-range size for every symbol (vector of length alphabet)."""
    return np.asarray(
        [np.unique(dfa.transitions[c]).size for c in range(dfa.alphabet_size)],
        dtype=np.int64,
    )


def symbol_frequencies(symbols: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Occurrence count of each symbol in an input string."""
    return np.bincount(np.asarray(symbols, dtype=np.int64), minlength=alphabet_size)


def connected_components(dfa: Dfa, states: Optional[Sequence[int]] = None) -> List[List[int]]:
    """Undirected connected components of the transition graph.

    Only edges between states in ``states`` (default: all) are considered.
    PAP assigns one state per component to a single flow: because the
    components are disjoint and closed under transitions, the merged flow's
    active set never becomes ambiguous.
    """
    n = dfa.num_states
    if states is None:
        members = np.arange(n, dtype=np.int32)
    else:
        members = np.unique(np.asarray(list(states), dtype=np.int32))
    in_scope = np.zeros(n, dtype=bool)
    in_scope[members] = True
    uf = UnionFind(n)
    table = dfa.transitions
    for c in range(dfa.alphabet_size):
        row = table[c]
        for q in members:
            t = int(row[q])
            if in_scope[t]:
                uf.union(int(q), t)
    by_root: Dict[int, List[int]] = {}
    for q in members:
        by_root.setdefault(uf.find(int(q)), []).append(int(q))
    return sorted(by_root.values(), key=len, reverse=True)


def always_active_states(dfa: Dfa) -> np.ndarray:
    """States with a self-loop on *every* symbol.

    In the NFA world these are "always active" states; in a DFA they are
    absorbing states (dead sinks or saturated matchers).  They form a single
    group whose enumeration outcome is the identity, so PAP dedicates one
    flow to all of them.
    """
    n = dfa.num_states
    idx = np.arange(n, dtype=np.int32)
    loops = np.all(dfa.transitions == idx[None, :], axis=0)
    return np.flatnonzero(loops).astype(np.int32)


def common_parents(dfa: Dfa, symbol: int, targets: Iterable[int]) -> np.ndarray:
    """All states whose ``symbol`` transition lands inside ``targets``.

    PAP's *common parent* optimization: if the segment boundary were one
    symbol earlier, only the parents need enumeration — often far fewer than
    the feasible range itself.
    """
    target_mask = np.zeros(dfa.num_states, dtype=bool)
    target_mask[list(targets)] = True
    return np.flatnonzero(target_mask[dfa.transitions[symbol]]).astype(np.int32)
