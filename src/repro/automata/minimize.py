"""Hopcroft DFA minimization.

Minimization keeps the synthetic benchmark DFAs honest: convergence behaviour
(the phenomenon CSE exploits) must come from the ruleset structure, not from
redundant equivalent states that would converge trivially.  Hopcroft's
algorithm is itself an instance of *partition refinement* — the same
machinery (Paige & Tarjan) the paper reuses to merge convergence partitions.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.automata.dfa import Dfa

__all__ = ["minimize", "prune_unreachable"]


def prune_unreachable(dfa: Dfa) -> Dfa:
    """Drop states unreachable from the start state (renumbering the rest)."""
    reachable = dfa.reachable_states()
    if reachable.size == dfa.num_states:
        return dfa
    remap = np.full(dfa.num_states, -1, dtype=np.int32)
    remap[reachable] = np.arange(reachable.size, dtype=np.int32)
    table = remap[dfa.transitions[:, reachable]]
    accepting = [int(remap[a]) for a in dfa.accepting if remap[a] >= 0]
    return Dfa(table, int(remap[dfa.start]), accepting)


def minimize(dfa: Dfa) -> Dfa:
    """Return the minimal DFA equivalent to ``dfa``.

    Unreachable states are pruned first; then Hopcroft's partition refinement
    merges language-equivalent states.  The result is canonical up to state
    numbering (we number blocks by their smallest member, which makes the
    output deterministic for a given input).
    """
    dfa = prune_unreachable(dfa)
    n = dfa.num_states
    if n == 1:
        return dfa

    accepting = set(int(a) for a in dfa.accepting)
    non_accepting = set(range(n)) - accepting

    # block id per state; blocks stored as sets
    blocks: List[Set[int]] = []
    block_of = np.empty(n, dtype=np.int64)
    for group in (accepting, non_accepting):
        if group:
            block_of[list(group)] = len(blocks)
            blocks.append(set(group))

    if len(blocks) == 1:
        # All states equivalent: single-state DFA.
        table = np.zeros((dfa.alphabet_size, 1), dtype=np.int32)
        return Dfa(table, 0, [0] if accepting else [])

    # Precompute reverse transitions: rev[c][q] = list of predecessors of q on c
    rev: List[List[List[int]]] = [
        [[] for _ in range(n)] for _ in range(dfa.alphabet_size)
    ]
    table = dfa.transitions
    for c in range(dfa.alphabet_size):
        row = table[c]
        for p in range(n):
            rev[c][int(row[p])].append(p)

    # Hopcroft worklist: (block_index, symbol) pairs
    worklist = set()
    smaller = 0 if len(blocks[0]) <= len(blocks[1]) else 1
    for c in range(dfa.alphabet_size):
        worklist.add((smaller, c))

    while worklist:
        splitter_idx, c = worklist.pop()
        splitter = blocks[splitter_idx]
        # X = states with a c-transition into the splitter
        x: Set[int] = set()
        rc = rev[c]
        for q in splitter:
            x.update(rc[q])
        if not x:
            continue
        # Group X members by their current block
        touched: Dict[int, Set[int]] = {}
        for p in x:
            touched.setdefault(int(block_of[p]), set()).add(p)
        for b_idx, intersect in touched.items():
            block = blocks[b_idx]
            if len(intersect) == len(block):
                continue  # block entirely inside X; no split
            remainder = block - intersect
            # Keep the remainder in place, move the intersection out.
            blocks[b_idx] = remainder
            new_idx = len(blocks)
            blocks.append(intersect)
            for q in intersect:
                block_of[q] = new_idx
            # Update worklist per Hopcroft: if (b_idx, a) pending, also add
            # (new_idx, a); else add the smaller half.
            for a in range(dfa.alphabet_size):
                if (b_idx, a) in worklist:
                    worklist.add((new_idx, a))
                elif len(intersect) <= len(remainder):
                    worklist.add((new_idx, a))
                else:
                    worklist.add((b_idx, a))

    # Canonical renumbering: block rank by smallest original member.
    reps = sorted(range(len(blocks)), key=lambda b: min(blocks[b]) if blocks[b] else n)
    reps = [b for b in reps if blocks[b]]
    new_id: Dict[int, int] = {b: i for i, b in enumerate(reps)}
    m = len(reps)
    out = np.empty((dfa.alphabet_size, m), dtype=np.int32)
    accepting_out = []
    for b in reps:
        i = new_id[b]
        rep = min(blocks[b])
        for c in range(dfa.alphabet_size):
            out[c, i] = new_id[int(block_of[table[c, rep]])]
        if rep in accepting:
            accepting_out.append(i)
    start = new_id[int(block_of[dfa.start])]
    return Dfa(out, start, accepting_out)
