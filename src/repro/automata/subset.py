"""NFA to DFA subset construction.

The paper compiles its benchmark rulesets to DFAs with RE2; this module
plays that role for our from-scratch regex compiler.  The construction is
the classic worklist algorithm over epsilon-closed state sets, producing a
*complete* DFA (every state has a transition on every symbol; a dead sink
appears naturally as the empty subset).

Implementation notes for speed (multi-pattern rulesets produce NFAs with
hundreds of states and 256-symbol alphabets):

- epsilon closures of *single* NFA states are precomputed once;
- per subset state, the moves for all symbols are gathered in one pass
  over the members' sparse edge dicts, instead of 256 independent
  ``step_set`` calls.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.automata.nfa import EPSILON, Nfa

__all__ = ["determinize"]


def _single_state_closures(nfa: Nfa) -> List[FrozenSet[int]]:
    """Epsilon closure of every individual NFA state."""
    return [nfa.epsilon_closure([q]) for q in range(nfa.num_states)]


def determinize(nfa: Nfa, max_states: Optional[int] = None) -> Dfa:
    """Convert an NFA into an equivalent complete DFA.

    Parameters
    ----------
    nfa:
        Source automaton; must have a start state.
    max_states:
        Safety valve against exponential state blow-up; exceeding it raises
        ``RuntimeError``.  (The paper notes blow-up does not occur for the
        Regex and ANMLZoo suites; our synthetic suites are tuned to behave
        the same, but a guard keeps experiments debuggable.)
    """
    if nfa.start < 0:
        raise RuntimeError("NFA start state not set")
    alphabet = nfa.alphabet_size
    closures = _single_state_closures(nfa)
    accepting_states = nfa.accepting

    start_set = frozenset(closures[nfa.start])
    ids: Dict[FrozenSet[int], int] = {start_set: 0}
    accepting: List[int] = [0] if (start_set & accepting_states) else []
    rows: List[np.ndarray] = []
    worklist: List[FrozenSet[int]] = [start_set]
    transitions_of = nfa.transitions

    while worklist:
        current = worklist.pop()
        q = ids[current]
        # Gather moves for every symbol in one pass over sparse edges.
        moves: Dict[int, set] = {}
        for member in current:
            for sym, targets in transitions_of[member].items():
                if sym == EPSILON:
                    continue
                bucket = moves.get(sym)
                if bucket is None:
                    bucket = set()
                    moves[sym] = bucket
                for t in targets:
                    bucket.update(closures[t])
        row = np.zeros(alphabet, dtype=np.int32)
        empty = frozenset()
        if empty not in ids and len(moves) < alphabet:
            ids[empty] = len(ids)
            worklist.append(empty)
        if len(moves) < alphabet:
            row[:] = ids[empty]
        for sym, bucket in moves.items():
            nxt = frozenset(bucket)
            nxt_id = ids.get(nxt)
            if nxt_id is None:
                if max_states is not None and len(ids) >= max_states:
                    raise RuntimeError(
                        f"subset construction exceeded max_states={max_states}"
                    )
                nxt_id = len(ids)
                ids[nxt] = nxt_id
                worklist.append(nxt)
                if nxt & accepting_states:
                    accepting.append(nxt_id)
            row[sym] = nxt_id
        while len(rows) <= q:
            rows.append(np.zeros(alphabet, dtype=np.int32))
        rows[q] = row

    while len(rows) < len(ids):
        rows.append(np.zeros(alphabet, dtype=np.int32))
    # The empty subset (dead sink), if created, self-loops: its row was
    # initialized to ids[empty] only when processed; ensure explicitly.
    empty = frozenset()
    if empty in ids:
        rows[ids[empty]][:] = ids[empty]
    table = np.vstack(rows).T  # (alphabet, states)
    return Dfa(table, 0, accepting)
