"""Language-level DFA operations.

These are not on the paper's hot path but are the tools the test-suite and
downstream users need to *trust* the hot path: product constructions for
language algebra, an equivalence decision procedure (used as a strong
oracle for minimization and the regex compiler), emptiness and example
words.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa

__all__ = [
    "ProductSizeExceeded",
    "product",
    "intersect",
    "union",
    "difference",
    "complement",
    "is_empty",
    "find_accepted_word",
    "equivalent",
    "distinguishing_word",
]


class ProductSizeExceeded(ValueError):
    """A reachable product construction outgrew its ``max_states`` budget.

    Raised *during* the breadth-first search, before the exploded table is
    materialized — product state counts grow multiplicatively in the worst
    case, and a caller with a budget (the fleet shard planner, a dense
    dtype ceiling) needs the failure early and cheap.
    """


def complement(dfa: Dfa) -> Dfa:
    """DFA accepting exactly the strings ``dfa`` rejects.

    Requires completeness, which every :class:`Dfa` guarantees by
    construction (total transition tables).
    """
    accepting = set(range(dfa.num_states)) - dfa.accepting
    return Dfa(dfa.transitions, dfa.start, accepting)


def product(
    a: Dfa, b: Dfa, accept: Callable[[bool, bool], bool],
    max_states: Optional[int] = None,
) -> Dfa:
    """Reachable product automaton with a boolean acceptance combiner.

    ``accept(in_a, in_b)`` decides acceptance of a product state from the
    component memberships — ``and`` gives intersection, ``or`` union,
    ``lambda x, y: x and not y`` difference, ``xor`` symmetric difference
    (the workhorse of :func:`equivalent`).

    ``max_states`` bounds the reachable construction: discovering state
    number ``max_states + 1`` raises :class:`ProductSizeExceeded`
    immediately instead of materializing an exploded table.  Planners
    (``repro.fleet``) use this as an exact go/no-go cost probe.
    """
    if a.alphabet_size != b.alphabet_size:
        raise ValueError("product requires equal alphabets")
    alphabet = a.alphabet_size
    ids: Dict[Tuple[int, int], int] = {(a.start, b.start): 0}
    rows: List[List[int]] = []
    accepting: List[int] = []
    worklist = deque([(a.start, b.start)])
    a_acc, b_acc = a.accepting_mask, b.accepting_mask
    while worklist:
        qa, qb = worklist.popleft()
        idx = ids[(qa, qb)]
        if accept(bool(a_acc[qa]), bool(b_acc[qb])):
            accepting.append(idx)
        row = [0] * alphabet
        for c in range(alphabet):
            nxt = (int(a.transitions[c, qa]), int(b.transitions[c, qb]))
            if nxt not in ids:
                if max_states is not None and len(ids) >= max_states:
                    raise ProductSizeExceeded(
                        f"reachable product exceeds {max_states} states "
                        f"({a.num_states} x {b.num_states} components)"
                    )
                ids[nxt] = len(ids)
                worklist.append(nxt)
            row[c] = ids[nxt]
        while len(rows) <= idx:
            rows.append([0] * alphabet)
        rows[idx] = row
    table = np.asarray(rows, dtype=np.int32).T
    return Dfa(table, 0, accepting)


def intersect(a: Dfa, b: Dfa) -> Dfa:
    """DFA for L(a) ∩ L(b)."""
    return product(a, b, lambda x, y: x and y)


def union(a: Dfa, b: Dfa) -> Dfa:
    """DFA for L(a) ∪ L(b)."""
    return product(a, b, lambda x, y: x or y)


def difference(a: Dfa, b: Dfa) -> Dfa:
    """DFA for L(a) \\ L(b)."""
    return product(a, b, lambda x, y: x and not y)


def is_empty(dfa: Dfa) -> bool:
    """Whether the DFA accepts no string at all."""
    return find_accepted_word(dfa) is None


def find_accepted_word(dfa: Dfa) -> Optional[List[int]]:
    """A shortest accepted word, or ``None`` if the language is empty.

    BFS over states, reconstructing one witness path.
    """
    if dfa.start in dfa.accepting:
        return []
    parent: Dict[int, Tuple[int, int]] = {}
    seen = {dfa.start}
    queue = deque([dfa.start])
    target = -1
    while queue and target < 0:
        q = queue.popleft()
        for c in range(dfa.alphabet_size):
            t = int(dfa.transitions[c, q])
            if t not in seen:
                seen.add(t)
                parent[t] = (q, c)
                if t in dfa.accepting:
                    target = t
                    break
                queue.append(t)
    if target < 0:
        return None
    word: List[int] = []
    cur = target
    while cur != dfa.start or word == [] and cur in parent:
        if cur not in parent:
            break
        cur, c = parent[cur]
        word.append(c)
    word.reverse()
    return word


def equivalent(a: Dfa, b: Dfa) -> bool:
    """Whether two DFAs accept exactly the same language."""
    return distinguishing_word(a, b) is None


def distinguishing_word(a: Dfa, b: Dfa) -> Optional[List[int]]:
    """A shortest word accepted by exactly one of the two DFAs.

    ``None`` means the languages are equal.  Implemented as emptiness of
    the symmetric-difference product, so the witness is minimal — handy in
    failing-test output.
    """
    sym_diff = product(a, b, lambda x, y: x != y)
    return find_accepted_word(sym_diff)
