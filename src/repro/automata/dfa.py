"""Dense deterministic finite automata.

A :class:`Dfa` stores its transition function as a dense numpy table
``transitions[symbol, state] -> state`` which makes three operations cheap:

- stepping a single state (the sequential baseline engine),
- stepping *all* states at once (enumeration-path oracles, profiling),
- stepping an arbitrary *set* of states (the paper's ``set(N) -> set(M)``
  primitive, see :mod:`repro.core.setfsm`).

Symbols are small integers ``0 .. alphabet_size-1``; text workloads map bytes
onto this range. States are ``0 .. num_states-1``.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dfa", "as_symbols"]


def as_symbols(data) -> np.ndarray:
    """Normalize an input string into a 1-D int64 symbol array.

    Accepts ``bytes``, ``str`` (encoded latin-1), ``memoryview``/mmap-backed
    buffers, numpy arrays, array-likes implementing ``__array__`` (e.g.
    ``repro.ingest.InputView``) and integer sequences.  The widening to
    int64 is the only copy; buffer-protocol inputs are never round-tripped
    through ``bytes``.
    """
    if isinstance(data, np.ndarray):
        return data.astype(np.int64, copy=False)
    if isinstance(data, str):
        data = data.encode("latin-1")
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(data, dtype=np.uint8).astype(np.int64)
    if hasattr(data, "__array__"):
        return np.asarray(data).astype(np.int64, copy=False)
    return np.asarray(list(data), dtype=np.int64)


class Dfa:
    """A deterministic finite automaton over a byte-like alphabet.

    Parameters
    ----------
    transitions:
        Array-like of shape ``(alphabet_size, num_states)``; entry
        ``transitions[c, q]`` is the state reached from ``q`` on symbol ``c``.
    start:
        The initial state.
    accepting:
        Iterable of accepting/reporting state ids.
    """

    __slots__ = ("transitions", "start", "accepting", "accepting_mask",
                 "_fingerprint")

    def __init__(self, transitions, start: int, accepting: Iterable[int]):
        table = np.ascontiguousarray(transitions, dtype=np.int32)
        if table.ndim != 2:
            raise ValueError("transitions must be 2-D (alphabet, states)")
        n_sym, n_state = table.shape
        if n_state == 0:
            raise ValueError("a DFA needs at least one state")
        if n_sym == 0:
            raise ValueError("a DFA needs at least one symbol")
        if table.min() < 0 or table.max() >= n_state:
            raise ValueError("transition targets out of range")
        if not (0 <= start < n_state):
            raise ValueError(f"start state {start} out of range")
        acc = frozenset(int(a) for a in accepting)
        for a in acc:
            if not (0 <= a < n_state):
                raise ValueError(f"accepting state {a} out of range")
        self.transitions = table
        self.start = int(start)
        self.accepting = acc
        mask = np.zeros(n_state, dtype=bool)
        if acc:
            mask[sorted(acc)] = True
        self.accepting_mask = mask
        self._fingerprint: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states."""
        return self.transitions.shape[1]

    @property
    def alphabet_size(self) -> int:
        """Number of input symbols."""
        return self.transitions.shape[0]

    def __repr__(self) -> str:
        return (
            f"Dfa(states={self.num_states}, alphabet={self.alphabet_size}, "
            f"start={self.start}, accepting={len(self.accepting)})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Dfa):
            return NotImplemented
        return (
            self.start == other.start
            and self.accepting == other.accepting
            and self.transitions.shape == other.transitions.shape
            and bool(np.array_equal(self.transitions, other.transitions))
        )

    def __hash__(self) -> int:
        return hash(
            (self.start, self.accepting, self.transitions.shape, self.transitions.tobytes())
        )

    @property
    def fingerprint(self) -> Tuple:
        """A stable content identity for this machine.

        Covers the transition table bytes *and dtype* (identical bytes under
        different dtypes are different tables), the shape, the start state
        and the accepting set.  Computed once and memoized — this is the
        cache key every layer shares (pool matching in
        :func:`repro.software.segment_pool`, compilation-cache addressing in
        :mod:`repro.compilecache`) instead of re-hashing the table per use.
        """
        if self._fingerprint is None:
            table = self.transitions
            self._fingerprint = (
                table.shape,
                str(table.dtype),
                self.start,
                tuple(sorted(self.accepting)),
                hashlib.sha1(table.tobytes()).hexdigest(),
            )
        return self._fingerprint

    def validate(self, deep: bool = False) -> List:
        """Re-check the constructor's invariants; raise on violations.

        Instances restored through pickle bypass ``__init__``, so a
        corrupted-but-well-formed payload can carry an out-of-range
        table, a stale accepting mask, or a bad start state.  Delegates
        to :func:`repro.check.verify_dfa`; raises :class:`ValueError`
        on any error-severity finding and returns the non-fatal
        diagnostics (``deep=True`` adds unreachable/dead-state
        analysis).  Called by :mod:`repro.compilecache` at artifact-load
        time.
        """
        from repro.check import verify_dfa

        diagnostics = verify_dfa(self, deep=deep)
        errors = [d for d in diagnostics if d.severity == "error"]
        if errors:
            raise ValueError(
                "invalid DFA: "
                + "; ".join(f"{d.code}: {d.message}" for d in errors)
            )
        return diagnostics

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self, state: int, symbol: int) -> int:
        """Single ``state -> state`` transition."""
        return int(self.transitions[symbol, state])

    def run(self, symbols, state: Optional[int] = None) -> int:
        """Run the DFA sequentially, returning the final state.

        ``state`` defaults to the DFA's start state.  This is the paper's
        Figure 1 loop: ``state = T[in][state]``.
        """
        cur = self.start if state is None else int(state)
        table = self.transitions
        for sym in as_symbols(symbols):
            cur = table[sym, cur]
        return int(cur)

    def run_trace(self, symbols, state: Optional[int] = None) -> List[int]:
        """Like :meth:`run` but returns the full state path (length+1)."""
        cur = self.start if state is None else int(state)
        path = [cur]
        table = self.transitions
        for sym in as_symbols(symbols):
            cur = int(table[sym, cur])
            path.append(cur)
        return path

    def run_reports(self, symbols, state: Optional[int] = None) -> List[Tuple[int, int]]:
        """Run sequentially and collect ``(offset, state)`` report events.

        A report fires at offset ``i`` when the state reached *after*
        consuming symbol ``i`` is accepting.  This is the output a pattern
        matcher (NIDS, virus scanner) actually consumes.
        """
        cur = self.start if state is None else int(state)
        table = self.transitions
        acc = self.accepting_mask
        out: List[Tuple[int, int]] = []
        for i, sym in enumerate(as_symbols(symbols)):
            cur = int(table[sym, cur])
            if acc[cur]:
                out.append((i, cur))
        return out

    def run_all_states(self, symbols) -> np.ndarray:
        """Compute the enumeration-path endpoints for *every* state.

        Returns ``f`` with ``f[q] = delta*(q, symbols)`` — the oracle the
        enumerative engines must reproduce, and the source of convergence
        partitions in profiling (one profiling input produces the partition
        of states by their ``f`` value).
        """
        cur = np.arange(self.num_states, dtype=np.int32)
        table = self.transitions
        for sym in as_symbols(symbols):
            cur = table[sym].take(cur)
        return cur

    def set_step(self, states: np.ndarray, symbol: int) -> np.ndarray:
        """One ``set(N) -> set(M)`` step: image of a state set under a symbol.

        ``states`` must be a sorted, duplicate-free int array; the result is
        too.  The mapping of which input state went to which output state is
        deliberately *not* retained — that is the whole point of the
        primitive (Section III of the paper).
        """
        return np.unique(self.transitions[symbol].take(states))

    def set_run(self, states, symbols, record_sizes: bool = False):
        """Run ``set(N) -> set(M)`` across a symbol sequence.

        Parameters
        ----------
        states:
            Initial state set (iterable of ints).
        symbols:
            Input string.
        record_sizes:
            When true, also return the list of set sizes after each symbol
            (the ``R`` trace used for cycle accounting).

        Returns
        -------
        final_set, or ``(final_set, sizes)`` when ``record_sizes`` is set.
        """
        cur = np.unique(np.asarray(list(states), dtype=np.int32))
        table = self.transitions
        sizes: List[int] = []
        for sym in as_symbols(symbols):
            cur = np.unique(table[sym].take(cur))
            if record_sizes:
                sizes.append(int(cur.size))
        if record_sizes:
            return cur, sizes
        return cur

    # ------------------------------------------------------------------
    # language probes
    # ------------------------------------------------------------------
    def accepts(self, symbols) -> bool:
        """Whether the run from the start state ends in an accepting state."""
        return self.run(symbols) in self.accepting

    def matches_anywhere(self, symbols) -> bool:
        """Whether any prefix run visits an accepting state (scan semantics)."""
        cur = self.start
        if cur in self.accepting:
            return True
        table = self.transitions
        acc = self.accepting_mask
        for sym in as_symbols(symbols):
            cur = int(table[sym, cur])
            if acc[cur]:
                return True
        return False

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def reachable_states(self, roots: Optional[Iterable[int]] = None) -> np.ndarray:
        """States reachable from ``roots`` (default: the start state)."""
        seen = np.zeros(self.num_states, dtype=bool)
        frontier = np.unique(
            np.asarray([self.start] if roots is None else list(roots), dtype=np.int32)
        )
        seen[frontier] = True
        while frontier.size:
            nxt = np.unique(self.transitions[:, frontier])
            frontier = nxt[~seen[nxt]]
            seen[frontier] = True
        return np.flatnonzero(seen)

    def state_depths(self) -> np.ndarray:
        """BFS depth of each state from the start (-1 when unreachable).

        Used by the Becchi-style trace generator to bias inputs toward
        "deeper" (more-matched) states.
        """
        depths = np.full(self.num_states, -1, dtype=np.int64)
        depths[self.start] = 0
        frontier = np.asarray([self.start], dtype=np.int32)
        level = 0
        while frontier.size:
            level += 1
            nxt = np.unique(self.transitions[:, frontier])
            nxt = nxt[depths[nxt] < 0]
            depths[nxt] = level
            frontier = nxt
        return depths

    def reverse_edges(self) -> List[List[Tuple[int, int]]]:
        """Adjacency of the reversed transition graph.

        ``result[q]`` lists ``(p, c)`` pairs with ``delta(p, c) == q``.
        """
        rev: List[List[Tuple[int, int]]] = [[] for _ in range(self.num_states)]
        table = self.transitions
        for c in range(self.alphabet_size):
            row = table[c]
            for p in range(self.num_states):
                rev[int(row[p])].append((p, c))
        return rev

    def restrict_alphabet(self, symbols: Sequence[int]) -> "Dfa":
        """A DFA over the sub-alphabet ``symbols`` (renumbered 0..k-1)."""
        symbols = list(symbols)
        return Dfa(self.transitions[symbols, :], self.start, self.accepting)

    def renumbered(self, order: Sequence[int]) -> "Dfa":
        """Return an isomorphic DFA with states permuted by ``order``.

        ``order[i]`` is the old id of new state ``i``.
        """
        order = np.asarray(order, dtype=np.int32)
        if sorted(order.tolist()) != list(range(self.num_states)):
            raise ValueError("order must be a permutation of all states")
        inverse = np.empty(self.num_states, dtype=np.int32)
        inverse[order] = np.arange(self.num_states, dtype=np.int32)
        table = inverse[self.transitions[:, order]]
        start = int(inverse[self.start])
        accepting = [int(inverse[a]) for a in self.accepting]
        return Dfa(table, start, accepting)

    def iter_transitions(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(state, symbol, target)`` triples."""
        for c in range(self.alphabet_size):
            row = self.transitions[c]
            for q in range(self.num_states):
                yield q, c, int(row[q])

    @classmethod
    def from_transition_dict(
        cls,
        num_states: int,
        alphabet_size: int,
        mapping,
        start: int,
        accepting: Iterable[int],
        default: str = "self",
    ) -> "Dfa":
        """Build a DFA from a sparse ``{(state, symbol): target}`` dict.

        ``default`` chooses what unlisted transitions do: ``"self"`` loops in
        place, ``"start"`` falls back to the start state, or an integer state
        id may be given as a string-free int via ``default=<int>``.
        """
        if default == "self":
            table = np.tile(np.arange(num_states, dtype=np.int32), (alphabet_size, 1))
        elif default == "start":
            table = np.full((alphabet_size, num_states), int(start), dtype=np.int32)
        else:
            table = np.full((alphabet_size, num_states), int(default), dtype=np.int32)
        for (q, c), t in mapping.items():
            table[c, q] = t
        return cls(table, start, accepting)
