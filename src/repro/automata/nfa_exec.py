"""Vectorized NFA execution (the Automata Processor's native mode).

PAP (Section II-D) targets NFAs, where multiple states are active at once
and — unlike the DFA case — the active count ``R`` is *not* monotonically
decreasing: one active state can fan out to several.  The paper leans on
the empirical observation that R still trends down over long inputs.

:class:`CompiledNfa` precompiles an :class:`~repro.automata.nfa.Nfa` into
flat numpy edge arrays (epsilon closures folded in) so that stepping an
active mask is two vector ops, mirroring the AP's one-cycle mask update.
It exists to (a) execute benchmark rulesets in their NFA form, (b) expose
the R-dynamics the paper discusses, and (c) cross-check the subset
construction (NFA and determinized DFA must agree everywhere).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.automata.dfa import as_symbols
from repro.automata.nfa import EPSILON, Nfa

__all__ = ["CompiledNfa"]


class CompiledNfa:
    """Flat-array NFA executor with active-mask semantics."""

    def __init__(self, nfa: Nfa):
        if nfa.start < 0:
            raise ValueError("NFA start state not set")
        self.num_states = nfa.num_states
        self.alphabet_size = nfa.alphabet_size
        closures = [nfa.epsilon_closure([q]) for q in range(nfa.num_states)]
        # per-symbol flat edges, with targets closure-expanded
        sources: List[List[int]] = [[] for _ in range(nfa.alphabet_size)]
        targets: List[List[int]] = [[] for _ in range(nfa.alphabet_size)]
        for src, edges in enumerate(nfa.transitions):
            for symbol, raw_targets in edges.items():
                if symbol == EPSILON:
                    continue
                expanded = set()
                for t in raw_targets:
                    expanded.update(closures[t])
                for t in expanded:
                    sources[symbol].append(src)
                    targets[symbol].append(t)
        self._sources = [np.asarray(s, dtype=np.int64) for s in sources]
        self._targets = [np.asarray(t, dtype=np.int64) for t in targets]
        self.start_mask = np.zeros(nfa.num_states, dtype=bool)
        self.start_mask[sorted(closures[nfa.start])] = True
        self.accepting_mask = np.zeros(nfa.num_states, dtype=bool)
        if nfa.accepting:
            self.accepting_mask[sorted(nfa.accepting)] = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step_mask(self, mask: np.ndarray, symbol: int) -> np.ndarray:
        """One active-mask transition (one AP cycle)."""
        src = self._sources[symbol]
        nxt = np.zeros_like(mask)
        if src.size:
            fired = mask[src]
            nxt[self._targets[symbol][fired]] = True
        return nxt

    def run(
        self,
        symbols,
        mask: Optional[np.ndarray] = None,
        record_counts: bool = False,
    ):
        """Run a symbol sequence from ``mask`` (default: the start mask).

        Returns the final mask, or ``(final_mask, counts)`` where
        ``counts[t]`` is the number of active states after symbol ``t`` —
        the R trace whose non-monotonicity distinguishes NFAs from DFAs.
        """
        cur = self.start_mask.copy() if mask is None else mask.copy()
        counts: List[int] = []
        for sym in as_symbols(symbols):
            cur = self.step_mask(cur, int(sym))
            if record_counts:
                counts.append(int(np.count_nonzero(cur)))
        if record_counts:
            return cur, counts
        return cur

    def accepts(self, symbols) -> bool:
        """Whether the run ends with an accepting state active."""
        final = self.run(symbols)
        return bool((final & self.accepting_mask).any())

    def run_reports(self, symbols) -> List[Tuple[int, int]]:
        """Scan-style reports: offsets where an accepting state is active.

        One event per (offset, state) pair, matching the DFA convention
        closely enough for cross-checking multi-pattern rulesets.
        """
        cur = self.start_mask.copy()
        out: List[Tuple[int, int]] = []
        for offset, sym in enumerate(as_symbols(symbols)):
            cur = self.step_mask(cur, int(sym))
            hits = np.flatnonzero(cur & self.accepting_mask)
            for state in hits.tolist():
                out.append((offset, int(state)))
        return out

    def active_count_trace(self, symbols) -> List[int]:
        """The R trace alone (Section II-D analysis helper)."""
        _, counts = self.run(symbols, record_counts=True)
        return counts
