"""Alphabet compression: symbol equivalence classes.

Real rulesets distinguish only a handful of byte behaviours — in a
lowercase-literal DFA, all 200+ bytes that appear in no pattern share one
transition column.  Grouping identical columns (what RE2 calls *byte
classes*) shrinks the transition table from ``256 x N`` to ``C x N`` with
C often under 30, which matters for the AP analogy too: the paper's
hardware stores one row per symbol.

:func:`compress_alphabet` returns the compressed machine plus the
byte-to-class map; :class:`CompressedDfa` bundles them with input
translation so engines can run on the small table transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.automata.dfa import Dfa, as_symbols

__all__ = ["CompressedDfa", "compress_alphabet", "symbol_classes"]


def symbol_classes(dfa: Dfa) -> np.ndarray:
    """Class id per symbol: symbols with identical columns share a class.

    Class ids are assigned in first-appearance order, so the mapping is
    deterministic for a given machine.
    """
    _, first_index, inverse = np.unique(
        dfa.transitions, axis=0, return_index=True, return_inverse=True
    )
    # renumber classes by first appearance to make ids stable/readable
    order = np.argsort(first_index)
    renumber = np.empty_like(order)
    renumber[order] = np.arange(order.size)
    return renumber[inverse.ravel()].astype(np.int64)


@dataclass
class CompressedDfa:
    """A DFA over symbol classes plus the byte-to-class translation."""

    dfa: Dfa
    class_of_symbol: np.ndarray
    original_alphabet_size: int

    @property
    def num_classes(self) -> int:
        return self.dfa.alphabet_size

    @property
    def compression_ratio(self) -> float:
        """Original table width over compressed width (>= 1)."""
        return self.original_alphabet_size / self.num_classes

    def translate(self, symbols) -> np.ndarray:
        """Map a raw input string onto class symbols."""
        syms = as_symbols(symbols)
        if syms.size and (syms.min() < 0
                          or syms.max() >= self.original_alphabet_size):
            raise ValueError("input symbols outside the original alphabet")
        return self.class_of_symbol[syms]

    def run(self, symbols, state=None) -> int:
        """Run raw input through the compressed machine."""
        return self.dfa.run(self.translate(symbols), state)

    def run_reports(self, symbols, state=None):
        return self.dfa.run_reports(self.translate(symbols), state)


def compress_alphabet(dfa: Dfa) -> CompressedDfa:
    """Build the class-compressed equivalent of ``dfa``.

    The compressed machine is exactly language-equivalent modulo the
    byte-to-class translation: for any input ``w``,
    ``compressed.run(w) == dfa.run(w)``.
    """
    classes = symbol_classes(dfa)
    n_classes = int(classes.max()) + 1 if classes.size else 1
    representatives = np.empty(n_classes, dtype=np.int64)
    for symbol, cls in enumerate(classes.tolist()):
        representatives[cls] = symbol
    table = dfa.transitions[representatives, :]
    compressed = Dfa(table, dfa.start, dfa.accepting)
    return CompressedDfa(compressed, classes, dfa.alphabet_size)
