"""DFA generators for testing and synthetic workloads.

Random automata here are used by the property-based test-suite and by
micro-benchmarks; the *benchmark-family* generators (ExactMatch, Snort, ...)
live in :mod:`repro.workloads.rulesets` and go through the regex compiler.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.automata.dfa import Dfa

__all__ = [
    "random_dfa",
    "convergent_random_dfa",
    "cycle_dfa",
    "literal_matcher_dfa",
]


def random_dfa(
    num_states: int,
    alphabet_size: int,
    rng: np.random.Generator,
    accepting_fraction: float = 0.1,
) -> Dfa:
    """A uniformly random complete DFA.

    Every ``(state, symbol)`` pair maps to an independently uniform target.
    Uniform DFAs converge extremely fast (the image of a random function
    shrinks geometrically), which makes them good smoke tests but poor
    stand-ins for real rulesets.
    """
    if num_states < 1:
        raise ValueError("num_states must be >= 1")
    table = rng.integers(0, num_states, size=(alphabet_size, num_states), dtype=np.int32)
    n_acc = max(1, int(round(accepting_fraction * num_states)))
    accepting = rng.choice(num_states, size=min(n_acc, num_states), replace=False)
    return Dfa(table, int(rng.integers(num_states)), accepting.tolist())


def convergent_random_dfa(
    num_states: int,
    alphabet_size: int,
    rng: np.random.Generator,
    locality: int = 2,
    accepting_fraction: float = 0.1,
) -> Dfa:
    """A random DFA whose transitions are *local* (slow convergence).

    Each transition from state ``q`` targets a state within ``locality`` of
    ``q`` (mod N), so the state-set image shrinks slowly — closer to the
    behaviour of deep literal-matching DFAs like ClamAV signatures.
    """
    if num_states < 1:
        raise ValueError("num_states must be >= 1")
    base = np.arange(num_states, dtype=np.int64)
    offsets = rng.integers(-locality, locality + 1, size=(alphabet_size, num_states))
    table = ((base[None, :] + offsets) % num_states).astype(np.int32)
    n_acc = max(1, int(round(accepting_fraction * num_states)))
    accepting = rng.choice(num_states, size=min(n_acc, num_states), replace=False)
    return Dfa(table, int(rng.integers(num_states)), accepting.tolist())


def cycle_dfa(num_states: int, alphabet_size: int = 2) -> Dfa:
    """A permutation DFA (rotation) — the worst case for convergence.

    Symbol 0 advances the cycle, other symbols hold position.  No two states
    ever converge, so enumerative engines keep all N flows alive forever:
    useful for exercising the re-execution machinery.
    """
    base = np.arange(num_states, dtype=np.int32)
    table = np.tile(base, (alphabet_size, 1))
    table[0] = (base + 1) % num_states
    return Dfa(table, 0, [num_states - 1])


def literal_matcher_dfa(pattern: Sequence[int], alphabet_size: int) -> Dfa:
    """KMP-style DFA scanning for one literal pattern anywhere in the input.

    State ``k`` means "the last k symbols read are the longest prefix of the
    pattern that is a suffix of the input"; state ``len(pattern)`` accepts
    and absorbs.  Built directly (no regex round-trip) for tests.
    """
    pattern = [int(p) for p in pattern]
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if any(not (0 <= p < alphabet_size) for p in pattern):
        raise ValueError("pattern symbol out of alphabet")
    m = len(pattern)
    table = np.zeros((alphabet_size, m + 1), dtype=np.int32)
    # Knuth-Morris-Pratt DFA construction (Sedgewick): X is the state the
    # machine would be in after reading pattern[1:j], i.e. the restart state.
    table[pattern[0], 0] = 1
    restart = 0
    for j in range(1, m):
        table[:, j] = table[:, restart]
        table[pattern[j], j] = j + 1
        restart = int(table[pattern[j], restart])
    table[:, m] = m  # accepting sink
    return Dfa(table, 0, [m])
