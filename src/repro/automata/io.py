"""DFA serialization: compile once, deploy many.

Ruleset compilation (parse → Thompson → subset → Hopcroft) is the
expensive offline step; deployments load the finished machine.  Two
formats:

- ``.npz`` (:func:`save_dfa` / :func:`load_dfa`) — the transition table as
  a compressed numpy archive; compact and fast, the production format.
- plain dict (:func:`dfa_to_dict` / :func:`dfa_from_dict`) — JSON-able,
  for configuration pipelines and tests.

Both round-trip exactly (table, start, accepting set).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.automata.dfa import Dfa

__all__ = ["save_dfa", "load_dfa", "dfa_to_dict", "dfa_from_dict",
           "save_dfa_json", "load_dfa_json"]

FORMAT_VERSION = 1


def save_dfa(dfa: Dfa, path: Union[str, Path]) -> None:
    """Write a DFA as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        version=np.asarray([FORMAT_VERSION]),
        transitions=dfa.transitions,
        start=np.asarray([dfa.start]),
        accepting=np.asarray(sorted(dfa.accepting), dtype=np.int64),
    )


def load_dfa(path: Union[str, Path]) -> Dfa:
    """Load a DFA written by :func:`save_dfa`."""
    with np.load(Path(path)) as archive:
        version = int(archive["version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported DFA format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        return Dfa(
            archive["transitions"],
            int(archive["start"][0]),
            archive["accepting"].tolist(),
        )


def dfa_to_dict(dfa: Dfa) -> Dict:
    """JSON-ready representation (row-major transition lists)."""
    return {
        "version": FORMAT_VERSION,
        "alphabet_size": dfa.alphabet_size,
        "num_states": dfa.num_states,
        "start": dfa.start,
        "accepting": sorted(dfa.accepting),
        "transitions": dfa.transitions.tolist(),
    }


def dfa_from_dict(data: Dict) -> Dfa:
    """Inverse of :func:`dfa_to_dict` (validates shape and version)."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported DFA format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    table = np.asarray(data["transitions"], dtype=np.int32)
    if table.shape != (data["alphabet_size"], data["num_states"]):
        raise ValueError("transition table shape does not match metadata")
    return Dfa(table, int(data["start"]), data["accepting"])


def save_dfa_json(dfa: Dfa, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(dfa_to_dict(dfa)))


def load_dfa_json(path: Union[str, Path]) -> Dfa:
    return dfa_from_dict(json.loads(Path(path).read_text()))
