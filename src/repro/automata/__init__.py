"""Automata-theory substrate: DFA/NFA structures and algorithms.

This subpackage is the foundation every engine in :mod:`repro` builds on.
It provides:

- :class:`~repro.automata.dfa.Dfa` — dense, numpy-backed deterministic
  automata with vectorized single-state, all-state and set-of-state stepping.
- :class:`~repro.automata.nfa.Nfa` — sparse nondeterministic automata with
  epsilon transitions.
- :func:`~repro.automata.subset.determinize` — NFA to DFA subset construction.
- :func:`~repro.automata.minimize.minimize` — Hopcroft DFA minimization.
- :class:`~repro.automata.onehot.OneHotAutomaton` — the Automata-Processor
  style one-hot active-mask machine used to realize ``set(N) -> set(M)``.
- :mod:`~repro.automata.analysis` — dead states, feasible symbol ranges,
  connected components, common parents (the building blocks of PAP's static
  optimizations).
- :mod:`~repro.automata.builders` — random and structured DFA generators.
"""

from repro.automata.dfa import Dfa
from repro.automata.nfa import EPSILON, Nfa
from repro.automata.subset import determinize
from repro.automata.minimize import minimize
from repro.automata.onehot import OneHotAutomaton, PySetAutomaton
from repro.automata.nfa_exec import CompiledNfa
from repro.automata.alphabet import CompressedDfa, compress_alphabet
from repro.automata.io import save_dfa, load_dfa
from repro.automata.ops import (
    complement,
    difference,
    distinguishing_word,
    equivalent,
    intersect,
    union,
)

__all__ = [
    "Dfa",
    "Nfa",
    "EPSILON",
    "determinize",
    "minimize",
    "OneHotAutomaton",
    "PySetAutomaton",
    "CompiledNfa",
    "CompressedDfa",
    "compress_alphabet",
    "save_dfa",
    "load_dfa",
    "complement",
    "difference",
    "distinguishing_word",
    "equivalent",
    "intersect",
    "union",
]
