"""Content-hash incremental cache for ``repro check lint``.

The flow rules do real work — CFG construction plus two fixpoint
solves per function — so a repo-wide cold run costs seconds.  Almost
none of it changes between runs: lint output is a pure function of
(file bytes, rule set), so the cache keys each file by the sha256 of
its bytes plus a signature of the active rule set, and replays the
serialized diagnostics on a hit.  Edit one file and only that file is
re-analyzed; warm runs are dominated by hashing.

The cache file (default ``.repro_check_cache.json``, git-ignored) is
best-effort: unreadable or version-skewed caches are discarded, and a
failure to write is not an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.check.diagnostics import Diagnostic
from repro.check.lint import LintRule, expand_paths, lint_source

__all__ = ["DEFAULT_CACHE_PATH", "LintCache", "rules_signature",
           "cached_lint_paths"]

DEFAULT_CACHE_PATH = ".repro_check_cache.json"
_CACHE_VERSION = 1


def rules_signature(rules: Sequence[LintRule],
                    check_stale_noqa: bool = False) -> str:
    """A stable fingerprint of the rule set (and lint options) in force.

    Any difference — a rule added, removed, or renamed, stale-noqa
    toggled — must miss the cache, or stale findings would replay.
    """
    parts = sorted(f"{rule.code}:{rule.name}" for rule in rules)
    parts.append(f"noqa={check_stale_noqa}")
    parts.append(f"v={_CACHE_VERSION}")
    digest = hashlib.sha256("|".join(parts).encode("utf-8"))
    return digest.hexdigest()


class LintCache:
    """sha256(file bytes) -> serialized diagnostics, per rule signature."""

    def __init__(self, path: Union[str, Path], signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self._files: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) \
                or raw.get("version") != _CACHE_VERSION \
                or raw.get("signature") != self.signature:
            return
        files = raw.get("files")
        if isinstance(files, dict):
            self._files = files

    def get(self, path: str, sha: str) -> Optional[List[Diagnostic]]:
        entry = self._files.get(path)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return None
        stored = entry.get("diagnostics")
        if not isinstance(stored, list):
            return None
        try:
            return [Diagnostic.from_dict(d) for d in stored]
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, path: str, sha: str,
            diagnostics: Sequence[Diagnostic]) -> None:
        self._files[path] = {
            "sha": sha,
            "diagnostics": [d.to_dict() for d in diagnostics],
        }

    def save(self) -> None:
        payload = {
            "version": _CACHE_VERSION,
            "signature": self.signature,
            "files": self._files,
        }
        try:
            self.path.write_text(json.dumps(payload, sort_keys=True),
                                 encoding="utf-8")
        except OSError:
            pass  # a cache that cannot persist is just a cold cache


def cached_lint_paths(paths: Sequence[Union[str, Path]],
                      rules: Sequence[LintRule],
                      cache_path: Optional[Union[str, Path]] = None,
                      check_stale_noqa: bool = False,
                      ) -> List[Diagnostic]:
    """:func:`repro.check.lint.lint_paths` with per-file caching.

    ``cache_path=None`` disables caching entirely (identical output,
    every file analyzed fresh).
    """
    cache: Optional[LintCache] = None
    if cache_path is not None:
        cache = LintCache(cache_path,
                          rules_signature(rules, check_stale_noqa))
    out: List[Diagnostic] = []
    for f in expand_paths(paths):
        raw = f.read_bytes()
        sha = hashlib.sha256(raw).hexdigest()
        key = str(f)
        if cache is not None:
            hit = cache.get(key, sha)
            if hit is not None:
                cache.hits += 1
                out.extend(hit)
                continue
            cache.misses += 1
        diagnostics = lint_source(
            raw.decode("utf-8"), path=key, rules=rules,
            check_stale_noqa=check_stale_noqa)
        if cache is not None:
            cache.put(key, sha, diagnostics)
        out.extend(diagnostics)
    if cache is not None:
        cache.save()
    return out
