"""Findings baseline: accepted diagnostics that must not gate CI.

A new analysis generation (the flow rules) lands on a codebase with
pre-existing findings that were reviewed and accepted — e.g. the CLI's
process-lifetime ``InputView`` whose mapping the OS reclaims at exit.
Deleting them would be churn; suppressing with ``noqa`` would bless
the *line* forever.  The baseline blesses the *current multiset* of
findings instead: ``repro check lint`` subtracts baselined findings
and gates only on what is new.

Keys are ``(code, location, function)`` with per-key counts — line
numbers are deliberately excluded so unrelated edits that shift a
function downward do not invalidate the baseline, while a *second*
leak of the same kind in the same function does surface (count
exceeded).  Fixing a baselined finding leaves a dangling entry; CI
stays green, and ``--write-baseline`` refreshes the file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.check.diagnostics import Diagnostic

__all__ = ["DEFAULT_BASELINE_PATH", "baseline_key", "load_baseline",
           "write_baseline", "apply_baseline"]

DEFAULT_BASELINE_PATH = ".repro-lint-baseline.json"
_BASELINE_VERSION = 1

Key = Tuple[str, str, str]


def baseline_key(diag: Diagnostic) -> Key:
    return (diag.code, diag.location.replace("\\", "/"),
            diag.function or "")


def load_baseline(path: Union[str, Path]) -> "Counter[Key]":
    """The accepted-findings multiset; empty for a missing file."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return Counter()
    if not isinstance(raw, dict) or raw.get("version") != _BASELINE_VERSION:
        raise ValueError(f"unrecognized baseline file format: {path}")
    out: "Counter[Key]" = Counter()
    for entry in raw.get("findings", []):
        key = (str(entry["code"]), str(entry["location"]),
               str(entry.get("function", "")))
        out[key] += int(entry.get("count", 1))
    return out


def write_baseline(diagnostics: Sequence[Diagnostic],
                   path: Union[str, Path]) -> int:
    """Accept the given findings as the new baseline; returns the count."""
    counts: "Counter[Key]" = Counter(
        baseline_key(d) for d in diagnostics)
    findings: List[Dict[str, object]] = []
    for (code, location, function), count in sorted(counts.items()):
        entry: Dict[str, object] = {"code": code, "location": location,
                                    "count": count}
        if function:
            entry["function"] = function
        findings.append(entry)
    payload = {"version": _BASELINE_VERSION, "findings": findings}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
    return sum(counts.values())


def apply_baseline(diagnostics: Sequence[Diagnostic],
                   baseline: "Counter[Key]",
                   ) -> Tuple[List[Diagnostic], int]:
    """``(new findings, how many were absorbed by the baseline)``."""
    budget = Counter(baseline)
    remaining: List[Diagnostic] = []
    absorbed = 0
    for diag in diagnostics:
        key = baseline_key(diag)
        if budget[key] > 0:
            budget[key] -= 1
            absorbed += 1
        else:
            remaining.append(diag)
    return remaining, absorbed
