"""``repro check`` — static soundness verification for CSE artifacts.

Two pillars (see ``docs/static_analysis.md`` for every diagnostic code):

- **Artifact verification** (:mod:`repro.check.artifact`,
  :mod:`repro.check.convergence`): a :class:`Dfa`, a convergence
  partition or a whole :class:`CompiledDfa` is checked against the
  invariants the paper's correctness rests on — the transition table is
  in-bounds, convergence sets partition the state space, the three
  kernel encodings are transition-equivalent, content addresses
  re-derive — and each convergence set is *exactly* certified as
  proven-convergent / proven-divergent / unknown by closing its
  set-automaton, cross-checked against the profiled census.
- **Repo lint** (:mod:`repro.check.lint`): AST rules for this
  codebase's real failure modes (dtype-less hot-path allocations,
  unguarded shared memory, stray multiprocessing, instrumentation
  bypasses, mutable defaults, overbroad excepts) with an inline
  ``# repro: noqa(CODE)`` suppression mechanism — plus the
  flow-sensitive families in :mod:`repro.check.flow`: a per-function
  CFG + worklist dataflow engine proving resource lifecycles (R2xx:
  SharedMemory close-and-unlink on every path, file/mmap handles,
  escaping buffer views, pool teardown) and numpy dtype/value-range
  safety (R3xx: narrow-integer overflow, out-of-range casts, hot-path
  upcasts, unguarded gathers) over the repo's own source.

Findings are :class:`~repro.check.diagnostics.Diagnostic` records
(severity, code, location) rendered as text, JSON, or SARIF
(:mod:`repro.check.sarif`); error severity is the CI gate
(``make check``).  Accepted findings live in a committed baseline
(:mod:`repro.check.baseline`); repeat runs replay unchanged files from
a content-hash cache (:mod:`repro.check.cache`).
"""

from repro.check.artifact import (
    verify_artifact_file,
    verify_compiled,
    verify_dfa,
    verify_native,
    verify_partition,
    verify_prefilter,
    verify_shard,
)
from repro.check.convergence import (
    CONVERGENT,
    DIVERGENT,
    UNKNOWN,
    CsCertificate,
    certify_partition,
    certify_set,
)
from repro.check.diagnostics import (
    CODES,
    Diagnostic,
    count_by_severity,
    has_errors,
    render_json,
    render_text,
)
from repro.check.baseline import apply_baseline, load_baseline, write_baseline
from repro.check.cache import cached_lint_paths
from repro.check.lint import (
    RULES,
    LintRule,
    default_rules,
    lint_paths,
    lint_source,
)
from repro.check.sarif import render_sarif

__all__ = [
    "CODES",
    "Diagnostic",
    "count_by_severity",
    "has_errors",
    "render_json",
    "render_text",
    "verify_dfa",
    "verify_partition",
    "verify_compiled",
    "verify_artifact_file",
    "verify_native",
    "verify_prefilter",
    "verify_shard",
    "CONVERGENT",
    "DIVERGENT",
    "UNKNOWN",
    "CsCertificate",
    "certify_set",
    "certify_partition",
    "RULES",
    "LintRule",
    "default_rules",
    "lint_source",
    "lint_paths",
    "cached_lint_paths",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "render_sarif",
]
