"""``repro check`` — static soundness verification for CSE artifacts.

Two pillars (see ``docs/static_analysis.md`` for every diagnostic code):

- **Artifact verification** (:mod:`repro.check.artifact`,
  :mod:`repro.check.convergence`): a :class:`Dfa`, a convergence
  partition or a whole :class:`CompiledDfa` is checked against the
  invariants the paper's correctness rests on — the transition table is
  in-bounds, convergence sets partition the state space, the three
  kernel encodings are transition-equivalent, content addresses
  re-derive — and each convergence set is *exactly* certified as
  proven-convergent / proven-divergent / unknown by closing its
  set-automaton, cross-checked against the profiled census.
- **Repo lint** (:mod:`repro.check.lint`): AST rules for this
  codebase's real failure modes (dtype-less hot-path allocations,
  unguarded shared memory, stray multiprocessing, instrumentation
  bypasses, mutable defaults, overbroad excepts) with an inline
  ``# repro: noqa(CODE)`` suppression mechanism.

Findings are :class:`~repro.check.diagnostics.Diagnostic` records
(severity, code, location) rendered as text or JSON; error severity is
the CI gate (``make check``).
"""

from repro.check.artifact import (
    verify_artifact_file,
    verify_compiled,
    verify_dfa,
    verify_partition,
    verify_prefilter,
    verify_shard,
)
from repro.check.convergence import (
    CONVERGENT,
    DIVERGENT,
    UNKNOWN,
    CsCertificate,
    certify_partition,
    certify_set,
)
from repro.check.diagnostics import (
    CODES,
    Diagnostic,
    count_by_severity,
    has_errors,
    render_json,
    render_text,
)
from repro.check.lint import RULES, LintRule, lint_paths, lint_source

__all__ = [
    "CODES",
    "Diagnostic",
    "count_by_severity",
    "has_errors",
    "render_json",
    "render_text",
    "verify_dfa",
    "verify_partition",
    "verify_compiled",
    "verify_artifact_file",
    "verify_prefilter",
    "verify_shard",
    "CONVERGENT",
    "DIVERGENT",
    "UNKNOWN",
    "CsCertificate",
    "certify_set",
    "certify_partition",
    "RULES",
    "LintRule",
    "lint_source",
    "lint_paths",
]
