"""R2xx — flow-sensitive resource-lifecycle verification.

PR 4's R102 could only pattern-match "a ``finally`` that mentions
``.close`` and ``.unlink``"; these rules walk the function's actual
:class:`~repro.check.flow.cfg.CFG` and prove, path by path, that every
locally-acquired resource is released before the function is left:

R201  a ``SharedMemory`` handle reaches a function exit unclosed on
      some path — a ``/dev/shm`` mapping outlives the scan.
R202  a ``SharedMemory(create=True)`` segment reaches an exit without
      ``unlink`` on some path — the *file* leaks for the machine's
      lifetime even after every process closed it.
R203  a resource is released twice along one path (``close``/``close``
      or ``unlink``/``unlink``) — the second call raises or, worse,
      releases a recycled name.
R204  a file handle / ``mmap`` / :class:`~repro.ingest.InputView`
      reaches an exit unclosed on some path.
R205  a buffer view (``np.frombuffer(m)``, ``memoryview(m)``,
      ``m.view8()``) escapes the scope that owns its backing buffer
      after — or without preventing — the buffer's release: the
      escaped array would read unmapped pages.
R206  a pool / executor / live server reaches an exit without
      teardown (``shutdown``/``stop``/``terminate``) on some path.

Leaks proven on a *normal* path (fall-through, ``return``) are errors;
leaks that exist only because an exception could fire mid-function are
warnings — they mark the spot where a ``try``/``finally`` or ``with``
belongs.  **Escape ends the obligation**: a resource that is returned,
yielded, stored into an attribute/global/container, captured by a
nested function, or passed to another call transfers ownership and is
not this function's leak (this is what keeps the worker-side cached
attach in ``software.py`` clean without a suppression).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.check.diagnostics import Diagnostic, register_code
from repro.check.flow.cfg import (
    FOR_ITER,
    STMT,
    TEST,
    WITH_ENTER,
    WITH_EXIT,
    Block,
    CFG,
    Event,
    build_cfg,
)
from repro.check.flow.dataflow import Analysis, solve

__all__ = ["ResourceFlowRule", "RESOURCE_KINDS"]

R201 = register_code("R201", "SharedMemory not closed on every path")
R202 = register_code("R202", "created SharedMemory not unlinked on every path")
R203 = register_code("R203", "resource released twice along one path")
R204 = register_code("R204", "file/mmap handle not closed on every path")
R205 = register_code("R205", "buffer view escapes its owning scope")
R206 = register_code("R206", "pool/executor/server not torn down on every path")

# resource kinds and how each is acquired / released
SHM = "shm"
FILE = "file"
POOL = "pool"
RESOURCE_KINDS = (SHM, FILE, POOL)

_LEAK_CODE = {SHM: R201, FILE: R204, POOL: R206}
_CLOSE_VERBS = {
    SHM: frozenset({"close"}),
    FILE: frozenset({"close"}),
    POOL: frozenset({"shutdown", "stop", "terminate", "close"}),
}
#: helper-call names that fully release whatever they are handed
_RELEASE_HELPER_RE = re.compile(
    r"release|cleanup|teardown|dispose|close_all|shutdown")
#: module names whose ``.open`` attribute is a file constructor
_OPEN_MODULES = frozenset({"io", "gzip", "bz2", "lzma", "codecs"})
#: calls that create a *view* of their buffer argument, not an owner
_VIEW_CALLS = frozenset({"frombuffer", "memoryview", "asarray"})
_VIEW_METHODS = frozenset({"view8"})
#: reads that never take ownership
_SAFE_CALLS = frozenset({"len", "bool", "int", "str", "repr", "print",
                         "isinstance", "id", "hash"})

# ----------------------------------------------------------------------
# abstract facts
# ----------------------------------------------------------------------
# a resource variable's possible states on the paths reaching a point:
# ``(closed, unlinked)`` bool pairs, or ESC once ownership has moved.
ESC = "esc"
RState = Union[Tuple[bool, bool], str]
# ("res", kind, must_unlink, site_line, states)
# ("view", owner_name, site_line, states)  with states in {ALIVE, DANGLING, ESC}
ALIVE = "alive"
DANGLING = "dangling"
VarFact = Tuple[object, ...]
Fact = Dict[str, VarFact]


def _res(kind: str, must_unlink: bool, line: int,
         states: FrozenSet[RState]) -> VarFact:
    return ("res", kind, must_unlink, line, states)


def _view(owner: str, line: int, states: FrozenSet[str]) -> VarFact:
    return ("view", owner, line, states)


def _join_var(a: VarFact, b: VarFact) -> VarFact:
    if a[0] != b[0] or a[1] != b[1]:
        # same name bound to different things on different paths: the
        # obligation is ambiguous — give up on this variable
        if a[0] == "res":
            return _res(str(a[1]), bool(a[2]), int(a[3]),  # type: ignore[arg-type]
                        frozenset({ESC}))
        return _view(str(a[1]), int(a[2]), frozenset({ESC}))
    if a[0] == "res":
        return _res(str(a[1]), bool(a[2]) or bool(b[2]),
                    min(int(a[3]), int(b[3])),  # type: ignore[arg-type]
                    frozenset(a[4]) | frozenset(b[4]))  # type: ignore[arg-type]
    return _view(str(a[1]), min(int(a[2]), int(b[2])),  # type: ignore[arg-type]
                 frozenset(a[3]) | frozenset(b[3]))  # type: ignore[arg-type]


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _classify_acquisition(call: ast.Call) -> Optional[Tuple[str, bool]]:
    """``(kind, must_unlink)`` when ``call`` acquires a tracked resource."""
    name = _call_name(call.func)
    if name == "SharedMemory":
        create = any(
            kw.arg == "create" and isinstance(kw.value, ast.Constant)
            and bool(kw.value.value)
            for kw in call.keywords
        )
        return (SHM, create)
    if name == "open":
        if isinstance(call.func, ast.Name):
            return (FILE, False)
        if isinstance(call.func, ast.Attribute) \
                and isinstance(call.func.value, ast.Name) \
                and call.func.value.id in _OPEN_MODULES:
            return (FILE, False)
        return None
    if name in ("fdopen", "open_input", "NamedTemporaryFile",
                "TemporaryFile"):
        return (FILE, False)
    if name == "mmap":
        # mmap.mmap(...) — a mapping is closed like a file
        return (FILE, False)
    if name in ("ProcessPoolExecutor", "ThreadPoolExecutor", "Pool",
                "segment_pool", "serve", "ObsServer",
                "ThreadingHTTPServer", "HTTPServer"):
        return (POOL, False)
    return None


def _view_owner(expr: ast.expr, tracked: Fact) -> Optional[str]:
    """The tracked resource a view-creating ``expr`` aliases, if any."""
    call = expr
    # np view of a view slice: v[a:b] keeps the owner
    while isinstance(call, ast.Subscript):
        call = call.value
    if isinstance(call, ast.Name):
        fact = tracked.get(call.id)
        if fact is not None and fact[0] == "view":
            return str(fact[1])
        return None
    if not isinstance(call, ast.Call):
        return None
    name = _call_name(call.func)
    if name in _VIEW_METHODS and isinstance(call.func, ast.Attribute):
        base = call.func.value
        if isinstance(base, ast.Name) and base.id in tracked:
            return base.id
        return None
    if name not in _VIEW_CALLS or not call.args:
        return None
    arg = call.args[0]
    # np.frombuffer(shm.buf, ...) aliases shm's segment
    while isinstance(arg, ast.Attribute):
        arg = arg.value
    if isinstance(arg, ast.Name) and arg.id in tracked:
        fact = tracked[arg.id]
        if fact[0] == "view":
            return str(fact[1])
        return arg.id
    return None


def _names_in(expr: ast.expr) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


class _Finding:
    """A deduplicated finding site collected during transfer."""

    __slots__ = ("code", "line", "message", "severity")

    def __init__(self, code: str, line: int, message: str,
                 severity: str = "error"):
        self.code = code
        self.line = line
        self.message = message
        self.severity = severity

    def key(self) -> Tuple[str, int]:
        # severity is deliberately not part of the key: when the same
        # leak shows on a normal and an exceptional exit, the error
        # (reported first) wins over its warning twin
        return (self.code, self.line)


class _ResourceAnalysis(Analysis[Fact]):
    """Forward resource-state machine over one function's CFG."""

    direction = "forward"

    def __init__(self) -> None:
        self.findings: Dict[Tuple[str, int], _Finding] = {}
        #: names declared ``global``/``nonlocal`` — binding one of these
        #: hands the resource to module/outer scope
        self.global_names: Set[str] = set()

    # -- lattice -------------------------------------------------------
    def initial(self) -> Fact:
        return {}

    def bottom(self) -> Fact:
        return {}

    def join(self, a: Fact, b: Fact) -> Fact:
        out = dict(a)
        for name, fact in b.items():
            out[name] = _join_var(out[name], fact) if name in out else fact
        return out

    # -- reporting -----------------------------------------------------
    def _report(self, code: str, line: int, message: str,
                severity: str = "error") -> None:
        finding = _Finding(code, line, message, severity)
        self.findings.setdefault(finding.key(), finding)

    # -- transitions ---------------------------------------------------
    @staticmethod
    def _is_open(state: RState) -> bool:
        return state != ESC and not state[0]  # type: ignore[index]

    def _escape(self, fact: Fact, name: str) -> None:
        entry = fact.get(name)
        if entry is None:
            return
        if entry[0] == "res":
            fact[name] = _res(str(entry[1]), bool(entry[2]), int(entry[3]),  # type: ignore[arg-type]
                              frozenset({ESC}))
            # ownership of the buffer moved with it: its views are no
            # longer this scope's problem either
            for vname, ventry in list(fact.items()):
                if ventry[0] == "view" and ventry[1] == name:
                    fact[vname] = _view(name, int(ventry[2]),  # type: ignore[arg-type]
                                        frozenset({ESC}))
        else:
            states = frozenset(entry[3])  # type: ignore[arg-type]
            if DANGLING in states:
                self._report(
                    R205, int(entry[2]),  # type: ignore[arg-type]
                    f"view of {entry[1]!r} escapes after its backing "
                    "buffer was released on some path: the escaped array "
                    "reads freed memory")
            fact[name] = _view(str(entry[1]), int(entry[2]),  # type: ignore[arg-type]
                               frozenset({ESC}))

    def _release(self, fact: Fact, name: str, verb: str, line: int) -> None:
        entry = fact.get(name)
        if entry is None or entry[0] != "res":
            return
        kind = str(entry[1])
        states: FrozenSet[RState] = frozenset(entry[4])  # type: ignore[arg-type]
        closing = verb in _CLOSE_VERBS[kind]
        unlinking = kind == SHM and verb == "unlink"
        if not closing and not unlinking:
            return
        concrete = [s for s in states if s != ESC]
        must = ESC not in states  # an escaped path's state is unknown
        if closing and concrete and must \
                and all(s[0] for s in concrete):  # type: ignore[index]
            self._report(
                R203, line,
                f"{name}.{verb}() but {name!r} is already closed on every "
                "path reaching this statement")
        if unlinking and concrete and must \
                and all(s[1] for s in concrete):  # type: ignore[index]
            self._report(
                R203, line,
                f"{name}.unlink() but {name!r} is already unlinked on "
                "every path reaching this statement")
        new_states: Set[RState] = set()
        for state in states:
            if state == ESC:
                new_states.add(state)
                continue
            closed, unlinked = state  # type: ignore[misc]
            new_states.add((closed or closing, unlinked or unlinking))
        fact[name] = _res(kind, bool(entry[2]), int(entry[3]),  # type: ignore[arg-type]
                          frozenset(new_states))
        if closing:
            # releasing the buffer invalidates everything aliasing it
            for vname, ventry in list(fact.items()):
                if ventry[0] != "view" or ventry[1] != name:
                    continue
                vstates = frozenset(ventry[3])  # type: ignore[arg-type]
                if ESC in vstates:
                    self._report(
                        R205, line,
                        f"closing {name!r} after a view of it escaped the "
                        "function: the escaped array now reads freed "
                        "memory")
                fact[vname] = _view(name, int(ventry[2]),  # type: ignore[arg-type]
                                    frozenset({DANGLING}))

    def _bind(self, fact: Fact, target: ast.expr, value: VarFact,
              line: int) -> None:
        if not isinstance(target, ast.Name):
            return
        self._check_rebind(fact, target.id, line)
        fact[target.id] = value
        if target.id in self.global_names:
            self._escape(fact, target.id)

    def _check_rebind(self, fact: Fact, name: str, line: int) -> None:
        entry = fact.get(name)
        if entry is None or entry[0] != "res":
            fact.pop(name, None)
            return
        states = frozenset(entry[4])  # type: ignore[arg-type]
        if any(self._is_open(s) for s in states):
            self._report(
                _LEAK_CODE[str(entry[1])], line,
                f"{name!r} rebound while the {entry[1]} acquired at line "
                f"{entry[3]} is still open on some path: the old handle "
                "becomes unreachable without a close")
        fact.pop(name, None)

    # -- expression scanning -------------------------------------------
    def _scan_escapes(self, fact: Fact, expr: ast.expr) -> None:
        """Mark tracked names that ``expr`` hands to someone else."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in _SAFE_CALLS or name in _VIEW_CALLS \
                        or name in _VIEW_METHODS:
                    continue
                full_release = bool(_RELEASE_HELPER_RE.search(name))
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    for ref in _names_in(arg):
                        if ref not in fact:
                            continue
                        if full_release and fact[ref][0] == "res":
                            line = getattr(node, "lineno", 0)
                            self._release(fact, ref, "close", line)
                            if fact[ref][1] == SHM:
                                self._release(fact, ref, "unlink", line)
                        else:
                            self._escape(fact, ref)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                # a closure capturing the handle may release it later —
                # that is beyond one function's paths, so ownership moves
                for ref in _free_names(node) & set(fact):
                    self._escape(fact, ref)
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                for ref in _names_in(node) & set(fact):
                    self._escape(fact, ref)

    def _handle_call_stmt(self, fact: Fact, call: ast.Call) -> bool:
        """``x.close()`` / ``x.unlink()`` style transitions; True if so."""
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            name = func.value.id
            if name in fact and fact[name][0] == "res":
                kind = str(fact[name][1])
                if func.attr in _CLOSE_VERBS[kind] or (
                        kind == SHM and func.attr == "unlink"):
                    self._release(fact, name, func.attr, call.lineno)
                    return True
        return False

    # -- the transfer function -----------------------------------------
    def transfer(self, block: Block, fact: Fact) -> Fact:
        fact = dict(fact)
        for event in block.events:
            self._transfer_event(fact, event)
        return fact

    def exc_transfer(self, block: Block, in_fact: Fact,
                     out_fact: Fact) -> Fact:
        # if the acquiring statement itself raises, the binding never
        # happened — its exception edge must not claim an open resource
        for event in block.events:
            node = event.node
            if event.kind == WITH_ENTER:
                assert isinstance(node, ast.withitem)
                if isinstance(node.context_expr, ast.Call) \
                        and _classify_acquisition(node.context_expr):
                    return in_fact
            elif event.kind == STMT and isinstance(
                    node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if isinstance(value, ast.Call) \
                        and _classify_acquisition(value):
                    return in_fact
        return out_fact

    def _transfer_event(self, fact: Fact, event: Event) -> None:
        node = event.node
        if event.kind == WITH_ENTER:
            assert isinstance(node, ast.withitem)
            ctx = node.context_expr
            acquired: Optional[VarFact] = None
            if isinstance(ctx, ast.Call):
                spec = _classify_acquisition(ctx)
                if spec is not None:
                    acquired = _res(spec[0], spec[1], ctx.lineno,
                                    frozenset({(False, False)}))
            if acquired is None:
                self._scan_escapes(fact, ctx)
            if node.optional_vars is not None and acquired is not None:
                self._bind(fact, node.optional_vars, acquired,
                           node.context_expr.lineno)
            return
        if event.kind == WITH_EXIT:
            assert isinstance(node, ast.withitem)
            target = node.optional_vars
            if isinstance(target, ast.Name) and target.id in fact \
                    and fact[target.id][0] == "res":
                kind = str(fact[target.id][1])
                verb = "close" if "close" in _CLOSE_VERBS[kind] else \
                    next(iter(_CLOSE_VERBS[kind]))
                self._release(fact, target.id, verb,
                              getattr(target, "lineno", 0))
            return
        if event.kind == FOR_ITER:
            assert isinstance(node, (ast.For, ast.AsyncFor))
            self._scan_escapes(fact, node.iter)
            if isinstance(node.target, ast.Name):
                self._check_rebind(fact, node.target.id, node.lineno)
            return
        if event.kind == TEST:
            if isinstance(node, ast.expr):
                self._scan_escapes(fact, node)
            return
        # plain statements
        if isinstance(node, ast.Assign):
            self._transfer_assign(fact, node.targets, node.value,
                                  node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._transfer_assign(fact, [node.target], node.value,
                                  node.lineno)
        elif isinstance(node, ast.AugAssign):
            self._scan_escapes(fact, node.value)
        elif isinstance(node, ast.Expr):
            value = node.value
            if isinstance(value, ast.Call) \
                    and self._handle_call_stmt(fact, value):
                return
            if isinstance(value, (ast.Yield, ast.YieldFrom, ast.Await)):
                inner = getattr(value, "value", None)
                if isinstance(inner, ast.expr):
                    self._yield_escape(fact, inner)
                return
            self._scan_escapes(fact, value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._yield_escape(fact, node.value)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._scan_escapes(fact, node.exc)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._check_rebind(fact, target.id, node.lineno)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            self.global_names.update(node.names)
            for name in node.names:
                if name in fact:
                    self._escape(fact, name)
        elif isinstance(node, ast.ExceptHandler):
            pass  # the handler's name binding is not a resource
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            for ref in _free_names(node) & set(fact):
                self._escape(fact, ref)
        elif isinstance(node, ast.stmt):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._scan_escapes(fact, child)

    def _yield_escape(self, fact: Fact, expr: ast.expr) -> None:
        """``return x`` / ``yield x``: ownership leaves the function."""
        # a returned *view* of a still-local buffer is the R205 case the
        # docstring describes; a returned resource is a clean handoff
        for ref in _names_in(expr) & set(fact):
            self._escape(fact, ref)
        self._scan_escapes(fact, expr)

    def _transfer_assign(self, fact: Fact, targets: List[ast.expr],
                         value: ast.expr, line: int) -> None:
        acquired: Optional[VarFact] = None
        if isinstance(value, ast.Call):
            spec = _classify_acquisition(value)
            if spec is not None:
                acquired = _res(spec[0], spec[1], line,
                                frozenset({(False, False)}))
        owner = None if acquired is not None else _view_owner(value, fact)
        if acquired is None and owner is None:
            # plain value: anything tracked on the right escapes into it
            self._scan_escapes(fact, value)
            # an alias (`cache = shm`) makes ownership ambiguous: the
            # obligation may be discharged through either name — give up
            if isinstance(value, ast.Name) and value.id in fact:
                self._escape(fact, value.id)
        if owner is not None:
            owner_fact = fact.get(owner)
            states = frozenset({ALIVE})
            if owner_fact is not None and owner_fact[0] == "res":
                rstates = frozenset(owner_fact[4])  # type: ignore[arg-type]
                if rstates and all(
                        s != ESC and s[0]  # type: ignore[index]
                        for s in rstates):
                    states = frozenset({DANGLING})
            acquired = _view(owner, line, states)
        for target in targets:
            if isinstance(target, ast.Name):
                if acquired is not None:
                    self._bind(fact, target, acquired, line)
                else:
                    self._check_rebind(fact, target.id, line)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                # storing into an object: the value escapes; the base
                # expression is only being indexed, not consumed
                if acquired is not None:
                    pass  # anonymous handoff (self.f = open(...)) — owned elsewhere
                for ref in _names_in(value) & set(fact):
                    self._escape(fact, ref)
            elif isinstance(target, (ast.Tuple, ast.List)):
                # tuple unpack of an acquisition result: untrackable
                for ref in _names_in(value) & set(fact):
                    self._escape(fact, ref)


def _free_names(node: ast.AST) -> Set[str]:
    """Names referenced inside a nested scope definition."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _function_globals(func: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            out.update(node.names)
    return out


class ResourceFlowRule:
    """Runs the R2xx analysis over every function in a module."""

    code = R201  # representative; findings carry their own codes
    name = "resource-flow"

    def check(self, ctx: "object") -> Iterator[Diagnostic]:
        for func, cfg in _cfgs(ctx):
            analysis = _ResourceAnalysis()
            analysis.global_names = _function_globals(func)
            in_facts = solve(cfg, analysis)
            # findings raised mid-fixpoint can be stale (a path joined in
            # later may invalidate a "must" claim): re-run the transfer
            # once over the converged facts and keep only those findings
            analysis.findings = {}
            for block in cfg.blocks:
                if block.bid in in_facts:
                    analysis.transfer(block, in_facts[block.bid])
            self._check_exits(cfg, analysis, in_facts)
            for finding in analysis.findings.values():
                yield Diagnostic(
                    code=finding.code, severity=finding.severity,
                    message=finding.message, location=ctx.path,  # type: ignore[attr-defined]
                    line=finding.line, rule=self.name,
                    function=func.name)

    @staticmethod
    def _exit_fact(cfg: CFG, analysis: _ResourceAnalysis,
                   in_facts: Dict[int, Fact], block: Block) -> Fact:
        fact = in_facts.get(block.bid)
        if fact is None:
            return {}
        return analysis.transfer(block, fact)

    def _check_exits(self, cfg: CFG, analysis: _ResourceAnalysis,
                     in_facts: Dict[int, Fact]) -> None:
        for block, severity, where in (
            (cfg.exit, "error", "a normal exit"),
            (cfg.raise_exit, "warning", "an exceptional exit"),
        ):
            fact = self._exit_fact(cfg, analysis, in_facts, block)
            for name, entry in fact.items():
                if entry[0] != "res":
                    continue
                kind = str(entry[1])
                states = frozenset(entry[4])  # type: ignore[arg-type]
                line = int(entry[3])  # type: ignore[arg-type]
                if any(s != ESC and not s[0] for s in states):  # type: ignore[index]
                    noun = {SHM: "SharedMemory segment",
                            FILE: "file/mmap handle",
                            POOL: "pool/server"}[kind]
                    verb = "closed" if kind != POOL else "torn down"
                    self._found(
                        analysis, _LEAK_CODE[kind], line, severity,
                        f"{noun} {name!r} acquired at line {line} reaches "
                        f"{where} without being {verb} on some path")
                if kind == SHM and bool(entry[2]) and any(
                        s != ESC and s[0] and not s[1]  # type: ignore[index]
                        for s in states):
                    self._found(
                        analysis, R202, line, severity,
                        f"created SharedMemory {name!r} (line {line}) is "
                        f"closed but reaches {where} without unlink on "
                        "some path: the /dev/shm file outlives every "
                        "process")

    @staticmethod
    def _found(analysis: _ResourceAnalysis, code: str, line: int,
               severity: str, message: str) -> None:
        finding = _Finding(code, line, message, severity)
        analysis.findings.setdefault(finding.key(), finding)


def _cfgs(ctx: "object") -> Iterator[Tuple[ast.AST, CFG]]:
    """Build (and memoize on the context) one CFG per function."""
    cache = getattr(ctx, "_flow_cfgs", None)
    if cache is None:
        cache = []
        for func in ast.walk(ctx.tree):  # type: ignore[attr-defined]
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cache.append((func, build_cfg(func)))
        ctx._flow_cfgs = cache  # type: ignore[attr-defined]
    return iter(cache)
