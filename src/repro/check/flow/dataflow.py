"""Generic worklist dataflow solver over :mod:`repro.check.flow.cfg`.

An analysis supplies a lattice (initial fact, ``join``, equality) and a
``transfer`` function from a block's input fact to its output fact; the
solver iterates to a fixpoint.  Forward and backward directions share
one engine — backward analyses run on the reversed edge relation.

Termination on lattices of unbounded height (the interval lattice of
:mod:`repro.check.flow.dtypeflow`) comes from *widening*: once a block
has been visited :attr:`Analysis.widen_after` times, the newly joined
input is widened against the previous one (typically jumping growing
bounds straight to the dtype's extremes), which caps the ascending
chain.  Analyses over finite lattices (the resource-state machine of
:mod:`repro.check.flow.resources`) leave ``widen`` unimplemented.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generic, List, Optional, TypeVar

from repro.check.flow.cfg import CFG, Block

__all__ = ["Analysis", "solve"]

Fact = TypeVar("Fact")


class Analysis(Generic[Fact]):
    """A dataflow problem: lattice + transfer.  Subclass and override."""

    #: "forward" (facts flow entry -> exit) or "backward"
    direction: str = "forward"
    #: visits of one block before widening kicks in
    widen_after: int = 3

    def initial(self) -> Fact:
        """The fact at the boundary (entry for forward analyses)."""
        raise NotImplementedError

    def bottom(self) -> Fact:
        """The identity of ``join`` — the fact of an unreached block."""
        raise NotImplementedError

    def join(self, a: Fact, b: Fact) -> Fact:
        raise NotImplementedError

    def equal(self, a: Fact, b: Fact) -> bool:
        return bool(a == b)

    def transfer(self, block: Block, fact: Fact) -> Fact:
        """The fact after executing ``block`` given ``fact`` before it."""
        raise NotImplementedError

    def exc_transfer(self, block: Block, in_fact: Fact,
                     out_fact: Fact) -> Fact:
        """The fact carried by ``block``'s *exception* edges.

        When a statement raises, its side effects may not have applied:
        an acquisition's binding never happened, so the resource rules
        return ``in_fact`` for those blocks.  Default: the normal
        ``out_fact`` (sound for analyses that join both anyway).
        """
        return out_fact

    def widen(self, old: Fact, new: Fact) -> Fact:
        """Accelerate convergence; default is plain join (finite lattices)."""
        return self.join(old, new)


def solve(cfg: CFG, analysis: Analysis[Fact]) -> Dict[int, Fact]:
    """Run ``analysis`` to fixpoint; returns the *input* fact per block.

    The input fact of a block is the join over its predecessors' output
    facts (successors' for backward analyses), with ``initial()`` at the
    boundary block.  Callers re-apply ``transfer`` on a block when they
    need the fact at a specific event inside it.
    """
    forward = analysis.direction == "forward"
    boundary = cfg.entry if forward else cfg.exit

    def preds(block: Block) -> List[Block]:
        return block.preds if forward else block.succs

    def succs(block: Block) -> List[Block]:
        return block.succs if forward else block.preds

    in_facts: Dict[int, Fact] = {}
    out_facts: Dict[int, Fact] = {}
    exc_outs: Dict[int, Fact] = {}
    visits: Dict[int, int] = {}
    worklist: "deque[Block]" = deque(cfg.blocks)
    queued = {b.bid for b in cfg.blocks}

    def edge_fact(pred: Block, block: Block) -> Fact:
        # forward only: an exceptional edge carries the analysis's
        # raise-time fact instead of the normal out-fact
        if forward and (pred.bid, block.bid) in cfg.exc_edges:
            return exc_outs[pred.bid]
        return out_facts[pred.bid]

    while worklist:
        block = worklist.popleft()
        queued.discard(block.bid)
        if block is boundary:
            joined = analysis.initial()
        else:
            acc: Optional[Fact] = None
            for pred in preds(block):
                if pred.bid not in out_facts:
                    continue
                fact = edge_fact(pred, block)
                acc = fact if acc is None else analysis.join(acc, fact)
            joined = acc if acc is not None else analysis.bottom()
        old_in = in_facts.get(block.bid)
        visits[block.bid] = visits.get(block.bid, 0) + 1
        if old_in is not None and visits[block.bid] > analysis.widen_after:
            joined = analysis.widen(old_in, joined)
        if old_in is not None and analysis.equal(old_in, joined) \
                and block.bid in out_facts:
            continue
        in_facts[block.bid] = joined
        new_out = analysis.transfer(block, joined)
        new_exc = analysis.exc_transfer(block, joined, new_out)
        old_out = out_facts.get(block.bid)
        old_exc = exc_outs.get(block.bid)
        out_facts[block.bid] = new_out
        exc_outs[block.bid] = new_exc
        if old_out is None or not analysis.equal(old_out, new_out) \
                or old_exc is None or not analysis.equal(old_exc, new_exc):
            for succ in succs(block):
                if succ.bid not in queued:
                    worklist.append(succ)
                    queued.add(succ.bid)
    return in_facts
