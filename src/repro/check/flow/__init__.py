"""Flow-sensitive static analysis: CFG + dataflow + R2xx/R3xx rules.

The package has three layers, each usable on its own:

``cfg``
    lowers one function's AST to a control-flow graph with explicit
    exception edges, ``finally`` duplication per continuation, and
    synthetic ``with``-exit events.
``dataflow``
    a generic forward/backward worklist solver with widening.
``resources`` / ``dtypeflow``
    the two rule families built on top — resource-lifecycle
    (R201–R206) and numpy dtype/value-range abstract interpretation
    (R301–R304).

:data:`FLOW_RULES` is what ``repro check lint --flow`` (the default)
appends to the per-node rule set.
"""

from __future__ import annotations

from repro.check.flow.cfg import CFG, Block, Event, build_cfg, iter_functions
from repro.check.flow.dataflow import Analysis, solve
from repro.check.flow.dtypeflow import DtypeFlowRule
from repro.check.flow.resources import ResourceFlowRule

__all__ = [
    "Analysis",
    "Block",
    "CFG",
    "DtypeFlowRule",
    "Event",
    "FLOW_RULES",
    "ResourceFlowRule",
    "build_cfg",
    "iter_functions",
    "solve",
]

FLOW_RULES = [ResourceFlowRule(), DtypeFlowRule()]
