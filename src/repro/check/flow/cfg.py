"""Intraprocedural control-flow graphs over Python source.

The PR-4 lint sees one AST node at a time; the flow rules
(:mod:`repro.check.flow.resources`, :mod:`repro.check.flow.dtypeflow`)
need *paths* — "is this handle closed on every way out of the
function", "what range can this expression hold after the loop".  This
module lowers one ``ast.FunctionDef`` into a :class:`CFG` those
analyses can run a worklist solver over.

Lowering decisions (all chosen so may/must dataflow stays sound):

- **one statement per block** — exception edges attach to exactly the
  statement that can raise, so a must-analysis never credits cleanup
  code that a raise would have skipped;
- ``if``/``while``/``for`` produce the usual diamond/loop shapes with
  ``break``/``continue`` resolved against an enclosing-loop stack;
  ``while True`` omits the false edge so code after an unbreakable loop
  is not treated as reachable;
- every statement that can raise gets an edge to the innermost
  exception continuation — the enclosing ``try``'s handlers (plus its
  ``finally``), or the function's :attr:`CFG.raise_exit`;
- ``finally`` bodies are **duplicated per continuation** (normal exit,
  exception propagation, and each ``return``/``break``/``continue``
  that jumps through them), the classic inlining that keeps
  "``return`` still runs the ``finally`` cleanup" precise without
  interprocedural reasoning — the shared AST nodes keep their line
  numbers, only the blocks are copies;
- ``with`` lowers to enter-event + body + a synthetic
  :data:`WITH_EXIT` event on *every* outgoing path (it is exactly a
  ``try``/``finally`` whose finalizer calls ``__exit__``), which is how
  the resource rules learn that ``with open(...)`` closes on all paths;
- nested ``def``/``lambda``/comprehensions are *not* descended into:
  their bodies run at another time (or scope), so their statements must
  not appear on the enclosing function's paths.  The defining statement
  itself is kept as an event so escape analysis can see captured names.

Functions here are deliberately small: the graph is plain data
(:class:`Block` lists), and the solver in
:mod:`repro.check.flow.dataflow` is the only consumer.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = ["STMT", "TEST", "WITH_ENTER", "WITH_EXIT", "FOR_ITER",
           "Event", "Block", "CFG", "build_cfg", "iter_functions"]

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: event kinds
STMT = "stmt"            # a simple statement (Assign, Expr, Return, ...)
TEST = "test"            # a branch/loop condition expression
WITH_ENTER = "with-enter"  # a withitem: context expr evaluated + bound
WITH_EXIT = "with-exit"    # a withitem: __exit__ runs (close semantics)
FOR_ITER = "for-iter"      # a For header: iterator advanced + target bound


class Event:
    """One step of execution inside a block: an AST node plus its role."""

    __slots__ = ("kind", "node")

    def __init__(self, kind: str, node: ast.AST) -> None:
        self.kind = kind
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        line = getattr(self.node, "lineno", "?")
        return f"Event({self.kind}, L{line})"


class Block:
    """A straight-line run of events with explicit successor edges."""

    __slots__ = ("bid", "events", "succs", "preds", "label")

    def __init__(self, bid: int, label: str = "") -> None:
        self.bid = bid
        self.events: List[Event] = []
        self.succs: List["Block"] = []
        self.preds: List["Block"] = []
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Block({self.bid}{' ' + self.label if self.label else ''}, "
                f"{len(self.events)} ev, -> "
                f"{[s.bid for s in self.succs]})")


class CFG:
    """The graph for one function: entry, normal exit, raise exit."""

    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.blocks: List[Block] = []
        #: (src bid, dst bid) pairs that are taken only when the src
        #: block's statement *raises* — its side effects (a binding, a
        #: close) may not have happened, so the solver lets the analysis
        #: supply a separate fact for these edges (``exc_transfer``)
        self.exc_edges: Set[Tuple[int, int]] = set()
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self.raise_exit = self.new_block("raise-exit")

    def new_block(self, label: str = "") -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def add_edge(self, src: Block, dst: Block, exc: bool = False) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)
            if exc:
                self.exc_edges.add((src.bid, dst.bid))
        elif not exc:
            # re-added as a normal edge: normal semantics win (the
            # statement's effects definitely apply on some taking)
            self.exc_edges.discard((src.bid, dst.bid))

    def exits(self) -> Tuple[Block, Block]:
        return self.exit, self.raise_exit


#: statements that can never raise — everything else gets an exception
#: edge to the innermost handler continuation
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal,
             ast.Import, ast.ImportFrom)

#: bare ``x.<verb>()`` release calls are modelled as non-raising: a
#: close that fails leaves nothing the caller could still release, and
#: keeping the edge would warn on every ``close(); unlink()`` pair
_RELEASE_ATTRS = frozenset({"close", "unlink", "shutdown", "stop",
                            "terminate"})


def _is_release_call(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr in _RELEASE_ATTRS)


def _is_catch_all(type_expr: Optional[ast.expr]) -> bool:
    """Whether an ``except`` clause catches every exception."""
    if type_expr is None:
        return True
    if isinstance(type_expr, ast.Name):
        return type_expr.id in ("BaseException", "Exception")
    if isinstance(type_expr, ast.Attribute):
        return type_expr.attr in ("BaseException", "Exception")
    if isinstance(type_expr, ast.Tuple):
        return any(_is_catch_all(elt) for elt in type_expr.elts)
    return False


class _Builder:
    """Lowers one function body; reentrant for ``finally`` duplication."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        # (continue_target, break_target, loop_depth_of_finally_stack)
        self.loop_stack: List[Tuple[Block, Block, int]] = []
        # innermost-last; each entry is (cleanup statements or synthetic
        # events, exc_stack depth in effect *outside* the owning try) —
        # the depth restores the right exception continuation when the
        # cleanup is inlined for a return/break/continue
        self.finally_stack: List[
            Tuple[Sequence[Union[ast.stmt, Event]], int]] = []
        # innermost-last; each entry is the blocks an exception may
        # continue at (handler entries and/or a finally prologue)
        self.exc_stack: List[List[Block]] = []

    # -- plumbing ------------------------------------------------------
    def _exc_targets(self) -> List[Block]:
        return self.exc_stack[-1] if self.exc_stack else [self.cfg.raise_exit]

    def _event_block(self, event: Event, cur: Block,
                     can_raise: bool = True) -> Block:
        """Append ``event`` in its own block after ``cur``; return it."""
        block = self.cfg.new_block()
        block.events.append(event)
        self.cfg.add_edge(cur, block)
        if can_raise:
            for target in self._exc_targets():
                self.cfg.add_edge(block, target, exc=True)
        return block

    def _run_finallys(self, cur: Block, upto: int = 0) -> Block:
        """Inline every enclosing ``finally`` body innermost-first.

        ``upto`` bounds the unwind (loop ``break`` only runs finallys
        inside the loop).  Returns the block the continuation resumes
        from once the cleanup copies have run.
        """
        saved_fin = self.finally_stack
        saved_exc = self.exc_stack
        for i in range(len(saved_fin) - 1, upto - 1, -1):
            body, exc_depth = saved_fin[i]
            # the duplicated cleanup runs outside its own try: restore
            # the exception continuation that enclosed the try itself
            self.finally_stack = list(saved_fin[:i])
            self.exc_stack = list(saved_exc[:exc_depth])
            cur = self._lower_body(body, cur)
        self.finally_stack = saved_fin
        self.exc_stack = saved_exc
        return cur

    # -- statement lowering --------------------------------------------
    def _lower_body(self, body: Sequence[Union[ast.stmt, Event]],
                    cur: Block) -> Block:
        for stmt in body:
            if isinstance(stmt, Event):
                cur = self._event_block(stmt, cur)
                continue
            cur = self._lower_stmt(stmt, cur)
        return cur

    def _lower_stmt(self, stmt: ast.stmt, cur: Block) -> Block:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, cur)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._lower_for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, cur)
        if isinstance(stmt, ast.Return):
            block = self._event_block(Event(STMT, stmt), cur)
            after = self._run_finallys(block)
            self.cfg.add_edge(after, self.cfg.exit)
            return self.cfg.new_block("dead")
        if isinstance(stmt, ast.Raise):
            # the exception edge added by _event_block is the whole
            # story: control never falls through a raise
            self._event_block(Event(STMT, stmt), cur)
            return self.cfg.new_block("dead")
        if isinstance(stmt, ast.Break):
            block = self._event_block(Event(STMT, stmt), cur,
                                      can_raise=False)
            if self.loop_stack:
                _, break_target, depth = self.loop_stack[-1]
                after = self._run_finallys(block, upto=depth)
                self.cfg.add_edge(after, break_target)
            return self.cfg.new_block("dead")
        if isinstance(stmt, ast.Continue):
            block = self._event_block(Event(STMT, stmt), cur,
                                      can_raise=False)
            if self.loop_stack:
                continue_target, _, depth = self.loop_stack[-1]
                after = self._run_finallys(block, upto=depth)
                self.cfg.add_edge(after, continue_target)
            return self.cfg.new_block("dead")
        # nested defs/classes are events (escape analysis reads their
        # free names) but their bodies are other scopes — no descent
        can_raise = not isinstance(stmt, _NO_RAISE) \
            and not _is_release_call(stmt)
        return self._event_block(Event(STMT, stmt), cur, can_raise=can_raise)

    def _lower_if(self, stmt: ast.If, cur: Block) -> Block:
        test = self._event_block(Event(TEST, stmt.test), cur)
        join = self.cfg.new_block("if-join")
        then_end = self._lower_body(stmt.body, test)
        self.cfg.add_edge(then_end, join)
        if stmt.orelse:
            else_end = self._lower_body(stmt.orelse, test)
            self.cfg.add_edge(else_end, join)
        else:
            self.cfg.add_edge(test, join)
        return join

    @staticmethod
    def _always_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _lower_while(self, stmt: ast.While, cur: Block) -> Block:
        header = self._event_block(Event(TEST, stmt.test), cur)
        after = self.cfg.new_block("loop-after")
        self.loop_stack.append((header, after, len(self.finally_stack)))
        body_end = self._lower_body(stmt.body, header)
        self.cfg.add_edge(body_end, header)  # back edge
        self.loop_stack.pop()
        if not self._always_true(stmt.test):
            if stmt.orelse:
                else_end = self._lower_body(stmt.orelse, header)
                self.cfg.add_edge(else_end, after)
            else:
                self.cfg.add_edge(header, after)
        return after

    def _lower_for(self, stmt: Union[ast.For, ast.AsyncFor],
                   cur: Block) -> Block:
        header = self._event_block(Event(FOR_ITER, stmt), cur)
        after = self.cfg.new_block("loop-after")
        self.loop_stack.append((header, after, len(self.finally_stack)))
        body_end = self._lower_body(stmt.body, header)
        self.cfg.add_edge(body_end, header)
        self.loop_stack.pop()
        if stmt.orelse:
            else_end = self._lower_body(stmt.orelse, header)
            self.cfg.add_edge(else_end, after)
        else:
            self.cfg.add_edge(header, after)  # iterator may be empty
        return after

    def _lower_try(self, stmt: ast.Try, cur: Block) -> Block:
        after = self.cfg.new_block("try-after")
        handler_entries = [self.cfg.new_block("handler")
                           for _ in stmt.handlers]
        # an exception in the body may land in any handler; if a
        # finally exists it also runs on the unmatched-exception path
        exc_continuations: List[Block] = list(handler_entries)
        fin_prologue: Optional[Block] = None
        if stmt.finalbody:
            fin_prologue = self.cfg.new_block("finally-exc")
            exc_continuations.append(fin_prologue)
            self.finally_stack.append((stmt.finalbody, len(self.exc_stack)))
        elif not any(_is_catch_all(h.type) for h in stmt.handlers):
            # no finally and no catch-all handler: an unmatched
            # exception propagates straight past this try
            exc_continuations.extend(self._exc_targets())
        self.exc_stack.append(exc_continuations)
        body_end = self._lower_body(stmt.body, cur)
        if stmt.orelse:
            body_end = self._lower_body(stmt.orelse, body_end)
        self.exc_stack.pop()

        # handler bodies run outside the try; their own exceptions
        # propagate outward — through the finally when present
        handler_ends: List[Block] = []
        if stmt.finalbody:
            assert fin_prologue is not None
            self.exc_stack.append([fin_prologue])
        for handler, entry in zip(stmt.handlers, handler_entries):
            if handler.type is not None:
                entry.events.append(Event(TEST, handler.type))
            if handler.name:
                entry.events.append(Event(STMT, handler))
            handler_ends.append(self._lower_body(handler.body, entry))
        if stmt.finalbody:
            self.exc_stack.pop()
            self.finally_stack.pop()
            # normal continuation: body/handlers fall into one shared
            # copy of the finally, then proceed to `after`
            fin_norm = self.cfg.new_block("finally")
            self.cfg.add_edge(body_end, fin_norm)
            for end in handler_ends:
                self.cfg.add_edge(end, fin_norm)
            fin_norm_end = self._lower_body(stmt.finalbody, fin_norm)
            self.cfg.add_edge(fin_norm_end, after)
            # exceptional continuation: its own copy, then re-raise
            assert fin_prologue is not None
            fin_exc_end = self._lower_body(stmt.finalbody, fin_prologue)
            for target in self._exc_targets():
                self.cfg.add_edge(fin_exc_end, target)
        else:
            self.cfg.add_edge(body_end, after)
            for end in handler_ends:
                self.cfg.add_edge(end, after)
        return after

    def _lower_with(self, stmt: Union[ast.With, ast.AsyncWith],
                    cur: Block) -> Block:
        # `with a, b:` is nested withs; lower innermost-last
        exits = [Event(WITH_EXIT, item) for item in stmt.items]
        for item in stmt.items:
            cur = self._event_block(Event(WITH_ENTER, item), cur)
        after = self.cfg.new_block("with-after")
        # __exit__ runs on every way out: model as a finally whose body
        # is the synthetic exit events (innermost manager exits first)
        fin_body: List[Event] = list(reversed(exits))
        fin_prologue = self.cfg.new_block("with-exc")
        self.finally_stack.append((fin_body, len(self.exc_stack)))
        self.exc_stack.append([fin_prologue])
        body_end = self._lower_body(stmt.body, cur)
        self.exc_stack.pop()
        self.finally_stack.pop()
        norm_end = self._lower_body(fin_body, body_end)
        self.cfg.add_edge(norm_end, after)
        exc_end = self._lower_body(fin_body, fin_prologue)
        for target in self._exc_targets():
            self.cfg.add_edge(exc_end, target)
        return after


def build_cfg(func: FuncDef) -> CFG:
    """Lower one function definition to its control-flow graph."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    end = builder._lower_body(func.body, cfg.entry)
    cfg.add_edge(end, cfg.exit)  # implicit `return None`
    # prune unreachable blocks (dead blocks after return/raise, empty
    # joins) so the solver never visits them
    reachable = set()
    stack = [cfg.entry]
    while stack:
        block = stack.pop()
        if block.bid in reachable:
            continue
        reachable.add(block.bid)
        stack.extend(block.succs)
    cfg.blocks = [b for b in cfg.blocks if b.bid in reachable]
    for block in cfg.blocks:
        block.succs = [s for s in block.succs if s.bid in reachable]
        block.preds = [p for p in block.preds if p.bid in reachable]
    cfg.exc_edges = {(src, dst) for src, dst in cfg.exc_edges
                     if src in reachable and dst in reachable}
    return cfg


def iter_functions(tree: ast.AST) -> Iterator[FuncDef]:
    """Every function definition in the module, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
