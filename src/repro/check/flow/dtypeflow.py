"""R3xx — abstract interpretation of numpy dtype and value-range flow.

The runtime K111/K112 artifact checks prove *one compiled artifact's*
table fits its narrowed dtype; these rules prove the same property of
the *code*, for every artifact it could ever produce.  Each function is
interpreted over the lattice of abstract values

    ``AV = (dtype, lo, hi, known)``

where ``dtype`` is a numpy dtype name (or ``"pyint"``/``"pyfloat"`` for
weak Python scalars, or ``None`` for unknown), ``[lo, hi]`` is an
interval bound on every element, and ``known`` records whether the
interval was *derived* from the program (``np.arange(n) - 1``) rather
than assumed from dtype bounds.  Promotion follows NEP 50: a weak
Python scalar adopts the array operand's dtype; concrete dtypes promote
via ``np.result_type``.  Loops converge by interval widening (see
:class:`~repro.check.flow.dataflow.Analysis`).

R301  arithmetic whose *result* dtype is a narrow integer (``uint8``,
      ``uint16``, ``int8``, ``int16``) and whose interval provably
      exceeds that dtype's bounds — the add silently wraps.  Routing
      the result into a wide ``out=`` array (the dense kernel's
      ``np.add(row[:, None], frontier, out=idx)`` with int64 ``idx``)
      is the sanctioned fix and verifies clean.
R302  ``astype``/constructor narrowing where the source interval lies
      provably outside the target dtype's range on every path.
R303  implicit int→float upcast inside a hot path (``HOT_PATHS``): a
      silent float temporary on the per-segment loop is a perf bug.
R304  a gather (``np.take`` / fancy index) whose index interval is
      provably negative, or provably ≥ the known table size; passing
      ``mode=`` acknowledges the bound and suppresses the rule.
"""

from __future__ import annotations

import ast
import math
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.check.diagnostics import Diagnostic, register_code
from repro.check.flow.cfg import (
    FOR_ITER,
    TEST,
    WITH_ENTER,
    WITH_EXIT,
    Block,
    Event,
)
from repro.check.flow.dataflow import Analysis, solve
from repro.check.flow.resources import _cfgs

__all__ = ["DtypeFlowRule", "AV"]

R301 = register_code("R301", "narrow integer arithmetic provably overflows")
R302 = register_code("R302", "narrowing cast provably out of dtype range")
R303 = register_code("R303", "implicit int->float upcast on a hot path")
R304 = register_code("R304", "gather index provably out of bounds")

INF = math.inf

_INT_RANGES: Dict[str, Tuple[float, float]] = {
    "bool": (0, 1),
    "uint8": (0, 255),
    "uint16": (0, 65535),
    "uint32": (0, 2**32 - 1),
    "uint64": (0, 2**64 - 1),
    "int8": (-128, 127),
    "int16": (-32768, 32767),
    "int32": (-(2**31), 2**31 - 1),
    "int64": (-(2**63), 2**63 - 1),
}
_FLOATS = frozenset({"float16", "float32", "float64", "pyfloat"})
_NARROW = frozenset({"uint8", "uint16", "int8", "int16"})
_INTISH = frozenset(_INT_RANGES) | {"pyint"}

#: mirrors ``repro.check.lint.HOT_PATHS`` without importing it at module
#: load (lint lazily imports this package); kept in sync by a test
HOT_PATHS = (
    "repro/kernels/",
    "repro/core/profiling.py",
    "repro/software.py",
    "repro/compilecache/artifact.py",
)


class AV:
    """Abstract value: dtype + interval.  Immutable."""

    __slots__ = ("dtype", "lo", "hi", "known")

    def __init__(self, dtype: Optional[str], lo: float, hi: float,
                 known: bool) -> None:
        self.dtype = dtype
        self.lo = lo
        self.hi = hi
        self.known = known

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AV) and (
            self.dtype, self.lo, self.hi, self.known,
        ) == (other.dtype, other.lo, other.hi, other.known)

    def __hash__(self) -> int:
        return hash((self.dtype, self.lo, self.hi, self.known))

    def __repr__(self) -> str:
        return f"AV({self.dtype}, [{self.lo}, {self.hi}], known={self.known})"


UNKNOWN = AV(None, -INF, INF, False)
Fact = Dict[str, AV]


def _dtype_range(dtype: Optional[str]) -> Tuple[float, float]:
    if dtype is None:
        return (-INF, INF)
    return _INT_RANGES.get(dtype, (-INF, INF))


def _default_av(dtype: Optional[str]) -> AV:
    lo, hi = _dtype_range(dtype)
    return AV(dtype, lo, hi, False)


def _promote(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """NEP 50 promotion of two abstract dtypes."""
    if a is None or b is None:
        return None
    weak_a = a in ("pyint", "pyfloat")
    weak_b = b in ("pyint", "pyfloat")
    if weak_a and weak_b:
        return "pyfloat" if "pyfloat" in (a, b) else "pyint"
    if weak_a:
        return "pyfloat" if a == "pyfloat" and b in _INTISH else b
    if weak_b:
        return "pyfloat" if b == "pyfloat" and a in _INTISH else a
    try:
        return np.result_type(a, b).name
    except TypeError:
        return None


def _join_av(a: AV, b: AV) -> AV:
    dtype = a.dtype if a.dtype == b.dtype else _promote(a.dtype, b.dtype)
    return AV(dtype, min(a.lo, b.lo), max(a.hi, b.hi), a.known and b.known)


def _clamp(av: AV) -> AV:
    """Intersect an interval with its dtype's representable range."""
    lo, hi = _dtype_range(av.dtype)
    return AV(av.dtype, max(av.lo, lo), min(av.hi, hi), av.known)


def _dtype_from_expr(expr: ast.expr) -> Optional[str]:
    """``np.uint8`` / ``"uint8"`` / ``np.dtype(np.uint8)`` -> ``"uint8"``."""
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        name = expr.value
    elif isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
            and expr.func.attr == "dtype" and expr.args:
        return _dtype_from_expr(expr.args[0])
    else:
        return None
    try:
        return np.dtype(name).name
    except TypeError:
        return None


def _kw(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class _Finding:
    __slots__ = ("code", "line", "message", "severity")

    def __init__(self, code: str, line: int, message: str,
                 severity: str) -> None:
        self.code = code
        self.line = line
        self.message = message
        self.severity = severity

    def key(self) -> Tuple[str, int]:
        return (self.code, self.line)


class _DtypeAnalysis(Analysis[Fact]):
    direction = "forward"
    widen_after = 3

    def __init__(self, hot: bool) -> None:
        self.hot = hot
        self.findings: Dict[Tuple[str, int], _Finding] = {}

    # -- lattice -------------------------------------------------------
    def initial(self) -> Fact:
        return {}

    def bottom(self) -> Fact:
        return {}

    def join(self, a: Fact, b: Fact) -> Fact:
        out = dict(a)
        for name, av in b.items():
            out[name] = _join_av(out[name], av) if name in out else av
        return out

    def widen(self, old: Fact, new: Fact) -> Fact:
        out: Fact = {}
        for name, av in new.items():
            prev = old.get(name)
            if prev is None:
                out[name] = av
                continue
            dlo, dhi = _dtype_range(av.dtype)
            lo = av.lo if av.lo >= prev.lo else dlo
            hi = av.hi if av.hi <= prev.hi else dhi
            out[name] = AV(av.dtype if av.dtype == prev.dtype else None,
                           lo, hi, av.known and prev.known)
        return out

    # -- reporting -----------------------------------------------------
    def _report(self, code: str, node: ast.AST, message: str,
                severity: str = "error") -> None:
        finding = _Finding(code, getattr(node, "lineno", 0), message,
                           severity)
        self.findings.setdefault(finding.key(), finding)

    # -- checks --------------------------------------------------------
    def _check_overflow(self, result: AV, node: ast.AST,
                        what: str) -> AV:
        if result.dtype in _NARROW:
            lo, hi = _dtype_range(result.dtype)
            if result.hi > hi or result.lo < lo:
                self._report(
                    R301, node,
                    f"{what} produces values in [{_fmt(result.lo)}, "
                    f"{_fmt(result.hi)}] but its result dtype "
                    f"{result.dtype} holds [{_fmt(lo)}, {_fmt(hi)}]: the "
                    "result wraps silently; route it through a wide "
                    "out= array or upcast an operand first")
                return _default_av(result.dtype)
        return result

    def _check_cast(self, src: AV, dtype: str, node: ast.AST) -> AV:
        lo, hi = _dtype_range(dtype)
        if src.lo > hi or src.hi < lo:
            self._report(
                R302, node,
                f"cast to {dtype} of values provably in "
                f"[{_fmt(src.lo)}, {_fmt(src.hi)}], entirely outside "
                f"{dtype}'s range [{_fmt(lo)}, {_fmt(hi)}]")
            return _default_av(dtype)
        return _clamp(AV(dtype, src.lo, src.hi, src.known))

    def _check_upcast(self, left: AV, right: AV, result_dtype: Optional[str],
                      node: ast.AST) -> None:
        if not self.hot or result_dtype not in _FLOATS:
            return
        if (left.dtype in _INT_RANGES) != (right.dtype in _INT_RANGES):
            if left.dtype in _INT_RANGES or right.dtype in _INT_RANGES:
                self._report(
                    R303, node,
                    "integer operand silently upcast to "
                    f"{result_dtype} on a hot path: the temporary "
                    "doubles memory traffic; cast explicitly or keep "
                    "the arithmetic integral", severity="warning")

    def _check_gather(self, call: ast.Call, fact: Fact) -> None:
        if _kw(call, "mode") is not None:
            return  # mode="clip"/"wrap" acknowledges the bound
        if len(call.args) < 2:
            return
        idx = self._eval(call.args[1], fact)
        if idx.known and idx.lo < 0:
            self._report(
                R304, call,
                f"gather index provably reaches {_fmt(idx.lo)} < 0 "
                "without a mode= policy: negative indices alias the "
                "table's tail states")

    # -- expression evaluation -----------------------------------------
    def _eval(self, expr: ast.expr, fact: Fact) -> AV:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool):
                value = int(expr.value)
                return AV("pyint", value, value, True)
            if isinstance(expr.value, int):
                return AV("pyint", expr.value, expr.value, True)
            if isinstance(expr.value, float):
                return AV("pyfloat", expr.value, expr.value, True)
            return UNKNOWN
        if isinstance(expr, ast.Name):
            return fact.get(expr.id, UNKNOWN)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, fact)
        if isinstance(expr, ast.UnaryOp):
            inner = self._eval(expr.operand, fact)
            if isinstance(expr.op, ast.USub):
                return self._check_overflow(
                    AV(inner.dtype, -inner.hi, -inner.lo, inner.known),
                    expr, "negation")
            return inner if isinstance(expr.op, ast.UAdd) else UNKNOWN
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, fact)
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value, fact)
            if base.dtype not in (None, "pyint", "pyfloat"):
                self._subscript_gather(expr, base, fact)
                return base  # element of the array: same dtype/interval
            return UNKNOWN
        if isinstance(expr, ast.IfExp):
            return _join_av(self._eval(expr.body, fact),
                            self._eval(expr.orelse, fact))
        if isinstance(expr, ast.Attribute):
            if expr.attr in ("size", "nbytes", "itemsize", "ndim"):
                return AV("pyint", 0, INF, True)
            return UNKNOWN
        return UNKNOWN

    def _subscript_gather(self, expr: ast.Subscript, base: AV,
                          fact: Fact) -> None:
        idx = expr.slice
        if isinstance(idx, (ast.Slice, ast.Tuple)):
            return
        av = self._eval(idx, fact)
        # fancy/array indexing with a provably-negative derived index
        if av.known and av.lo < 0 and av.dtype in _INTISH \
                and av.dtype != "pyint":
            self._report(
                R304, expr,
                f"index array provably reaches {_fmt(av.lo)} < 0: "
                "negative fancy indices alias the table's tail states")

    def _eval_binop(self, expr: ast.BinOp, fact: Fact) -> AV:
        left = self._eval(expr.left, fact)
        right = self._eval(expr.right, fact)
        dtype = _promote(left.dtype, right.dtype)
        lo, hi = _binop_interval(expr.op, left, right)
        known = left.known and right.known
        self._check_upcast(left, right, dtype, expr)
        result = AV(dtype, lo, hi, known)
        if isinstance(expr.op, (ast.Add, ast.Sub, ast.Mult, ast.LShift,
                                ast.Pow)):
            result = self._check_overflow(result, expr, "arithmetic")
        return _clamp(result) if dtype not in _NARROW else result

    def _eval_call(self, call: ast.Call, fact: Fact) -> AV:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if name == "astype" and isinstance(func, ast.Attribute) \
                and call.args:
            src = self._eval(func.value, fact)
            dtype = _dtype_from_expr(call.args[0])
            if dtype is not None:
                return self._check_cast(src, dtype, call)
            return UNKNOWN
        if name in ("take",):
            self._check_gather(call, fact)
            base = self._eval(call.args[0], fact) if call.args else UNKNOWN
            out = _kw(call, "out")
            if out is not None:
                target = self._eval(out, fact)
                if target.dtype is not None:
                    return AV(target.dtype, base.lo, base.hi, base.known)
            return base
        if name in ("add", "subtract", "multiply"):
            return self._eval_ufunc(call, fact, name)
        if name in ("zeros", "ones", "empty", "full", "arange",
                    "frombuffer", "asarray", "array", "zeros_like",
                    "empty_like", "full_like", "fromiter"):
            return self._eval_constructor(call, fact, name)
        if name in _INT_RANGES or name in ("float16", "float32", "float64"):
            # np.uint8(x) scalar construction narrows like astype
            if call.args:
                return self._check_cast(self._eval(call.args[0], fact),
                                        name, call)
            return _default_av(name)
        if name == "len":
            return AV("pyint", 0, INF, True)
        if name in ("min", "minimum"):
            avs = [self._eval(a, fact) for a in call.args] or [UNKNOWN]
            joined = avs[0]
            for av in avs[1:]:
                joined = _join_av(joined, av)
            return AV(joined.dtype, joined.lo,
                      min(av.hi for av in avs), joined.known)
        if name in ("max", "maximum"):
            avs = [self._eval(a, fact) for a in call.args] or [UNKNOWN]
            joined = avs[0]
            for av in avs[1:]:
                joined = _join_av(joined, av)
            return AV(joined.dtype, max(av.lo for av in avs),
                      joined.hi, joined.known)
        return UNKNOWN

    def _eval_ufunc(self, call: ast.Call, fact: Fact, name: str) -> AV:
        if len(call.args) < 2:
            return UNKNOWN
        left = self._eval(call.args[0], fact)
        right = self._eval(call.args[1], fact)
        op: ast.operator
        if name == "add":
            op = ast.Add()
        elif name == "subtract":
            op = ast.Sub()
        else:
            op = ast.Mult()
        lo, hi = _binop_interval(op, left, right)
        known = left.known and right.known
        out = _kw(call, "out")
        if out is not None:
            target = self._eval(out, fact)
            dtype = target.dtype
        else:
            dtype = _promote(left.dtype, right.dtype)
        self._check_upcast(left, right, dtype, call)
        result = self._check_overflow(AV(dtype, lo, hi, known), call,
                                      f"np.{name}")
        return result if result.dtype in _NARROW else _clamp(result)

    def _eval_constructor(self, call: ast.Call, fact: Fact,
                          name: str) -> AV:
        dt_expr = _kw(call, "dtype")
        dtype = _dtype_from_expr(dt_expr) if dt_expr is not None else None
        if name in ("zeros", "zeros_like"):
            return AV(dtype or "float64", 0, 0, True)
        if name in ("ones",):
            return AV(dtype or "float64", 1, 1, True)
        if name in ("full", "full_like") and len(call.args) >= 2:
            fill = self._eval(call.args[1], fact)
            target = dtype or fill.dtype
            if dtype is not None:
                return self._check_cast(fill, dtype, call)
            return AV(target, fill.lo, fill.hi, fill.known)
        if name == "arange":
            stop = self._eval(call.args[-1] if len(call.args) == 1
                              else call.args[1], fact) \
                if call.args else UNKNOWN
            start = self._eval(call.args[0], fact) \
                if len(call.args) >= 2 else AV("pyint", 0, 0, True)
            hi = stop.hi - 1 if stop.hi != INF else INF
            return AV(dtype or "int64", min(start.lo, hi), hi,
                      start.known and stop.known)
        if name in ("frombuffer", "asarray", "array", "fromiter",
                    "empty", "empty_like"):
            if dtype is not None:
                return _default_av(dtype)
            if call.args:
                src = self._eval(call.args[0], fact)
                if src.dtype not in (None, "pyint", "pyfloat"):
                    return src
            return UNKNOWN
        return UNKNOWN

    # -- transfer ------------------------------------------------------
    def transfer(self, block: Block, fact: Fact) -> Fact:
        fact = dict(fact)
        for event in block.events:
            self._transfer_event(fact, event)
        return fact

    def _transfer_event(self, fact: Fact, event: Event) -> None:
        node = event.node
        if event.kind == FOR_ITER:
            assert isinstance(node, (ast.For, ast.AsyncFor))
            self._bind_for(fact, node)
            return
        if event.kind in (TEST, WITH_ENTER, WITH_EXIT):
            return
        if isinstance(node, ast.Assign):
            value = self._eval(node.value, fact)
            for target in node.targets:
                self._bind(fact, target, value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._bind(fact, node.target, self._eval(node.value, fact))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                current = fact.get(node.target.id, UNKNOWN)
                rhs = self._eval(node.value, fact)
                lo, hi = _binop_interval(node.op, current, rhs)
                known = current.known and rhs.known
                # in-place: the result is forced back into the target's
                # dtype, so narrow targets wrap right here
                result = self._check_overflow(
                    AV(current.dtype, lo, hi, known), node,
                    "in-place arithmetic")
                fact[node.target.id] = _clamp(result) \
                    if result.dtype not in _NARROW else result
            else:
                self._eval(node.value, fact)
        elif isinstance(node, ast.Expr):
            self._eval(node.value, fact)
        elif isinstance(node, ast.Return) and node.value is not None:
            self._eval(node.value, fact)
        elif isinstance(node, ast.stmt):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, fact)

    def _bind(self, fact: Fact, target: ast.expr, value: AV) -> None:
        if isinstance(target, ast.Name):
            fact[target.id] = value
        elif isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name):
            # a[i] = v : the array now also holds v's values
            base = fact.get(target.value.id)
            if base is not None and base.dtype is not None:
                cast = AV(base.dtype, value.lo, value.hi,
                          base.known and value.known)
                fact[target.value.id] = _join_av(base, _clamp(cast))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(fact, elt, UNKNOWN)

    def _bind_for(self, fact: Fact, node: "ast.For | ast.AsyncFor") -> None:
        element = UNKNOWN
        iter_expr = node.iter
        if isinstance(iter_expr, ast.Call):
            name = iter_expr.func.id \
                if isinstance(iter_expr.func, ast.Name) else ""
            if name == "range" and iter_expr.args:
                stop = self._eval(iter_expr.args[-1 if len(iter_expr.args)
                                                 == 1 else 1], fact)
                start = self._eval(iter_expr.args[0], fact) \
                    if len(iter_expr.args) >= 2 else AV("pyint", 0, 0, True)
                hi = stop.hi - 1 if stop.hi != INF else INF
                element = AV("pyint", min(start.lo, hi), hi,
                             start.known and stop.known)
            else:
                element = self._eval(iter_expr, fact)
        else:
            element = self._eval(iter_expr, fact)
        self._bind(fact, node.target, element)


def _fmt(value: float) -> str:
    if value == INF:
        return "inf"
    if value == -INF:
        return "-inf"
    if float(value).is_integer():
        return str(int(value))
    return str(value)


def _binop_interval(op: ast.operator, a: AV, b: AV) -> Tuple[float, float]:
    if isinstance(op, ast.Add):
        return (a.lo + b.lo, a.hi + b.hi)
    if isinstance(op, ast.Sub):
        return (a.lo - b.hi, a.hi - b.lo)
    if isinstance(op, ast.Mult):
        candidates = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        finite = [c for c in candidates if not math.isnan(c)]
        if not finite:  # 0 * inf — could be anything
            return (-INF, INF)
        return (min(finite), max(finite))
    if isinstance(op, (ast.FloorDiv, ast.Div)):
        return (-INF, INF) if (b.lo <= 0 <= b.hi) else (
            min(a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi),
            max(a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi))
    if isinstance(op, ast.Mod):
        if b.lo > 0:
            return (0, b.hi - 1)
        return (-INF, INF)
    if isinstance(op, ast.LShift):
        if a.lo >= 0 and 0 <= b.lo and b.hi < 64:
            return (a.lo * 2 ** b.lo, a.hi * 2 ** b.hi)
        return (-INF, INF)
    if isinstance(op, ast.RShift):
        if a.lo >= 0 and b.lo >= 0:
            return (0, a.hi)
        return (-INF, INF)
    if isinstance(op, (ast.BitAnd,)):
        if a.lo >= 0 or b.lo >= 0:
            return (0, min(a.hi if a.lo >= 0 else INF,
                           b.hi if b.lo >= 0 else INF))
        return (-INF, INF)
    if isinstance(op, (ast.BitOr, ast.BitXor)):
        return (-INF, INF)
    if isinstance(op, ast.Pow):
        if a.lo >= 0 and b.lo >= 0 and b.hi != INF:
            return (0 if a.lo == 0 else a.lo ** b.lo, a.hi ** b.hi
                    if a.hi != INF else INF)
        return (-INF, INF)
    return (-INF, INF)


class DtypeFlowRule:
    """Runs the R3xx abstract interpreter over every function."""

    code = R301  # representative; findings carry their own codes
    name = "dtype-flow"

    def check(self, ctx: "object") -> Iterator[Diagnostic]:
        path = str(getattr(ctx, "path", ""))
        hot = any(marker in path for marker in HOT_PATHS)
        for func, cfg in _cfgs(ctx):
            analysis = _DtypeAnalysis(hot=hot)
            in_facts = solve(cfg, analysis)
            # as in resources.py: keep only findings on converged facts
            analysis.findings = {}
            for block in cfg.blocks:
                if block.bid in in_facts:
                    analysis.transfer(block, in_facts[block.bid])
            for finding in analysis.findings.values():
                yield Diagnostic(
                    code=finding.code, severity=finding.severity,
                    message=finding.message,
                    location=getattr(ctx, "path", ""),
                    line=finding.line, rule=self.name,
                    function=func.name)  # type: ignore[attr-defined]
