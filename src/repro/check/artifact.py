"""Pillar 1 — static soundness verification of CSE artifacts.

The :class:`~repro.automata.dfa.Dfa` constructor validates its inputs,
but artifacts that travel through pickle (``repro.compilecache``) are
restored *without* running ``__init__`` — a corrupted or hand-edited
``.cdfa`` file can therefore hold a structurally impossible machine whose
checksums all agree (mutate the table, recompute the fingerprint, re-key
the file).  These verifiers re-derive every invariant from first
principles instead of trusting stored metadata:

- :func:`verify_dfa` — table shape/dtype/bounds, start/accepting sanity,
  accepting-mask agreement, and (``deep=True``) unreachable/dead state
  analysis via :mod:`repro.automata.analysis`;
- :func:`verify_partition` — convergence sets are disjoint, exhaustive,
  non-empty, in-range, and the cached block index agrees;
- :func:`verify_compiled` — every derived table of a
  :class:`~repro.compilecache.artifact.CompiledDfa` (scalar rows, flat
  int64 kernel matrix, bitset predecessor matrices, dtype-narrowed dense
  table) is transition-equivalent to the source table, the cache
  key/fingerprint re-derive to the stored values, the census is
  well-formed and the merge coverage is reproducible;
- :func:`verify_artifact_file` — the on-disk envelope (format version,
  key, header fingerprint) plus everything above.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.check.diagnostics import Diagnostic, register_code

__all__ = [
    "verify_dfa",
    "verify_partition",
    "verify_compiled",
    "verify_native",
    "verify_prefilter",
    "verify_artifact_file",
    "verify_shard",
]

# ----------------------------------------------------------------------
# diagnostic codes
# ----------------------------------------------------------------------
D101 = register_code("D101", "transition table is not a 2-D integer ndarray")
D102 = register_code("D102", "transition table dtype is not int32")
D103 = register_code("D103", "transition target out of state range")
D104 = register_code("D104", "start state out of range")
D105 = register_code("D105", "accepting state out of range")
D106 = register_code("D106", "accepting mask disagrees with accepting set")
D201 = register_code("D201", "states unreachable from the start state")
D202 = register_code("D202", "dead states (no path to an accepting state)")
D203 = register_code("D203", "DFA has no accepting states")
D204 = register_code("D204", "no accepting state is reachable from start")

P101 = register_code("P101", "convergence sets overlap")
P102 = register_code("P102", "convergence sets do not cover the state space")
P103 = register_code("P103", "empty convergence set")
P104 = register_code("P104", "convergence-set member out of state range")
P105 = register_code("P105", "partition block index disagrees with blocks")

K101 = register_code("K101", "scalar table rows disagree with the transition table")
K102 = register_code("K102", "flat kernel matrix disagrees with the transition table")
K103 = register_code("K103", "bitset tables disagree with the transition table")
K104 = register_code("K104", "stored cache key does not re-derive")
K105 = register_code("K105", "stored fingerprint does not re-derive")
K106 = register_code("K106", "backend fields are invalid or do not re-resolve")
K107 = register_code("K107", "merge coverage does not re-derive from the census")
K108 = register_code("K108", "census entry is not a valid state partition")
K109 = register_code("K109", "artifact file format version mismatch")
K110 = register_code("K110", "artifact file envelope is malformed")
K111 = register_code("K111", "dense kernel table disagrees with the transition table")
K112 = register_code("K112", "dense column offsets do not re-derive")
K114 = register_code("K114", "native table view disagrees with the dense tables")
K115 = register_code("K115", "native single-step replay disagrees with the transition table")
K120 = register_code("K120", "shard key does not re-derive from member fingerprints")
K121 = register_code("K121", "shard demux map is malformed or misses members")
K122 = register_code("K122", "shard demux disagrees with member transitions")
K123 = register_code("K123", "shard accepting structure disagrees with members")
K130 = register_code("K130", "prefilter certificate is malformed or does not re-derive")
K131 = register_code("K131", "prefilter home invariance broken (non-anchor byte moves home)")
K132 = register_code("K132", "prefilter skip width unsound (non-anchor run does not absorb, or accepting state anchor-free reachable)")
K133 = register_code("K133", "artifact envelope prefilter summary disagrees with re-derivation")


def _err(code: str, message: str, location: str) -> Diagnostic:
    return Diagnostic(code=code, severity="error", message=message,
                      location=location)


def _warn(code: str, message: str, location: str) -> Diagnostic:
    return Diagnostic(code=code, severity="warning", message=message,
                      location=location)


def _info(code: str, message: str, location: str) -> Diagnostic:
    return Diagnostic(code=code, severity="info", message=message,
                      location=location)


# ----------------------------------------------------------------------
# DFA structure
# ----------------------------------------------------------------------
def verify_dfa(dfa: "object", deep: bool = True,
               location: str = "dfa") -> List[Diagnostic]:
    """Structural soundness of a (possibly unpickled) :class:`Dfa`.

    Errors mean the object violates an invariant the constructor would
    have rejected — only possible for instances restored around
    ``__init__`` (pickle) or mutated in place.  ``deep=True`` adds the
    reachability/dead-state analyses (warnings/info, never errors: an
    unreachable state is wasteful, not wrong).
    """
    out: List[Diagnostic] = []
    table = getattr(dfa, "transitions", None)
    if not isinstance(table, np.ndarray) or table.ndim != 2 \
            or not np.issubdtype(table.dtype, np.integer):
        out.append(_err(D101, "transitions must be a 2-D integer ndarray",
                        f"{location}.transitions"))
        return out
    if table.dtype != np.int32:
        out.append(_err(
            D102,
            f"transition table dtype is {table.dtype}, expected int32 "
            "(every kernel and fingerprint assumes it)",
            f"{location}.transitions"))
    n_sym, n_state = table.shape
    if n_sym == 0 or n_state == 0:
        out.append(_err(D101, "transition table has a zero-length axis",
                        f"{location}.transitions"))
        return out
    if table.size and (int(table.min()) < 0 or int(table.max()) >= n_state):
        bad = np.argwhere((table < 0) | (table >= n_state))
        c, q = (int(v) for v in bad[0])
        out.append(_err(
            D103,
            f"{bad.shape[0]} transition target(s) outside [0, {n_state}); "
            f"first at symbol {c}, state {q} -> {int(table[c, q])}",
            f"{location}.transitions"))
        # later analyses index with this table; stop before they explode
        return out
    start = getattr(dfa, "start", None)
    if not isinstance(start, int) or not (0 <= start < n_state):
        out.append(_err(D104, f"start state {start!r} outside [0, {n_state})",
                        f"{location}.start"))
    accepting = getattr(dfa, "accepting", frozenset())
    bad_acc = [a for a in accepting if not (0 <= int(a) < n_state)]
    if bad_acc:
        out.append(_err(
            D105,
            f"accepting state(s) {sorted(bad_acc)[:5]} outside [0, {n_state})",
            f"{location}.accepting"))
    mask = getattr(dfa, "accepting_mask", None)
    if not bad_acc:
        expect = np.zeros(n_state, dtype=bool)
        if accepting:
            expect[sorted(int(a) for a in accepting)] = True
        if not isinstance(mask, np.ndarray) or mask.shape != (n_state,) \
                or not bool(np.array_equal(mask.astype(bool), expect)):
            out.append(_err(
                D106,
                "accepting_mask does not match the accepting set "
                "(report events would fire on the wrong states)",
                f"{location}.accepting_mask"))
    if not accepting:
        out.append(_warn(D203, "no accepting states: the machine can never "
                         "report a match", f"{location}.accepting"))
    if deep and not any(d.severity == "error" for d in out):
        from repro.automata.analysis import dead_states

        reachable = dfa.reachable_states()  # type: ignore[attr-defined]
        n_unreachable = n_state - int(reachable.size)
        if n_unreachable:
            out.append(_warn(
                D201,
                f"{n_unreachable} of {n_state} states unreachable from the "
                "start state (minimization would remove them)",
                f"{location}.transitions"))
        dead = dead_states(dfa)  # type: ignore[arg-type]
        n_dead = int(dead.sum())
        if n_dead:
            out.append(_info(
                D202,
                f"{n_dead} dead state(s): enumeration flows entering them "
                "can be deactivated",
                f"{location}.transitions"))
        if accepting and not bad_acc:
            reach_mask = np.zeros(n_state, dtype=bool)
            reach_mask[reachable] = True
            if not any(reach_mask[int(a)] for a in accepting):
                out.append(_warn(
                    D204,
                    "every accepting state is unreachable from the start "
                    "state: scans can never report",
                    f"{location}.accepting"))
    return out


# ----------------------------------------------------------------------
# partition structure
# ----------------------------------------------------------------------
def verify_partition(partition: "object", num_states: Optional[int] = None,
                     location: str = "partition") -> List[Diagnostic]:
    """Convergence sets partition the state space: disjoint, exhaustive.

    Accepts a :class:`~repro.core.partition.StatePartition` (its cached
    ``block_of`` index is cross-checked too) or any iterable of state
    collections together with an explicit ``num_states``.
    """
    out: List[Diagnostic] = []
    if num_states is None:
        num_states = int(getattr(partition, "num_states"))
    blocks_attr = getattr(partition, "blocks", partition)
    blocks: List[Set[int]] = [set(int(q) for q in b) for b in blocks_attr]
    for i, block in enumerate(blocks):
        if not block:
            out.append(_err(P103, f"convergence set {i} is empty",
                            f"{location}.blocks[{i}]"))
    seen: Set[int] = set()
    overlap_reported = False
    for i, block in enumerate(blocks):
        clash = block & seen
        if clash and not overlap_reported:
            out.append(_err(
                P101,
                f"state(s) {sorted(clash)[:5]} appear in more than one "
                "convergence set (speculation outcomes would be ambiguous)",
                f"{location}.blocks[{i}]"))
            overlap_reported = True
        seen |= block
    universe = set(range(num_states))
    bad_members = seen - universe
    if bad_members:
        out.append(_err(
            P104,
            f"member(s) {sorted(bad_members)[:5]} outside [0, {num_states})",
            f"{location}.blocks"))
    missing = universe - seen
    if missing:
        out.append(_err(
            P102,
            f"{len(missing)} state(s) covered by no convergence set "
            f"(first: {sorted(missing)[:5]}); their enumeration paths "
            "would be silently dropped",
            f"{location}.blocks"))
    block_of = getattr(partition, "_block_of", None)
    if block_of is not None and not out:
        expect = {q: i for i, b in enumerate(blocks) for q in b}
        if dict(block_of) != expect:
            out.append(_err(
                P105,
                "cached block-of index disagrees with the blocks "
                "(outcome composition would mix convergence sets)",
                f"{location}._block_of"))
    return out


# ----------------------------------------------------------------------
# compiled artifact cross-validation
# ----------------------------------------------------------------------
def verify_compiled(compiled: "object", deep: bool = True,
                    location: str = "artifact") -> List[Diagnostic]:
    """Cross-validate every derived table of a :class:`CompiledDfa`.

    Every kernel encoding must be transition-equivalent — a scan
    must return the same matches whichever backend executes it — and the
    content-addressing fields must re-derive from the actual content.
    ``deep=True`` recomputes the bitset predecessor matrices when the
    artifact has them built (the one check whose cost grows with
    ``alphabet * states^2 / 64``).
    """
    from repro.compilecache.artifact import cache_key
    from repro.kernels import BACKENDS

    out: List[Diagnostic] = []
    dfa = compiled.dfa  # type: ignore[attr-defined]
    out.extend(verify_dfa(dfa, deep=deep, location=f"{location}.dfa"))
    if any(d.severity == "error" for d in out):
        return out  # derived-table checks would chase corrupt indices
    table = dfa.transitions

    # scalar rows =~ table
    rows = compiled.rows  # type: ignore[attr-defined]
    if len(rows) != table.shape[0] or any(
        list(row) != table_row.tolist()
        for row, table_row in zip(rows, table)
    ):
        out.append(_err(
            K101,
            "scalar table rows are not the transition table row-for-row "
            "(the interpreted walk would follow different transitions)",
            f"{location}.rows"))

    # flat int64 matrix =~ raveled table
    flat = compiled.flat_table  # type: ignore[attr-defined]
    expect_flat = table.astype(np.int64).ravel()
    if not isinstance(flat, np.ndarray) or flat.dtype != np.int64 \
            or flat.shape != expect_flat.shape \
            or not bool(np.array_equal(flat, expect_flat)):
        out.append(_err(
            K102,
            "flat int64 kernel matrix does not equal the raveled "
            "transition table (lockstep gathers would diverge)",
            f"{location}.flat_table"))

    # bitset tables =~ recomputed predecessor matrices
    bitset = getattr(compiled, "_bitset", None)
    if bitset is not None and deep:
        from repro.kernels import BitsetTables

        fresh = BitsetTables(dfa)
        if bitset.pred.shape != fresh.pred.shape \
                or not bool(np.array_equal(bitset.pred, fresh.pred)):
            where = "?"
            if bitset.pred.shape == fresh.pred.shape:
                bad = np.argwhere(bitset.pred != fresh.pred)
                c, t, w = (int(v) for v in bad[0])
                where = f"symbol {c}, target {t}, word {w}"
            out.append(_err(
                K103,
                "bitset predecessor matrices disagree with the transition "
                f"table (first mismatch: {where}); the bitset backend "
                "would follow different transitions",
                f"{location}.bitset"))

    # dense tables =~ dtype-narrowed raveled table + arange offsets
    dense = getattr(compiled, "_dense", None)
    if dense is not None:
        from repro.kernels import dense_state_dtype

        expect_dtype = dense_state_dtype(dfa.num_states)
        expect_dense = table.astype(expect_dtype).ravel()
        dense_table = getattr(dense, "table", None)
        if not isinstance(dense_table, np.ndarray) \
                or dense_table.dtype != expect_dtype \
                or dense_table.shape != expect_dense.shape \
                or not bool(np.array_equal(
                    dense_table.astype(np.int64), expect_flat)):
            out.append(_err(
                K111,
                f"dense kernel table is not the transition table narrowed "
                f"to {expect_dtype} (the one-gather-per-position step "
                "would follow different transitions)",
                f"{location}.dense.table"))
        offsets = getattr(dense, "offsets", None)
        expect_off = np.arange(table.shape[0], dtype=np.int64) * dfa.num_states
        if not isinstance(offsets, np.ndarray) or offsets.dtype != np.int64 \
                or offsets.shape != expect_off.shape \
                or not bool(np.array_equal(offsets, expect_off)):
            out.append(_err(
                K112,
                "dense column offsets are not "
                "arange(alphabet) * num_states (gathers would read the "
                "wrong table columns)",
                f"{location}.dense.offsets"))

    # native tier: the compiled library must read the exact table bytes
    # the Python tier built (absence of the library is not a defect —
    # the system degrades to dense — so an unavailable tier adds nothing)
    out.extend(verify_native(dfa, dense=dense, deep=deep,
                             location=f"{location}.native"))

    # prefilter certificate: home invariance, skip-width soundness,
    # anchor soundness, and full re-derivation
    pf = getattr(compiled, "_prefilter", None)
    if pf is not None:
        out.extend(verify_prefilter(pf, dfa, location=f"{location}.prefilter"))

    # partition + census
    partition = compiled.partition  # type: ignore[attr-defined]
    out.extend(verify_partition(partition, dfa.num_states,
                                location=f"{location}.partition"))
    census = compiled.census  # type: ignore[attr-defined]
    census_ok = True
    for i, entry in enumerate(census):
        entry_diags = verify_partition(entry, dfa.num_states,
                                       location=f"{location}.census[{i}]")
        bad = [d for d in entry_diags if d.severity == "error"]
        if bad:
            census_ok = False
            out.append(_err(
                K108,
                f"census entry {i} is not a valid partition "
                f"({bad[0].code}: {bad[0].message})",
                f"{location}.census[{i}]"))
    if census_ok and census:
        from repro.core.profiling import covered_fraction

        covered = covered_fraction(partition, census)
        stored = float(compiled.merge.covered)  # type: ignore[attr-defined]
        if abs(covered - stored) > 1e-9:
            out.append(_err(
                K107,
                f"stored merge coverage {stored:.6f} does not re-derive "
                f"from the census (actual {covered:.6f})",
                f"{location}.merge.covered"))

    # content addressing
    dfa._fingerprint = None  # drop the memo: recompute from actual bytes
    fingerprint = dfa.fingerprint
    if fingerprint != compiled.fingerprint:  # type: ignore[attr-defined]
        out.append(_err(
            K105,
            "stored fingerprint does not match the transition table "
            "content (the artifact would be served for the wrong DFA)",
            f"{location}.fingerprint"))
    requested = compiled.requested_backend  # type: ignore[attr-defined]
    resolved = compiled.backend  # type: ignore[attr-defined]
    if resolved not in BACKENDS or (
            requested != "auto" and requested not in BACKENDS):
        out.append(_err(
            K106,
            f"backend fields requested={requested!r} resolved={resolved!r} "
            f"are not drawn from {BACKENDS}",
            f"{location}.backend"))
    elif requested != "auto" and resolved != requested and not (
            requested == "native" and resolved == "dense"):
        # native -> dense is the documented degradation when no compiled
        # library is loadable at compile time; every other divergence
        # from an explicit request is a contradiction
        out.append(_err(
            K106,
            f"resolved backend {resolved!r} contradicts the explicit "
            f"request {requested!r}",
            f"{location}.backend"))
    expect_key = cache_key(
        fingerprint,
        compiled.profiling,  # type: ignore[attr-defined]
        compiled.merge_cutoff,  # type: ignore[attr-defined]
        compiled.max_blocks,  # type: ignore[attr-defined]
        requested,
        compiled.n_segments,  # type: ignore[attr-defined]
    )
    if expect_key != compiled.key:  # type: ignore[attr-defined]
        out.append(_err(
            K104,
            "stored cache key does not re-derive from the artifact's "
            "fingerprint and compile parameters",
            f"{location}.key"))
    return out


# ----------------------------------------------------------------------
# native tier certification
# ----------------------------------------------------------------------
def verify_native(dfa: "object", dense: "object" = None, deep: bool = True,
                  location: str = "native") -> List[Diagnostic]:
    """Certify the compiled native tier against the Python-built tables.

    K114 proves the bytes: the library's widened table view
    (:func:`repro.kernels.native.native_table_view`) must be bit-identical
    to the dense tables and to the int64 transition matrix.  K115 proves
    the stepping: replaying every symbol as a one-position segment over
    the discrete partition must land each start state exactly where the
    transition table says (``deep=False`` skips the replay; very large
    tables cap it).  An unavailable native tier yields no diagnostics —
    degradation to dense is the documented contract, not a defect.
    """
    from repro.kernels import DenseTables
    from repro.kernels.native import (
        native_available,
        native_table_view,
        run_segments_native,
    )

    out: List[Diagnostic] = []
    if not native_available():
        return out
    table = getattr(dfa, "transitions", None)
    if not isinstance(table, np.ndarray):
        return out
    tables = dense if dense is not None else DenseTables(dfa)  # type: ignore[arg-type]
    expect_flat = table.astype(np.int64).ravel()
    try:
        view = native_table_view(tables)  # type: ignore[arg-type]
    except (RuntimeError, ValueError) as exc:
        out.append(_err(
            K114,
            f"native table view could not be produced ({exc}); the "
            "compiled library cannot prove it reads the dense tables",
            f"{location}.table"))
        return out
    dense_table = getattr(tables, "table", None)
    if view.shape != expect_flat.shape \
            or not bool(np.array_equal(view, expect_flat)) \
            or not isinstance(dense_table, np.ndarray) \
            or not bool(np.array_equal(
                view, dense_table.astype(np.int64).ravel())):
        out.append(_err(
            K114,
            "native table view is not bit-identical to the dense tables "
            "(the compiled gather would follow different transitions)",
            f"{location}.table"))
        return out
    if not deep or table.size > 1_000_000:
        return out
    # single-step replay: every symbol as a 1-position segment over the
    # discrete partition must reproduce the transition table column
    from repro.core.partition import StatePartition

    n_states = int(table.shape[1])
    probe = [np.asarray([c], dtype=np.int64) for c in range(table.shape[0])]
    grid, _stats = run_segments_native(
        dfa, StatePartition.discrete(n_states), probe,  # type: ignore[arg-type]
        tables=tables,  # type: ignore[arg-type]
    )
    for c, outcomes in enumerate(grid):
        for q, outcome in enumerate(outcomes):
            want = int(table[c, q])
            got = outcome.state if outcome.converged else None
            if got != want:
                out.append(_err(
                    K115,
                    f"native replay of symbol {c} from state {q} reached "
                    f"{got!r}, transition table says {want} (compiled "
                    "stepping disagrees with the Python tier)",
                    f"{location}.step[{c},{q}]"))
                return out
    return out


# ----------------------------------------------------------------------
# prefilter certificates
# ----------------------------------------------------------------------
def verify_prefilter(tables: "object", dfa: "object",
                     location: str = "prefilter") -> List[Diagnostic]:
    """Soundness of a literal-prefilter certificate against its DFA.

    The certificate licenses a scan to *skip input bytes*, so every fact
    it asserts is re-proved from the transition table:

    - structural sanity (LUT shape/dtype, home/skip-width ranges) — K130;
    - **home invariance**: no non-anchor byte moves the home state — K131;
    - **skip-width soundness**: with the *stored* anchor set, the
      non-anchor transition graph away from home is acyclic and its
      longest path does not exceed the stored width (so any
      ``skip_width``-long non-anchor run provably absorbs every state at
      home), and no accepting state is reachable from start or home
      through non-anchor bytes alone (every accepting path contains an
      anchor — a skipped window can never hide a report) — K132;
    - the whole certificate re-derives bit-for-bit from the table — K130.
    """
    from repro.kernels.prefilter import (
        _absorption_depths,
        _non_anchor_closure,
        derive_prefilter,
    )

    out: List[Diagnostic] = []
    table = dfa.transitions  # type: ignore[attr-defined]
    n = int(table.shape[1])
    k = int(table.shape[0])
    lut = getattr(tables, "anchor_lut", None)
    home = getattr(tables, "home", None)
    sw = getattr(tables, "skip_width", None)
    if not isinstance(lut, np.ndarray) or lut.dtype != np.bool_ \
            or lut.shape != (k,) \
            or not isinstance(home, (int, np.integer)) \
            or not 0 <= int(home) < n \
            or not isinstance(sw, (int, np.integer)) or int(sw) < 1:
        out.append(_err(
            K130,
            "prefilter certificate is malformed (anchor LUT must be a "
            f"bool ({k},) array, home in [0, {n}), skip width >= 1)",
            location))
        return out
    home = int(home)
    sw = int(sw)
    moved = np.flatnonzero((table[:, home] != home) & ~lut)
    if moved.size:
        out.append(_err(
            K131,
            f"non-anchor byte {int(moved[0])} moves home {home} to "
            f"{int(table[int(moved[0]), home])}; a skipped run would not "
            "hold the machine at home",
            f"{location}.anchor_lut"))
    depth, finite = _absorption_depths(table, home, lut)
    if not bool(finite.all()):
        stuck = int(np.flatnonzero(~finite)[0])
        out.append(_err(
            K132,
            f"state {stuck} sits on a non-anchor cycle away from home: "
            "a non-anchor run of any length need not absorb it",
            f"{location}.skip_width"))
    elif int(depth.max()) > sw:
        out.append(_err(
            K132,
            f"longest non-anchor path is {int(depth.max())} but the "
            f"stored skip width is {sw}: a {sw}-long run does not prove "
            "absorption",
            f"{location}.skip_width"))
    acc = dfa.accepting_mask  # type: ignore[attr-defined]
    start = int(dfa.start)  # type: ignore[attr-defined]
    reach = _non_anchor_closure(table, lut, start)
    if bool(acc[home]) or bool((acc & reach).any()):
        out.append(_err(
            K132,
            "an accepting state is reachable from start/home without any "
            "anchor byte: an accepting path need not contain an anchor "
            "and a skipped window could hide a report",
            f"{location}.anchor_lut"))
    fresh = derive_prefilter(dfa)
    if fresh is None or fresh.home != home or fresh.skip_width != sw \
            or not bool(np.array_equal(fresh.anchor_lut, lut)):
        out.append(_err(
            K130,
            "stored prefilter certificate does not re-derive from the "
            "transition table",
            location))
    return out


# ----------------------------------------------------------------------
# fleet shard artifacts
# ----------------------------------------------------------------------
def verify_shard(shard: "object",
                 members: Optional[Sequence["object"]] = None,
                 deep: bool = True,
                 location: str = "shard") -> List[Diagnostic]:
    """Soundness of a :class:`~repro.fleet.ShardMachine` artifact.

    A shard's correctness rests on one invariant: the product state
    after any input is exactly the tuple of member states the demux map
    decodes it to.  That is checked *structurally* — one matrix identity
    per member instead of sample inputs:

    - the stored :attr:`key` re-derives from the member fingerprints
      (sorted, so fold order cannot change identity) — K120;
    - the demux map covers every member with in-range states — K121;
    - with ``members`` given: fingerprints match, the demux commutes
      with the transition tables (``demux[delta(c, p), m] ==
      delta_m(c, demux[p, m])`` for all symbols/states) and decodes the
      start state to every member's start — K122;
    - ``member_accept`` rows equal the members' accepting masks under
      the demux, and the shard machine accepts exactly the union — K123.

    The embedded product DFA gets the full :func:`verify_dfa` treatment
    (``deep`` forwards to it).
    """
    from repro.fleet.shard import shard_key

    out: List[Diagnostic] = []
    dfa = getattr(shard, "dfa", None)
    out.extend(verify_dfa(dfa, deep=deep, location=f"{location}.dfa"))
    if any(d.severity == "error" for d in out):
        return out  # demux checks would chase a corrupt table
    n_states = dfa.num_states  # type: ignore[attr-defined]

    fingerprints = tuple(getattr(shard, "member_fingerprints", ()))
    indices = tuple(getattr(shard, "member_indices", ()))
    n_members = len(fingerprints)
    if n_members == 0 or len(indices) != n_members:
        out.append(_err(
            K121,
            f"{n_members} member fingerprint(s) but {len(indices)} member "
            "index(es); a shard names each member exactly once",
            f"{location}.member_indices"))
        return out

    # content addressing: the key must re-derive, order-insensitively
    expect_key = shard_key(fingerprints)
    if expect_key != getattr(shard, "key", None):
        out.append(_err(
            K120,
            "stored shard key does not re-derive from the member "
            "fingerprints (the artifact would be served for the wrong "
            "member set)",
            f"{location}.key"))

    # demux map shape / range
    demux = getattr(shard, "demux", None)
    if not isinstance(demux, np.ndarray) or demux.ndim != 2 \
            or not np.issubdtype(demux.dtype, np.integer) \
            or demux.shape[0] != n_states \
            or demux.shape[1] != n_members:
        shape = getattr(demux, "shape", None)
        out.append(_err(
            K121,
            f"demux map shape {shape!r} is not (num_states={n_states}, "
            f"n_members={n_members}); some members could never be "
            "demultiplexed",
            f"{location}.demux"))
        return out
    if demux.size and int(demux.min()) < 0:
        out.append(_err(
            K121,
            "demux map contains negative member states",
            f"{location}.demux"))
        return out

    member_accept = getattr(shard, "member_accept", None)
    accept_ok = isinstance(member_accept, np.ndarray) \
        and member_accept.shape == (n_members, n_states) \
        and member_accept.dtype == np.bool_
    if not accept_ok:
        out.append(_err(
            K123,
            f"member_accept is not a (n_members={n_members}, "
            f"num_states={n_states}) bool matrix; report demux would "
            "misattribute events",
            f"{location}.member_accept"))
    elif not bool(np.array_equal(
            member_accept.any(axis=0),
            dfa.accepting_mask.astype(bool))):  # type: ignore[attr-defined]
        out.append(_err(
            K123,
            "shard accepting mask is not the union of the member accept "
            "rows (the product would fire on the wrong states)",
            f"{location}.member_accept"))

    if members is None:
        return out

    # cross-validation against the actual member machines
    if len(members) != n_members:
        out.append(_err(
            K121,
            f"{len(members)} member machine(s) supplied for a "
            f"{n_members}-member shard",
            f"{location}.members"))
        return out
    table = dfa.transitions  # type: ignore[attr-defined]
    for m, member in enumerate(members):
        mem_diags = verify_dfa(member, deep=False,
                               location=f"{location}.members[{m}]")
        errors = [d for d in mem_diags if d.severity == "error"]
        if errors:
            out.extend(errors)
            continue
        if member.fingerprint != fingerprints[m]:  # type: ignore[attr-defined]
            out.append(_err(
                K120,
                f"member {m} fingerprint does not match the stored one",
                f"{location}.member_fingerprints[{m}]"))
            continue
        col = demux[:, m]
        mem_states = member.num_states  # type: ignore[attr-defined]
        if int(col.max()) >= mem_states:
            out.append(_err(
                K121,
                f"demux column {m} exceeds member state range "
                f"[0, {mem_states})",
                f"{location}.demux"))
            continue
        mem_table = member.transitions  # type: ignore[attr-defined]
        if mem_table.shape[0] != table.shape[0]:
            out.append(_err(
                K122,
                f"member {m} alphabet {mem_table.shape[0]} differs from "
                f"the shard's {table.shape[0]}",
                f"{location}.members[{m}]"))
            continue
        # the demux must commute with one step of both machines
        if not bool(np.array_equal(col[table], mem_table[:, col])):
            out.append(_err(
                K122,
                f"demux column {m} does not commute with the transition "
                "tables: after some symbol the decoded member state is "
                "not the state the member itself would reach",
                f"{location}.demux"))
        start = dfa.start  # type: ignore[attr-defined]
        if int(col[start]) != int(member.start):  # type: ignore[attr-defined]
            out.append(_err(
                K122,
                f"shard start decodes member {m} to state "
                f"{int(col[start])}, not the member's start "
                f"{int(member.start)}",  # type: ignore[attr-defined]
                f"{location}.demux"))
        if accept_ok and not bool(np.array_equal(
                member_accept[m],
                member.accepting_mask[col])):  # type: ignore[attr-defined]
            out.append(_err(
                K123,
                f"member_accept row {m} disagrees with the member's "
                "accepting mask under the demux (its report events would "
                "fire on the wrong offsets)",
                f"{location}.member_accept"))
    return out


#: envelope cross-check fields by the format version that introduced
#: them (see ``repro.compilecache.store.FORMAT_VERSION`` history)
_ENVELOPE_FIELDS: List[Tuple[int, str]] = [(2, "dense_dtype"), (3, "prefilter")]


def verify_artifact_file(path: Union[str, Path],
                         deep: bool = True) -> List[Diagnostic]:
    """Verify an on-disk ``.cdfa`` file: envelope + full artifact checks.

    Unlike :func:`repro.compilecache.store.load_artifact` (which treats
    any problem as a cache miss), this reports *what* is wrong, as
    diagnostics.
    """
    from repro.compilecache.artifact import CompiledDfa
    from repro.compilecache.store import FORMAT_VERSION

    path = Path(path)
    location = str(path)
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        return [_err(K110, f"unreadable artifact: {exc}", location)]
    if not isinstance(payload, dict):
        return [_err(K110, "payload is not the save_artifact envelope",
                     location)]
    out: List[Diagnostic] = []
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        # distinguish version *skew* (an older-but-known envelope, the
        # normal cross-build cache situation) from a version this build
        # has never heard of: skew names exactly which cross-check
        # fields the old format lacks so the remedy — recompile to
        # refresh the cache entry — is obvious from the finding alone
        if isinstance(version, int) and 1 <= version < FORMAT_VERSION:
            lacks = [name for v, name in _ENVELOPE_FIELDS if version < v]
            out.append(_err(
                K109,
                f"format version {version} predates this build's "
                f"{FORMAT_VERSION}; the envelope lacks "
                f"{', '.join(lacks)} so those cross-checks cannot run — "
                "recompile to refresh the cache entry",
                location))
        else:
            out.append(_err(
                K109,
                f"format version {version!r} (this build reads "
                f"{FORMAT_VERSION})", location))
    compiled = payload.get("artifact")
    if not isinstance(compiled, CompiledDfa):
        out.append(_err(K110, "envelope carries no CompiledDfa", location))
        return out
    expect_name = f"{compiled.key}"
    if payload.get("key") != compiled.key or (
            path.suffix == ".cdfa" and path.stem != expect_name):
        out.append(_err(
            K110,
            "envelope key / filename do not match the artifact key",
            location))
    if payload.get("fingerprint") != compiled.fingerprint:
        out.append(_err(
            K105,
            "envelope fingerprint does not match the artifact's",
            location))
    # envelope-field cross-checks are gated on the version that
    # introduced each field: a v1 envelope is not charged for fields its
    # format never carried, while a v2+ envelope *missing* its required
    # field is — and an unknown version gets the full battery
    v = version if isinstance(version, int) else FORMAT_VERSION
    if "dense_dtype" in payload or v >= 2:
        from repro.kernels import dense_state_dtype

        try:
            expect_dtype = str(dense_state_dtype(compiled.dfa.num_states))
        except (AttributeError, TypeError):
            expect_dtype = None
        if expect_dtype is not None \
                and payload.get("dense_dtype") != expect_dtype:
            out.append(_err(
                K111,
                f"envelope dense dtype {payload.get('dense_dtype')!r} does "
                f"not match the stored DFA's narrowing ({expect_dtype})",
                location))
    if "prefilter" in payload or v >= 3:
        from repro.kernels.prefilter import derive_prefilter

        try:
            fresh = derive_prefilter(compiled.dfa)
            expect_summary = None if fresh is None else fresh.summary()
        except (AttributeError, TypeError, ValueError):
            expect_summary = None
        if payload.get("prefilter") != expect_summary:
            out.append(_err(
                K133,
                f"envelope prefilter summary {payload.get('prefilter')!r} "
                f"does not re-derive from the stored table "
                f"({expect_summary!r}); a stale certificate could skip "
                "live bytes",
                location))
    out.extend(verify_compiled(compiled, deep=deep, location=location))
    return out
