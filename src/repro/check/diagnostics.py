"""Structured diagnostics for ``repro check``.

Every finding the static-analysis subsystem produces — artifact
verification failures, lint rule hits, convergence certificates worth
surfacing — is a :class:`Diagnostic`: a stable machine-readable ``code``,
a ``severity``, a human message and a ``location`` (``file:line`` for
lint, a dotted artifact path like ``dfa.transitions`` for verification).

Codes are registered in :data:`CODES` with a one-line description; the
docs (``docs/static_analysis.md``) must document every registered code
and ``tests/test_check.py`` enforces that.

Severity semantics:

- ``error``   — the artifact/source is wrong; CI gates fail.
- ``warning`` — suspicious but not provably wrong; reported, non-fatal.
- ``info``    — a fact worth surfacing (e.g. a convergence certificate).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "CODES",
    "Diagnostic",
    "register_code",
    "has_errors",
    "count_by_severity",
    "render_text",
    "render_json",
]

SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

#: every registered diagnostic code -> one-line description
CODES: Dict[str, str] = {}


def register_code(code: str, description: str) -> str:
    """Register a diagnostic code; returns it so it can be assigned."""
    if code in CODES and CODES[code] != description:
        raise ValueError(f"diagnostic code {code} registered twice")
    CODES[code] = description
    return code


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a code, a severity, a message and where it points."""

    code: str
    severity: str
    message: str
    location: str = ""
    line: Optional[int] = None
    rule: Optional[str] = None
    function: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    @property
    def where(self) -> str:
        """``location:line`` when a line is known, else the location."""
        if self.line is not None:
            return f"{self.location}:{self.line}"
        return self.location

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
        }
        if self.line is not None:
            out["line"] = self.line
        if self.rule is not None:
            out["rule"] = self.rule
        if self.function is not None:
            out["function"] = self.function
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (baseline files, the lint cache)."""
        line = data.get("line")
        rule = data.get("rule")
        function = data.get("function")
        return cls(
            code=str(data["code"]),
            severity=str(data["severity"]),
            message=str(data["message"]),
            location=str(data.get("location", "")),
            line=int(line) if isinstance(line, int) else None,
            rule=str(rule) if rule is not None else None,
            function=str(function) if function is not None else None,
        )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any diagnostic is error-severity (the CI gate condition)."""
    return any(d.severity == "error" for d in diagnostics)


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts: Dict[str, int] = {severity: 0 for severity in SEVERITIES}
    for d in diagnostics:
        counts[d.severity] += 1
    return counts


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """One line per finding plus a severity summary footer."""
    lines: List[str] = []
    for d in diagnostics:
        where = d.where
        prefix = f"{where}: " if where else ""
        lines.append(f"{prefix}{d.severity} {d.code}: {d.message}")
    counts = count_by_severity(diagnostics)
    summary = ", ".join(f"{counts[s]} {s}(s)" for s in SEVERITIES)
    lines.append(summary)
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], **extra: object) -> str:
    """A JSON document: findings, severity counts, and caller extras."""
    payload: Dict[str, object] = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "counts": count_by_severity(diagnostics),
        "ok": not has_errors(diagnostics),
    }
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
