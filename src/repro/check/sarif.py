"""SARIF 2.1.0 export of ``repro check`` diagnostics.

SARIF is the interchange format CI forges understand natively: upload
the report as an artifact (or to a code-scanning endpoint) and the
R2xx/R3xx findings appear as inline annotations on the PR diff instead
of a wall of job-log text.  Only the small slice of the spec that
renders annotations is emitted: one ``run`` of one ``tool`` with a
rule table drawn from the registered :data:`repro.check.CODES` and one
``result`` per diagnostic.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.check.diagnostics import CODES, Diagnostic

__all__ = ["SARIF_VERSION", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

#: diagnostic severity -> SARIF result level
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_sarif(diagnostics: Sequence[Diagnostic],
                 tool_version: str = "0") -> str:
    """The findings as a SARIF 2.1.0 JSON document (a string)."""
    used_codes = sorted({d.code for d in diagnostics})
    rules: List[Dict[str, object]] = [
        {
            "id": code,
            "shortDescription": {"text": CODES.get(code, code)},
        }
        for code in used_codes
    ]
    rule_index = {code: i for i, code in enumerate(used_codes)}
    results: List[Dict[str, object]] = []
    for diag in diagnostics:
        result: Dict[str, object] = {
            "ruleId": diag.code,
            "ruleIndex": rule_index[diag.code],
            "level": _LEVELS.get(diag.severity, "warning"),
            "message": {"text": diag.message},
        }
        if diag.location:
            region: Dict[str, object] = {}
            if diag.line is not None:
                region["startLine"] = diag.line
            location: Dict[str, object] = {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.location.replace("\\", "/"),
                    },
                },
            }
            if region:
                physical = location["physicalLocation"]
                assert isinstance(physical, dict)
                physical["region"] = region
            if diag.function:
                location["logicalLocations"] = [
                    {"name": diag.function, "kind": "function"},
                ]
            result["locations"] = [location]
        results.append(result)
    document = {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "version": tool_version,
                        "informationUri":
                            "https://example.invalid/repro-check",
                        "rules": rules,
                    },
                },
                "results": results,
            },
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
