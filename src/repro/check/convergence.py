"""Exact convergence certification: verify what profiling predicts.

Random-input profiling (:mod:`repro.core.profiling`) *predicts* that each
merged convergence set collapses to one state on most inputs.  Because the
``set(N) -> set(M)`` step is deterministic, the prediction admits exact
static analysis: the images of a convergence set ``B`` under all words
form a finite *set-automaton* (nodes are state sets, one edge per symbol),
the same object Sin'ya et al.'s simultaneous finite automata and
Pritchard's symmetric-FSA decompositions enumerate.  Exploring it from
``B`` classifies the set exactly:

- **proven-convergent** — no cycle passes through a non-singleton node:
  every word of length >= the certificate ``depth`` collapses ``B``,
  unconditionally.  Speculation on this set can *never* miss once a
  segment is at least ``depth`` symbols long.
- **proven-divergent** — some reachable non-singleton node lies on a
  cycle: inputs exist (arbitrarily long ones) on which ``B`` never
  collapses, so speculation on this set is genuinely probabilistic and
  re-execution must stay armed.
- **unknown** — exploration hit the node/depth budget before closing the
  graph (the set-automaton can be exponential in the worst case).

The certificates are cross-checked against the profiled census: a set
proven convergent within the profiling word length *must* have converged
on every profiled input — a census entry claiming otherwise is corrupt
(code C401).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Counter as CounterT, Dict, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.check.diagnostics import Diagnostic, register_code
from repro.core.partition import StatePartition

__all__ = [
    "CONVERGENT",
    "DIVERGENT",
    "UNKNOWN",
    "CsCertificate",
    "certify_set",
    "certify_partition",
]

CONVERGENT = "proven-convergent"
DIVERGENT = "proven-divergent"
UNKNOWN = "unknown"

C201 = register_code("C201", "convergence set proven convergent")
C202 = register_code("C202", "convergence set proven divergent")
C301 = register_code("C301", "convergence certification inconclusive "
                             "(exploration budget exhausted)")
C401 = register_code("C401", "profiled census contradicts an exact "
                             "convergence certificate")


@dataclass(frozen=True)
class CsCertificate:
    """Exact classification of one convergence set."""

    block_index: int
    size: int
    status: str
    #: for proven-convergent sets: every word of this length (or longer)
    #: collapses the set; 0 for singletons
    depth: Optional[int]
    #: distinct state sets enumerated while closing the set-automaton
    explored_sets: int
    #: fraction of profiled inputs on which the set converged (None
    #: without a census)
    profiled_convergence: Optional[float] = None

    @property
    def proven(self) -> bool:
        return self.status != UNKNOWN


def _explore(dfa: Dfa, block: np.ndarray, max_sets: int,
             max_depth: int) -> Tuple[str, Optional[int], int]:
    """Close the set-automaton from ``block``; classify exactly.

    Returns ``(status, depth, explored)``.  Nodes are canonical sorted
    state tuples; singleton nodes are absorbing for this analysis (the
    image of a singleton is a singleton, converged stays converged).
    """
    start = tuple(int(q) for q in np.unique(block))
    if len(start) == 1:
        return CONVERGENT, 0, 1
    table = dfa.transitions
    ids: Dict[Tuple[int, ...], int] = {start: 0}
    members: List[np.ndarray] = [np.asarray(start, dtype=np.int32)]
    edges: List[List[int]] = []  # non-singleton node -> successor ids
    frontier: List[int] = [0]
    depth = 0
    truncated = False
    while frontier and not truncated:
        depth += 1
        if depth > max_depth:
            truncated = True
            break
        nxt: List[int] = []
        for node in frontier:
            succ: List[int] = []
            cur = members[node]
            for c in range(dfa.alphabet_size):
                image = np.unique(table[c].take(cur))
                key = tuple(int(q) for q in image)
                known = ids.get(key)
                if known is None:
                    known = len(members)
                    ids[key] = known
                    members.append(image)
                    if len(key) > 1:
                        nxt.append(known)
                succ.append(known)
            while len(edges) <= node:
                edges.append([])
            edges[node] = succ
            if len(ids) > max_sets:
                truncated = True
                break
        frontier = nxt
    if truncated:
        return UNKNOWN, None, len(ids)
    # the graph over non-singleton nodes is closed; a cycle there is an
    # unbounded non-converging word, its absence bounds convergence depth
    n = len(members)
    multi = [i for i in range(n) if members[i].size > 1]
    color = {i: 0 for i in multi}  # 0 unseen, 1 on stack, 2 done
    steps: Dict[int, int] = {}  # worst-case symbols until singleton

    for root in multi:
        if color[root]:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            node, edge_i = stack[-1]
            succ = edges[node] if node < len(edges) else []
            if edge_i < len(succ):
                stack[-1] = (node, edge_i + 1)
                child = succ[edge_i]
                if members[child].size == 1:
                    continue
                if color[child] == 1:
                    return DIVERGENT, None, len(ids)
                if color[child] == 0:
                    color[child] = 1
                    stack.append((child, 0))
            else:
                color[node] = 2
                worst = 0
                for child in succ:
                    worst = max(worst, 1 + steps.get(child, 0)
                                if members[child].size > 1 else 1)
                steps[node] = worst
                stack.pop()
    return CONVERGENT, steps.get(0, 1), len(ids)


def _census_convergence(block: np.ndarray,
                        census: CounterT[StatePartition]) -> float:
    """Fraction of profiled inputs on which ``block`` collapsed.

    A block converged on an input exactly when it sits inside a single
    block of the partition that input induced (all members shared a final
    state).
    """
    total = sum(census.values())
    if total == 0:
        return 0.0
    block_set = frozenset(int(q) for q in block)
    hit = 0
    for entry, count in census.items():
        if any(block_set <= other for other in entry.blocks):
            hit += count
    return hit / total


def certify_set(dfa: Dfa, block: np.ndarray, block_index: int = 0,
                max_sets: int = 4096, max_depth: int = 512,
                census: Optional[CounterT[StatePartition]] = None
                ) -> CsCertificate:
    """Exactly classify one convergence set (see module docstring)."""
    status, depth, explored = _explore(dfa, block, max_sets, max_depth)
    profiled = _census_convergence(block, census) if census else None
    return CsCertificate(
        block_index=block_index,
        size=int(np.unique(block).size),
        status=status,
        depth=depth,
        explored_sets=explored,
        profiled_convergence=profiled,
    )


def certify_partition(dfa: Dfa, partition: StatePartition,
                      census: Optional[CounterT[StatePartition]] = None,
                      profiling_len: Optional[int] = None,
                      max_sets: int = 4096, max_depth: int = 512
                      ) -> Tuple[List[CsCertificate], List[Diagnostic]]:
    """Certify every convergence set; cross-check against the census.

    ``profiling_len`` is the profiled word length (from the artifact's
    :class:`~repro.core.profiling.ProfilingConfig`); with it, a set
    proven convergent at depth ``d <= profiling_len`` whose profiled
    convergence is below 100% raises C401 — the census records an
    outcome the transition structure makes impossible, so the artifact's
    census (or its table) is corrupt.
    """
    certificates: List[CsCertificate] = []
    diagnostics: List[Diagnostic] = []
    for i, block in enumerate(partition.block_arrays()):
        cert = certify_set(dfa, block, block_index=i, max_sets=max_sets,
                           max_depth=max_depth, census=census)
        certificates.append(cert)
        where = f"partition.blocks[{i}]"
        if cert.status == CONVERGENT:
            diagnostics.append(Diagnostic(
                code=C201, severity="info", location=where,
                message=(f"set of {cert.size} state(s) collapses on every "
                         f"word of length >= {cert.depth} "
                         f"({cert.explored_sets} set(s) enumerated)")))
        elif cert.status == DIVERGENT:
            diagnostics.append(Diagnostic(
                code=C202, severity="info", location=where,
                message=(f"set of {cert.size} state(s) admits unboundedly "
                         "long non-collapsing inputs; speculation on it is "
                         "probabilistic and re-execution must stay armed")))
        else:
            diagnostics.append(Diagnostic(
                code=C301, severity="warning", location=where,
                message=(f"exploration stopped at {cert.explored_sets} "
                         f"set(s) (budget: {max_sets} sets, depth "
                         f"{max_depth}); raise --max-sets/--depth to "
                         "close the analysis")))
        if (census and profiling_len is not None
                and cert.status == CONVERGENT
                and cert.depth is not None
                and cert.depth <= profiling_len
                and cert.profiled_convergence is not None
                and cert.profiled_convergence < 1.0):
            diagnostics.append(Diagnostic(
                code=C401, severity="error", location=f"census/{where}",
                message=(f"set is proven to collapse within {cert.depth} "
                         f"symbols but the census records convergence on "
                         f"only {cert.profiled_convergence:.1%} of "
                         f"length-{profiling_len} profiled inputs; the "
                         "stored census contradicts the transition table")))
    return certificates, diagnostics
