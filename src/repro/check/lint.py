"""Pillar 2 — AST-based repo lint targeting this codebase's failure modes.

``repro check lint`` parses every Python file under the given paths and
runs the rule set in :data:`RULES`.  Rules are deliberately few and
specific: each one encodes an invariant this repo has been bitten by (or
designed around), not a general style opinion — style belongs to ``ruff``,
which CI runs alongside.

Rules
-----
R101  dtype-less numpy array constructor in a kernel/profiling hot path.
      Default dtypes differ across platforms (Windows int32 vs Linux
      int64) and silently change gather widths and ``tobytes()`` cache
      keys; hot-path allocations must pin their dtype.
R102  ``SharedMemory`` acquired in a function with no cleanup handler.
      A segment that is not closed *and* unlinked on every path leaks a
      ``/dev/shm`` file for the machine's lifetime.  The rule accepts a
      ``finally``/``except`` block that closes and unlinks the handle
      (or calls a ``*release*``/``*cleanup*`` helper).
R103  ``multiprocessing`` / ``ProcessPoolExecutor`` used outside
      ``repro/software.py``.  Worker lifecycle, table shipping and
      shared-memory bookkeeping are centralized in ``segment_pool``;
      ad-hoc pools re-pickle the DFA per task and skip telemetry merge.
R104  ``Engine`` subclass machinery that would bypass the ``repro.obs``
      instrumentation wrapper: overriding ``__init_subclass__``,
      assigning ``SomeEngine.run = ...`` after class creation, or
      forging ``__obs_wrapped__`` outside ``engines/base.py``.
R105  Mutable default argument (list/dict/set literal or constructor).
R106  Bare ``except:`` or an overbroad handler (``except BaseException``
      / ``except Exception``) that does not re-raise.

The flow-sensitive families R2xx (resource lifecycle) and R3xx (dtype
and value-range abstract interpretation) live in
:mod:`repro.check.flow` and are appended by :func:`default_rules` —
the set ``repro check lint`` runs unless ``--no-flow`` is given.

Suppression: append ``# repro: noqa(R102)`` (or ``# repro: noqa`` for
all codes) to the flagged line.  Suppressions are deliberate, reviewed
exceptions — e.g. the worker-side shared-memory attach in
``repro/software.py`` whose handle is unlinked by the parent.  R107
reports suppressions that no longer suppress anything (stale after a
refactor); it only runs when the full rule set does
(``check_stale_noqa=True``) and is deliberately not suppressible
itself — a ``noqa(R107)`` would make every stale comment self-hiding.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Set, Union

from repro.check.diagnostics import Diagnostic, register_code

__all__ = ["RULES", "LintRule", "default_rules", "lint_source",
           "lint_paths"]

R100 = register_code("R100", "file does not parse")
R107 = register_code("R107", "stale noqa suppresses nothing")
R101 = register_code("R101", "dtype-less numpy constructor in a hot path")
R102 = register_code("R102", "SharedMemory without close-and-unlink cleanup")
R103 = register_code("R103", "multiprocessing outside segment_pool")
R104 = register_code("R104", "Engine instrumentation wrapper bypass")
R105 = register_code("R105", "mutable default argument")
R106 = register_code("R106", "bare or overbroad except clause")

#: modules whose numpy allocations must pin an explicit dtype (R101);
#: matched as substrings of the POSIX-style file path
HOT_PATHS = (
    "repro/kernels/",
    "repro/core/profiling.py",
    "repro/software.py",
    "repro/compilecache/artifact.py",
)

#: the one module allowed to own process pools / shared memory (R103)
POOL_MODULE = "repro/software.py"

#: where the instrumentation wrapper itself lives (R104 exempt)
ENGINE_BASE_MODULE = "repro/engines/base.py"

#: numpy array constructors that accept (and must receive) ``dtype=``
_NP_CONSTRUCTORS = frozenset({
    "zeros", "empty", "ones", "full", "arange", "asarray",
    "ascontiguousarray", "fromiter", "frombuffer",
})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\(\s*(?P<codes>[A-Z0-9,\s]+?)\s*\))?"
)


class LintContext:
    """Everything a rule needs: the tree, the source and the path."""

    def __init__(self, tree: ast.Module, source: str, path: str):
        self.tree = tree
        self.source = source
        self.path = path.replace("\\", "/")
        self.lines = source.splitlines()
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child._repro_parent = parent  # type: ignore[attr-defined]

    def in_module(self, fragment: str) -> bool:
        return fragment in self.path

    def functions(self) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


class LintRule:
    """Base class: a code, a name, and a ``check`` generator."""

    code: str = ""
    name: str = ""

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST,
                message: str, severity: str = "error") -> Diagnostic:
        return Diagnostic(
            code=self.code, severity=severity, message=message,
            location=ctx.path, line=getattr(node, "lineno", None),
            rule=self.name,
        )


def _is_numpy_attr(node: ast.AST) -> Optional[str]:
    """``np.zeros`` / ``numpy.zeros`` -> the constructor name."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id in ("np", "numpy"):
        return node.attr
    return None


class NumpyDtypeRule(LintRule):
    """R101: hot-path numpy allocations must pin ``dtype=``.

    Applies to the constructors in :data:`_NP_CONSTRUCTORS` inside the
    modules listed in :data:`HOT_PATHS` only — cold-path code may let
    numpy infer.
    """

    code = R101
    name = "numpy-dtype"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if not any(ctx.in_module(hot) for hot in HOT_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = _is_numpy_attr(node.func)
            if attr not in _NP_CONSTRUCTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            yield self.finding(
                ctx, node,
                f"np.{attr}(...) without an explicit dtype= in a hot path; "
                "default dtypes are platform-dependent and change gather "
                "widths and cache keys")


class SharedMemoryGuardRule(LintRule):
    """R102: SharedMemory needs a reachable close-and-unlink path.

    Heuristic, by design (exact escape analysis is undecidable): the
    enclosing function must contain a ``finally`` or ``except`` block
    that references both ``.close`` and ``.unlink``, or calls a helper
    whose name contains ``release``/``cleanup``/``unlink``.  Deliberate
    exceptions (e.g. worker-side attach caching) carry a noqa.
    """

    code = R102
    name = "shm-guard"

    @staticmethod
    def _handler_cleans(handler_bodies: List[List[ast.stmt]]) -> bool:
        saw_close = saw_unlink = False
        for body in handler_bodies:
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Attribute):
                        if node.attr == "close":
                            saw_close = True
                        if node.attr == "unlink":
                            saw_unlink = True
                    if isinstance(node, ast.Call):
                        name = ""
                        if isinstance(node.func, ast.Name):
                            name = node.func.id
                        elif isinstance(node.func, ast.Attribute):
                            name = node.func.attr
                        if re.search(r"release|cleanup|unlink", name):
                            saw_close = saw_unlink = True
        return saw_close and saw_unlink

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.functions():
            calls = [
                node for node in ast.walk(func)
                if isinstance(node, ast.Call) and (
                    (isinstance(node.func, ast.Name)
                     and node.func.id == "SharedMemory")
                    or (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "SharedMemory"))
            ]
            if not calls:
                continue
            handler_bodies: List[List[ast.stmt]] = []
            for node in ast.walk(func):
                if isinstance(node, ast.Try):
                    if node.finalbody:
                        handler_bodies.append(node.finalbody)
                    for handler in node.handlers:
                        handler_bodies.append(handler.body)
            if self._handler_cleans(handler_bodies):
                continue
            for call in calls:
                yield self.finding(
                    ctx, call,
                    "SharedMemory acquired but the enclosing function has "
                    "no finally/except path that closes and unlinks it; a "
                    "failure here leaks the /dev/shm segment")


class MultiprocessingScopeRule(LintRule):
    """R103: process pools and raw multiprocessing live in one module.

    Everything multiprocess goes through ``repro.software.segment_pool``
    so tables ship once, telemetry merges, and shared-memory lifetimes
    stay balanced.
    """

    code = R103
    name = "mp-outside-pool"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.in_module(POOL_MODULE):
            return
        for node in ast.walk(ctx.tree):
            offending: Optional[str] = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        offending = alias.name
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "multiprocessing":
                    offending = module
                elif module == "concurrent.futures" and any(
                        alias.name == "ProcessPoolExecutor"
                        for alias in node.names):
                    offending = "concurrent.futures.ProcessPoolExecutor"
            if offending:
                yield self.finding(
                    ctx, node,
                    f"{offending} imported outside {POOL_MODULE}; route "
                    "process-level parallelism through "
                    "repro.software.segment_pool")


class EngineInstrumentationRule(LintRule):
    """R104: nothing may dodge the Engine telemetry wrapper.

    ``Engine.__init_subclass__`` wraps every concrete ``run`` with the
    span/counter recorder; a subclass overriding ``__init_subclass__``,
    code re-assigning ``SomeEngine.run``, or anything forging the
    ``__obs_wrapped__`` marker outside ``engines/base.py`` silently
    drops that telemetry.
    """

    code = R104
    name = "engine-obs-bypass"

    @staticmethod
    def _engine_base(base: ast.expr) -> bool:
        if isinstance(base, ast.Name):
            return base.id.endswith("Engine")
        if isinstance(base, ast.Attribute):
            return base.attr.endswith("Engine")
        return False

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.in_module(ENGINE_BASE_MODULE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) \
                    and any(self._engine_base(b) for b in node.bases):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)) \
                            and stmt.name == "__init_subclass__":
                        yield self.finding(
                            ctx, stmt,
                            f"{node.name} overrides __init_subclass__, "
                            "which replaces the hook that wraps run() with "
                            "the obs instrumentation")
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign) else [node.target])
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and target.attr == "run" \
                            and self._engine_base(target.value):
                        yield self.finding(
                            ctx, node,
                            "assigning .run on an Engine class after "
                            "creation skips the obs instrumentation wrapper")
                    if isinstance(target, ast.Attribute) \
                            and target.attr == "__obs_wrapped__":
                        yield self.finding(
                            ctx, node,
                            "forging __obs_wrapped__ outside engines/base "
                            "marks an uninstrumented run() as instrumented")


class MutableDefaultRule(LintRule):
    """R105: mutable default arguments are shared across calls."""

    code = R105
    name = "mutable-default"

    @staticmethod
    def _is_mutable(node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.functions():
            args = func.args  # type: ignore[attr-defined]
            for default in list(args.defaults) + list(args.kw_defaults):
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in "
                        f"{func.name}(); it is evaluated once and shared "  # type: ignore[attr-defined]
                        "across every call")


class OverbroadExceptRule(LintRule):
    """R106: handlers must be narrow or re-raise.

    Bare ``except:`` and ``except BaseException:`` swallow
    KeyboardInterrupt/SystemExit; ``except Exception:`` hides real
    faults.  A handler whose body contains a bare ``raise`` is a
    cleanup-and-propagate pattern and is allowed.
    """

    code = R106
    name = "overbroad-except"

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise) and node.exc is None
            for node in ast.walk(handler)
        )

    @staticmethod
    def _broad_name(type_node: Optional[ast.expr]) -> Optional[str]:
        if type_node is None:
            return "bare"
        names: List[ast.expr] = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for entry in names:
            name = entry.id if isinstance(entry, ast.Name) else (
                entry.attr if isinstance(entry, ast.Attribute) else "")
            if name in ("BaseException", "Exception"):
                return name
        return None

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if broad == "bare":
                yield self.finding(
                    ctx, node,
                    "bare except: catches KeyboardInterrupt and SystemExit; "
                    "name the exceptions (or catch Exception and re-raise)")
            elif not self._reraises(node):
                severity = "error" if broad == "BaseException" else "warning"
                yield self.finding(
                    ctx, node,
                    f"except {broad} without a re-raise swallows faults "
                    "this code cannot handle",
                    severity=severity)


RULES: List[LintRule] = [
    NumpyDtypeRule(),
    SharedMemoryGuardRule(),
    MultiprocessingScopeRule(),
    EngineInstrumentationRule(),
    MutableDefaultRule(),
    OverbroadExceptRule(),
]


def default_rules(flow: bool = True) -> List[LintRule]:
    """The rule set ``repro check lint`` runs: per-node + flow families.

    The flow package is imported lazily so ``repro.check.lint`` stays
    importable (and :data:`RULES` usable) without it.
    """
    rules = list(RULES)
    if flow:
        from repro.check.flow import FLOW_RULES
        rules.extend(FLOW_RULES)  # type: ignore[arg-type]
    return rules


def _noqa_codes(line: str) -> Optional[Set[str]]:
    """Codes suppressed on this line; empty set means *all* codes."""
    match = _NOQA_RE.search(line)
    if not match:
        return None
    codes = match.group("codes")
    if not codes:
        return set()
    return {c.strip() for c in codes.split(",") if c.strip()}


def _noqa_comment_lines(source: str) -> Set[int]:
    """Lines carrying an actual ``# repro: noqa`` *comment token*.

    The regex alone would also match prose quoting the marker inside a
    docstring (this module's own docstring does), which must not count
    as a suppression site for R107.
    """
    out: Set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT \
                    and _NOQA_RE.search(tok.string):
                out.add(tok.start[0])
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        pass  # unparseable tail: R100 reports it; no stale-noqa pass
    return out


def _suppressed(diag: Diagnostic, lines: Sequence[str]) -> bool:
    if diag.line is None or not (1 <= diag.line <= len(lines)):
        return False
    codes = _noqa_codes(lines[diag.line - 1])
    if codes is None:
        return False
    return not codes or diag.code in codes


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[LintRule]] = None,
                check_stale_noqa: bool = False) -> List[Diagnostic]:
    """Lint one source string; ``path`` drives the module-scoped rules.

    ``check_stale_noqa`` adds R107 findings for ``# repro: noqa``
    comments that suppressed nothing.  Only pass it when ``rules`` is
    the *full* set (:func:`default_rules`): with rules missing, their
    suppressions would look stale.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Diagnostic(
            code=R100, severity="error", rule="syntax",
            message=f"file does not parse: {exc.msg}",
            location=path, line=exc.lineno)]
    ctx = LintContext(tree, source, path)
    out: List[Diagnostic] = []
    used_noqa_lines: Set[int] = set()
    for rule in rules if rules is not None else RULES:
        for diag in rule.check(ctx):
            if _suppressed(diag, ctx.lines):
                if diag.line is not None:
                    used_noqa_lines.add(diag.line)
            else:
                out.append(diag)
    if check_stale_noqa:
        for lineno in sorted(_noqa_comment_lines(source)):
            if lineno not in used_noqa_lines:
                out.append(Diagnostic(
                    code=R107, severity="warning", rule="stale-noqa",
                    location=ctx.path, line=lineno,
                    message="this `# repro: noqa` suppresses nothing; "
                            "the finding it excused is gone — remove "
                            "the comment or it will hide the next one"))
    out.sort(key=lambda d: (d.location, d.line or 0, d.code))
    return out


def expand_paths(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Files/directories -> the ordered list of ``.py`` files to lint."""
    files: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def lint_paths(paths: Sequence[Union[str, Path]],
               rules: Optional[Sequence[LintRule]] = None,
               check_stale_noqa: bool = False) -> List[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    out: List[Diagnostic] = []
    for f in expand_paths(paths):
        out.extend(lint_source(f.read_text(encoding="utf-8"),
                               path=str(f), rules=rules,
                               check_stale_noqa=check_stale_noqa))
    return out
