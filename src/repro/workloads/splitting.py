"""Delimiter splitting of structured inputs (Section V-B).

The paper argues PAP's "one file = one input string" methodology is
unrealistic: Brill text cannot match across sentence boundaries, Snort
packets are independent, so real deployments split the input and process
pieces in parallel.  Dependent sequences rarely exceed ten thousand
symbols — which is why initial enumeration overhead (R0) matters.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.automata.dfa import as_symbols

__all__ = ["split_by_delimiter", "insert_delimiters"]


def split_by_delimiter(
    symbols,
    delimiter: int,
    keep_delimiter: bool = False,
    drop_empty: bool = True,
) -> List[np.ndarray]:
    """Cut an input at every occurrence of ``delimiter``.

    Each returned piece is independent: an FSM restarted at each piece
    produces the same reports as one sequential pass, provided no pattern
    can match across the delimiter (the property Brill sentences and Snort
    packet boundaries guarantee).
    """
    syms = as_symbols(symbols)
    cut_positions = np.flatnonzero(syms == int(delimiter))
    pieces: List[np.ndarray] = []
    prev = 0
    for cut in cut_positions.tolist():
        end = cut + 1 if keep_delimiter else cut
        piece = syms[prev:end]
        if piece.size or not drop_empty:
            pieces.append(piece)
        prev = cut + 1
    tail = syms[prev:]
    if tail.size or not drop_empty:
        pieces.append(tail)
    return pieces


def insert_delimiters(
    pieces: List[np.ndarray],
    delimiter: int,
) -> np.ndarray:
    """Inverse of :func:`split_by_delimiter` (for corpus assembly)."""
    if not pieces:
        return np.empty(0, dtype=np.int64)
    joined: List[np.ndarray] = []
    delim = np.asarray([int(delimiter)], dtype=np.int64)
    for i, piece in enumerate(pieces):
        if i:
            joined.append(delim)
        joined.append(as_symbols(piece))
    return np.concatenate(joined)
