"""Literal-heavy workloads for the prefilter fast path.

Snort-style payload inspection is dominated by *pure literal* signatures
(content strings), and real traffic contains long runs of bytes that can
never start a match.  That is exactly the regime the literal prefilter
(:mod:`repro.kernels.prefilter`) certifies at compile time, so this
module generates both halves of the benchmark:

- :func:`literal_patterns` — multi-pattern literal rulesets whose trie
  DFA is guaranteed literal-certifiable (no regex constructs, so the
  non-anchor graph is acyclic away from the trie root);
- :func:`literal_payload` — payload bytes with a *tunable match density*:
  planted pattern occurrences over filler drawn from bytes outside the
  patterns' alphabet (the prefilter's best case), or — with
  ``adversarial=True`` — filler drawn from the patterns' own first bytes,
  making every filler byte an anchor hit (the prefilter's worst case, the
  regime the fallback gate measures).

The ``LiteralHeavy`` family registered in
:data:`repro.workloads.FAMILY_GENERATORS` delegates to
:func:`literal_patterns`, so the benchmark suite, the equivalence tests
and ``repro check artifact --family LiteralHeavy`` all draw from the same
deterministic generator.
"""

from __future__ import annotations

import string
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["literal_patterns", "literal_payload", "literal_heavy"]

_LOWER = string.ascii_lowercase


def literal_patterns(
    rng: np.random.Generator,
    n_patterns: int,
    min_len: int = 5,
    max_len: int = 12,
    alphabet: str = _LOWER,
) -> List[str]:
    """``n_patterns`` distinct pure-literal signatures.

    Patterns contain no regex metacharacters, so ``compile_ruleset``
    builds a trie-shaped DFA: every non-root state is reached only
    through its literal prefix and falls back toward the root on a
    mismatch — the structure :func:`repro.kernels.derive_prefilter`
    certifies with the root as the home state.
    """
    seen = set()
    patterns: List[str] = []
    while len(patterns) < n_patterns:
        length = int(rng.integers(min_len, max_len + 1))
        word = "".join(
            alphabet[int(i)]
            for i in rng.integers(0, len(alphabet), length)
        )
        if word not in seen:
            seen.add(word)
            patterns.append(word)
    return patterns


def literal_payload(
    patterns: Sequence[str],
    length: int,
    match_density: float = 0.001,
    seed: int = 0,
    adversarial: bool = False,
    filler: Optional[bytes] = None,
) -> bytes:
    """``length`` payload bytes with planted pattern occurrences.

    ``match_density`` is the expected fraction of positions at which a
    planted pattern *starts* (0 plants nothing).  The space between
    plants is filler: by default bytes that appear in **no** pattern
    (upper-case letters, digits, punctuation — the prefilter skips these
    wholesale); with ``adversarial=True`` the filler is drawn from the
    patterns' own first bytes, so every position is an anchor hit and the
    prefilter degenerates to walking.  ``filler`` overrides the pool
    explicitly.

    Plants may overwrite each other when the density is high; that is
    deliberate — overlapping plants are exactly the adversarially dense
    case the equivalence tests need.
    """
    if length <= 0:
        return b""
    rng = np.random.default_rng(seed)
    used = {ord(c) for p in patterns for c in p}
    if filler is not None:
        pool = np.frombuffer(bytes(filler), dtype=np.uint8)
    elif adversarial:
        firsts = sorted({ord(p[0]) for p in patterns if p}) or [0]
        pool = np.asarray(firsts, dtype=np.uint8)
    else:
        clean = [b for b in range(256) if b not in used]
        pool = np.asarray(clean or list(range(256)), dtype=np.uint8)
    payload = pool[rng.integers(0, pool.size, length)]
    n_plants = int(round(match_density * length))
    if patterns and n_plants > 0:
        starts = rng.integers(0, length, n_plants)
        picks = rng.integers(0, len(patterns), n_plants)
        for start, pick in zip(starts, picks):
            chunk = patterns[int(pick)].encode("latin-1")
            start = int(start)
            end = min(start + len(chunk), length)
            payload[start:end] = np.frombuffer(
                chunk[: end - start], dtype=np.uint8
            )
    return payload.tobytes()


def literal_heavy(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """The ``LiteralHeavy`` suite family: certifiable literal rulesets."""
    return literal_patterns(rng, n_patterns)
