"""The Table-I benchmark registry.

A paper benchmark is a *collection* of FSMs (Table I: e.g. Dotstar03 has
300 FSMs totalling 19k states): rules are grouped into many small machines
that all scan the input.  Each :class:`BenchmarkSpec` captures one
benchmark: its ruleset family, how many FSMs to build and how many rules
each gets, the input model, and the engine parameters from Table I
(lookback length ``L``, the MFP merge cut-off, half-cores per segment and
segment count).  :func:`load_benchmark` materializes a spec into compiled
DFAs plus per-FSM input strings, with in-process caching so the experiment
harness can reuse instances across figures.

Scale note: the paper runs hundreds of FSMs per benchmark with 10^4-10^6
total states; this pure-Python evaluation runs the same pipeline with a
handful of FSMs at 10^2-10^3 total states (see DESIGN.md §6).  ``scale``
grows FSM counts and input lengths for larger machines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.core.profiling import ProfilingConfig
from repro.regex.compile import compile_ruleset
from repro.workloads.rulesets import generate_ruleset
from repro.workloads.traces import becchi_trace, deepening_symbols

__all__ = [
    "BenchmarkSpec",
    "BenchmarkUnit",
    "BenchmarkInstance",
    "SUITE",
    "benchmark_names",
    "get_benchmark",
    "load_benchmark",
    "clear_cache",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table I (plus the synthetic-generation knobs)."""

    name: str
    family: str
    #: number of FSMs in the collection (paper: "#FSM", scaled down)
    n_fsms: int
    #: rules compiled into each FSM
    patterns_per_fsm: int
    #: Table I "L": LBE lookback length
    lookback: int
    #: Table I "MFP": merge cut-off coverage (1.0 = merge to 100%)
    merge_cutoff: float
    #: Table I "#Half-Core per Segment"
    cores_per_segment: int
    #: Table I "#Segment"
    n_segments: int
    #: input model
    n_strings: int = 3
    input_len: int = 4800
    p_match: float = 0.75
    symbol_low: int = 97
    symbol_high: int = 122
    #: evaluation-input model: "becchi" (automaton-guided traces),
    #: "sentences" (word text, Brill), "packets" (NIDS payloads, Snort) or
    #: "protein" (amino sequences, Protomata).  Profiling always stays on
    #: uniform random symbols regardless — that gap between profiling and
    #: evaluation inputs is what Figures 8/18 measure.
    input_kind: str = "becchi"
    delimiter: Optional[int] = None
    pattern_seed: int = 1
    input_seed: int = 2
    profile_inputs: int = 250

    @property
    def profile_len(self) -> int:
        """Profiling string length, matched to the segment length.

        The paper profiles with strings of the length real deployments
        split the input into — for us, one segment's worth of symbols.
        """
        return max(100, self.input_len // self.n_segments)

    def profiling_config(self, fsm_index: int = 0) -> ProfilingConfig:
        """Random-input profiling matched to this benchmark's symbol range.

        Profiling never uses the evaluation inputs (Section IV-B1): only
        string length and symbol range are taken from the spec.
        """
        return ProfilingConfig(
            n_inputs=self.profile_inputs,
            input_len=self.profile_len,
            symbol_low=self.symbol_low,
            symbol_high=self.symbol_high,
            seed=self.pattern_seed * 7919 + fsm_index * 101 + 13,
        )

    def scaled(self, scale: float) -> "BenchmarkSpec":
        """Uniformly scale the FSM count and input length."""
        return replace(
            self,
            n_fsms=max(1, int(round(self.n_fsms * scale))),
            input_len=max(64, int(self.input_len * scale)),
        )


@dataclass
class BenchmarkUnit:
    """One FSM of a benchmark collection plus its evaluation inputs."""

    fsm_index: int
    dfa: Dfa
    patterns: List[str]
    strings: List[np.ndarray]


@dataclass
class BenchmarkInstance:
    """A materialized benchmark: all FSMs with their inputs."""

    spec: BenchmarkSpec
    units: List[BenchmarkUnit]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_fsms(self) -> int:
        return len(self.units)

    @property
    def total_states(self) -> int:
        return sum(unit.dfa.num_states for unit in self.units)

    @property
    def total_patterns(self) -> int:
        return sum(len(unit.patterns) for unit in self.units)


def _spec(name, family, n_fsms, per_fsm, lookback, cutoff, cores, segments, **kw):
    return BenchmarkSpec(
        name=name,
        family=family,
        n_fsms=n_fsms,
        patterns_per_fsm=per_fsm,
        lookback=lookback,
        merge_cutoff=cutoff,
        cores_per_segment=cores,
        n_segments=segments,
        **kw,
    )


#: Table I, scaled to Python-tractable sizes.  L, MFP cut-off, half-cores
#: per segment and segment counts are the paper's values verbatim.
#: Pattern-per-FSM counts follow the paper's state budget: Table I's
#: #FSM / #State columns put the average FSM at 45-65 states, i.e. one or
#: two rules per machine.
SUITE: Tuple[BenchmarkSpec, ...] = (
    # Dotstar-family traces use a lower nominal p_match: armed `.*` states
    # make most symbols "deepening", so the effective advance rate at 0.75
    # would far exceed Becchi-trace match density; 0.15 restores a
    # realistic mix of partial matches that arm without always resolving.
    _spec("Dotstar03", "Dotstar03", 8, 2, 30, 1.00, 1, 16, p_match=0.15),
    _spec("Dotstar06", "Dotstar06", 8, 2, 30, 1.00, 1, 16, p_match=0.15),
    _spec("Dotstar09", "Dotstar09", 8, 1, 30, 0.99, 1, 16, p_match=0.15),
    _spec("Ranges05", "Ranges05", 8, 2, 20, 1.00, 1, 16),
    _spec("Ranges1", "Ranges1", 8, 2, 10, 1.00, 1, 16),
    _spec("ExactMatch", "ExactMatch", 8, 3, 10, 1.00, 1, 16),
    _spec("TCP", "TCP", 8, 2, 30, 1.00, 1, 16),
    _spec("PowerEN", "PowerEN", 6, 2, 20, 1.00, 1, 16),
    _spec("Dotstar", "Dotstar", 8, 2, 20, 1.00, 2, 8, p_match=0.15),
    _spec(
        "Protomata", "Protomata", 6, 2, 20, 0.99, 2, 8,
        symbol_low=65, symbol_high=89, input_kind="protein",
    ),
    _spec(
        "Snort", "Snort", 8, 2, 10, 0.99, 3, 5,
        symbol_low=32, symbol_high=126, delimiter=0, input_kind="packets",
    ),
    _spec(
        "Clamav", "Clamav", 6, 2, 40, 0.99, 3, 5,
        symbol_low=48, symbol_high=102,
    ),
    _spec(
        "Brill", "Brill", 6, 2, 50, 1.00, 3, 5,
        symbol_low=32, symbol_high=122, delimiter=46, input_kind="sentences",
    ),
)

def _generate_strings(spec: BenchmarkSpec, dfa, rng) -> List[np.ndarray]:
    """Evaluation inputs per the spec's input model (never used in
    profiling)."""
    from repro.workloads import corpus  # local import avoids a cycle

    if spec.input_kind == "sentences":
        return [
            corpus.sentence_corpus(rng, spec.input_len)
            for _ in range(spec.n_strings)
        ]
    if spec.input_kind == "packets":
        return [
            corpus.packet_corpus(rng, spec.input_len,
                                 delimiter=spec.delimiter or 0)
            for _ in range(spec.n_strings)
        ]
    if spec.input_kind == "protein":
        return [
            corpus.protein_corpus(rng, spec.input_len)
            for _ in range(spec.n_strings)
        ]
    if spec.input_kind != "becchi":
        raise ValueError(f"unknown input_kind {spec.input_kind!r}")
    deepening = deepening_symbols(dfa, spec.symbol_low, spec.symbol_high)
    return [
        becchi_trace(
            dfa,
            rng,
            spec.input_len,
            p_match=spec.p_match,
            symbol_low=spec.symbol_low,
            symbol_high=spec.symbol_high,
            deepening=deepening,
        )
        for _ in range(spec.n_strings)
    ]


_CACHE: Dict[Tuple[str, float], BenchmarkInstance] = {}


def benchmark_names() -> List[str]:
    return [spec.name for spec in SUITE]


def get_benchmark(name: str) -> BenchmarkSpec:
    for spec in SUITE:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}")


def load_benchmark(name: str, scale: float = 1.0) -> BenchmarkInstance:
    """Compile and populate a benchmark (cached per (name, scale))."""
    key = (name, scale)
    if key in _CACHE:
        return _CACHE[key]
    spec = get_benchmark(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    units: List[BenchmarkUnit] = []
    for fsm_index in range(spec.n_fsms):
        patterns = generate_ruleset(
            spec.family,
            spec.patterns_per_fsm,
            spec.pattern_seed + 1000 * fsm_index,
        )
        dfa = compile_ruleset(patterns)
        rng = np.random.default_rng(spec.input_seed + 1000 * fsm_index)
        strings = _generate_strings(spec, dfa, rng)
        units.append(BenchmarkUnit(fsm_index, dfa, patterns, strings))
    instance = BenchmarkInstance(spec, units)
    _CACHE[key] = instance
    return instance


def clear_cache() -> None:
    """Drop cached instances (tests use this to control memory)."""
    _CACHE.clear()
