"""Input-trace generation (Section V-B).

The Regex suite's inputs come from Becchi's trace generator, parameterized
by ``p_m`` — the probability that the next symbol *advances* the automaton
(matches and activates deeper states); the paper uses ``p_m = 0.75``.
:func:`becchi_trace` reimplements that idea on our DFAs: with probability
``p_m`` pick a symbol leading to a deeper state (BFS depth from the start),
otherwise pick uniformly in the benchmark's symbol range.

Purely random strings (:func:`random_trace`) are what convergence-set
profiling uses — the paper stresses that profiling never sees real inputs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.automata.dfa import Dfa

__all__ = ["random_trace", "becchi_trace", "deepening_symbols"]


def random_trace(
    rng: np.random.Generator,
    length: int,
    symbol_low: int = 0,
    symbol_high: int = 255,
) -> np.ndarray:
    """Uniform random symbols within an inclusive range."""
    if symbol_low > symbol_high:
        raise ValueError("symbol_low > symbol_high")
    return rng.integers(symbol_low, symbol_high + 1, size=length, dtype=np.int64)


def deepening_symbols(
    dfa: Dfa, symbol_low: int = 0, symbol_high: int = 255
) -> List[np.ndarray]:
    """Per-state list of symbols that move the machine strictly deeper.

    Depth is BFS distance from the start state; a "deepening" symbol is one
    whose transition increases it — the trace generator's notion of a
    matching symbol.
    """
    depths = dfa.state_depths()
    symbols = np.arange(symbol_low, min(symbol_high, dfa.alphabet_size - 1) + 1)
    table = dfa.transitions[symbols, :]  # (range, states)
    deeper = depths[table] > depths[None, :]
    return [symbols[deeper[:, q]] for q in range(dfa.num_states)]


def becchi_trace(
    dfa: Dfa,
    rng: np.random.Generator,
    length: int,
    p_match: float = 0.75,
    symbol_low: int = 0,
    symbol_high: int = 255,
    deepening: Optional[List[np.ndarray]] = None,
) -> np.ndarray:
    """A depth-guided stochastic trace.

    At each position, with probability ``p_match`` emit a symbol that moves
    the current state deeper into the automaton (if any exists); otherwise
    emit a uniform symbol from the range.  The state is tracked so the
    trace exercises realistic partial-match behaviour.

    Pass a precomputed ``deepening`` table (from :func:`deepening_symbols`)
    when generating many traces for the same DFA.
    """
    if not (0.0 <= p_match <= 1.0):
        raise ValueError("p_match must be within [0, 1]")
    if deepening is None:
        deepening = deepening_symbols(dfa, symbol_low, symbol_high)
    high = min(symbol_high, dfa.alphabet_size - 1)
    out = np.empty(length, dtype=np.int64)
    state = dfa.start
    table = dfa.transitions
    rolls = rng.random(length)
    uniform = rng.integers(symbol_low, high + 1, size=length)
    for t in range(length):
        candidates = deepening[state]
        if rolls[t] < p_match and candidates.size:
            sym = int(candidates[int(rng.integers(candidates.size))])
        else:
            sym = int(uniform[t])
        out[t] = sym
        state = int(table[sym, state])
    return out
