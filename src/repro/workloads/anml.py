"""Loader for ANML (Automata Network Markup Language) files.

ANMLZoo — the paper's benchmark suite — distributes its automata in
Micron's ANML format: a *homogeneous* NFA where each state-transition
element (STE) owns the symbol set on its incoming edges::

    <automata-network>
      <state-transition-element id="q0" symbol-set="[ab]"
                                start-of-data="all-input">
        <activate-on-match element="q1"/>
      </state-transition-element>
      <state-transition-element id="q1" symbol-set="[c]">
        <report-on-match/>
      </state-transition-element>
    </automata-network>

This module converts that representation into our :class:`Nfa` (and on to
a DFA), so users holding real ANMLZoo files can run them through every
engine.  Supported subset: ``state-transition-element``,
``activate-on-match``, ``report-on-match``, ``start-of-data`` values
``start-of-data`` (position 0 only) and ``all-input`` (every position),
and symbol sets as bracket expressions, ``*`` (any symbol), or a single
character.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, FrozenSet, List, Union

from repro.automata.dfa import Dfa
from repro.automata.minimize import minimize as minimize_dfa
from repro.automata.nfa import EPSILON, Nfa
from repro.automata.subset import determinize
from repro.regex import charclass as cc
from repro.regex.parser import _Parser

__all__ = ["parse_symbol_set", "anml_to_nfa", "load_anml", "load_anml_dfa"]


def parse_symbol_set(spec: str) -> FrozenSet[int]:
    """An ANML ``symbol-set`` attribute as a set of byte values."""
    if spec == "*":
        return cc.ALL_BYTES
    if spec.startswith("["):
        parser = _Parser(spec)
        return parser.parse_class()
    if len(spec) == 1:
        return frozenset([ord(spec)])
    # escaped single character like ``\x41``
    if spec.startswith("\\"):
        parser = _Parser(f"[{spec}]")
        return parser.parse_class()
    raise ValueError(f"unsupported symbol-set {spec!r}")


def _strip_namespace(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def anml_to_nfa(xml_text: str, alphabet_size: int = 256) -> Nfa:
    """Convert ANML text into an :class:`Nfa`.

    Homogeneous-to-edge-labeled conversion: each STE becomes one state;
    an ``activate-on-match`` from X to Y becomes an edge X -> Y labeled
    with *Y's* symbol set.  A fresh start state feeds the start STEs; an
    ``all-input`` start keeps the start state active via a self-loop on
    every symbol (the scan-DFA prefix).
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ValueError(f"not well-formed ANML/XML: {exc}") from exc
    # the network element may be the root or nested one level down
    if _strip_namespace(root.tag) == "automata-network":
        network = root
    else:
        network = next(
            (el for el in root if _strip_namespace(el.tag) == "automata-network"),
            root,
        )

    nfa = Nfa(alphabet_size)
    ids: Dict[str, int] = {}
    symbol_sets: Dict[str, FrozenSet[int]] = {}
    starts: List[str] = []
    all_input = False
    reporting: List[str] = []
    elements = [
        el for el in network
        if _strip_namespace(el.tag) == "state-transition-element"
    ]
    if not elements:
        raise ValueError("no state-transition-element found")
    for el in elements:
        ste_id = el.get("id")
        if ste_id is None:
            raise ValueError("state-transition-element without id")
        ids[ste_id] = nfa.add_state()
        symbol_sets[ste_id] = parse_symbol_set(el.get("symbol-set", "*"))
        start_attr = el.get("start-of-data")
        if start_attr in ("start-of-data", "all-input", "1", "true"):
            starts.append(ste_id)
            if start_attr == "all-input":
                all_input = True

    clipped = {
        ste: sorted(s for s in symbols if s < alphabet_size)
        for ste, symbols in symbol_sets.items()
    }

    entry = nfa.add_state()
    nfa.set_start(entry)
    if all_input:
        nfa.add_symbols_transition(entry, range(alphabet_size), entry)
    if not starts:
        raise ValueError("ANML network has no start element")
    for ste_id in starts:
        nfa.add_symbols_transition(entry, clipped[ste_id], ids[ste_id])

    for el in elements:
        src = ids[el.get("id")]
        for child in el:
            tag = _strip_namespace(child.tag)
            if tag == "activate-on-match":
                target = child.get("element")
                if target not in ids:
                    raise ValueError(f"activation target {target!r} unknown")
                nfa.add_symbols_transition(src, clipped[target], ids[target])
            elif tag == "report-on-match":
                reporting.append(el.get("id"))
    for ste_id in reporting:
        nfa.add_accepting(ids[ste_id])
    if not reporting:
        raise ValueError("ANML network has no report-on-match element")
    return nfa


def load_anml(path: Union[str, Path], alphabet_size: int = 256) -> Nfa:
    """Read an ANML file into an NFA."""
    return anml_to_nfa(Path(path).read_text(), alphabet_size)


def load_anml_dfa(
    path_or_text: Union[str, Path],
    alphabet_size: int = 256,
    minimize: bool = True,
    max_states: int = 200_000,
) -> Dfa:
    """Read ANML (path or raw text) and compile to a (minimal) DFA."""
    text = (
        path_or_text
        if isinstance(path_or_text, str) and path_or_text.lstrip().startswith("<")
        else Path(path_or_text).read_text()
    )
    nfa = anml_to_nfa(text, alphabet_size)
    dfa = determinize(nfa, max_states=max_states)
    return minimize_dfa(dfa) if minimize else dfa
