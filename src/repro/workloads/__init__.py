"""The 13-benchmark suite (Regex + ANMLZoo substitutes).

The paper evaluates on the Regex suite (Becchi) and ANMLZoo.  Neither
ruleset collection ships with this reproduction (and at paper scale the
DFAs reach millions of states), so :mod:`rulesets` generates synthetic
rulesets that mimic each family's structural signature at a Python-tractable
scale, :mod:`traces` generates Becchi-style inputs (probability ``p_m`` of
advancing the automaton), :mod:`splitting` cuts delimiter-structured inputs
into independent strings, and :mod:`suite` binds everything into the
Table-I registry the experiment harness iterates over.
"""

from repro.workloads.rulesets import FAMILY_GENERATORS, generate_ruleset
from repro.workloads.literal import literal_patterns, literal_payload
from repro.workloads.traces import becchi_trace, random_trace, deepening_symbols
from repro.workloads.splitting import split_by_delimiter
from repro.workloads.anml import load_anml, load_anml_dfa
from repro.workloads.suite import (
    BenchmarkSpec,
    BenchmarkInstance,
    SUITE,
    benchmark_names,
    get_benchmark,
    load_benchmark,
)

__all__ = [
    "FAMILY_GENERATORS",
    "generate_ruleset",
    "literal_patterns",
    "literal_payload",
    "becchi_trace",
    "random_trace",
    "deepening_symbols",
    "split_by_delimiter",
    "load_anml",
    "load_anml_dfa",
    "BenchmarkSpec",
    "BenchmarkInstance",
    "SUITE",
    "benchmark_names",
    "get_benchmark",
    "load_benchmark",
]
