"""Synthetic ruleset generators for the 13 benchmark families.

Each generator emits a list of regex pattern strings whose *structure*
mimics the corresponding suite (Section V-A of the paper):

==============  ======================================================
ExactMatch      plain literal strings (the simplest rule shape)
Ranges05/1      literals carrying ~0.5 / ~1 character ranges each
Dotstar03/06/09 literal pairs joined by ``.*`` with rising probability
TCP             header filters: anchored prefix + ranges + payload
PowerEN         long mixed patterns with counted repeats (hard case)
Dotstar         ANMLZoo's larger 5/10/20% ``.*`` mixture
Protomata       PROSITE-style motifs over the 20 amino-acid letters
Snort           NIDS rules: keywords, classes, ``.*`` joins, digits
ClamAV          long (hex-ish) virus signatures with small gaps
Brill           word-pair rewrite rules over sentence text
==============  ======================================================

Generators are deterministic given a seed; the suite registry fixes seeds
so the whole evaluation is reproducible.
"""

from __future__ import annotations

import string
from typing import Callable, Dict, List

import numpy as np

from repro.workloads.literal import literal_heavy

__all__ = ["FAMILY_GENERATORS", "generate_ruleset"]

_LOWER = string.ascii_lowercase
_AMINO = "ACDEFGHIKLMNPQRSTVWY"
_WORDS = (
    "time year people way day man thing woman life child world school "
    "state family student group country problem hand part place case week "
    "company system program question work government number night point "
    "home water room mother area money story fact month lot right study "
    "book eye job word business issue side kind head house service friend"
).split()


def _literal(rng: np.random.Generator, low: int, high: int, alphabet: str = _LOWER) -> str:
    length = int(rng.integers(low, high + 1))
    return "".join(alphabet[int(i)] for i in rng.integers(0, len(alphabet), length))


def _range_class(rng: np.random.Generator) -> str:
    """A random contiguous lowercase range like ``[c-j]``."""
    a = int(rng.integers(0, 20))
    b = a + int(rng.integers(2, 6))
    return f"[{_LOWER[a]}-{_LOWER[min(b, 25)]}]"


def exact_match(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """Plain literals, length 5-9 — trie DFAs that converge instantly."""
    return [_literal(rng, 5, 9) for _ in range(n_patterns)]


def _ranges(rng: np.random.Generator, n_patterns: int, ranges_per_pattern: float) -> List[str]:
    patterns = []
    for _ in range(n_patterns):
        chars = list(_literal(rng, 6, 10))
        n_ranges = int(rng.poisson(ranges_per_pattern))
        for _ in range(min(n_ranges, max(1, len(chars) - 1))):
            pos = int(rng.integers(1, len(chars)))
            chars[pos] = _range_class(rng)
        patterns.append("".join(chars))
    return patterns


def ranges05(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """~0.5 character ranges per pattern (Becchi's Range0.5)."""
    return _ranges(rng, n_patterns, 0.5)


def ranges1(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """~1 character range per pattern (Becchi's Range1)."""
    return _ranges(rng, n_patterns, 1.0)


#: Upper bound on ``.*`` rules per ruleset.  Each independent ``a.*b`` rule
#: adds an "armed" bit to the DFA state, so k such rules cost up to 2^k
#: states; real rulesets avoid the blow-up (the paper notes none occurs for
#: Regex/ANMLZoo) and this cap keeps the synthetic ones equally tame.
_MAX_DOTSTAR_RULES = 3


def _dotstar(rng: np.random.Generator, n_patterns: int, probability: float) -> List[str]:
    patterns = []
    dotstars = 0
    for _ in range(n_patterns):
        if rng.random() < probability and dotstars < _MAX_DOTSTAR_RULES:
            patterns.append(f"{_literal(rng, 3, 5)}.*{_literal(rng, 3, 5)}")
            dotstars += 1
        else:
            patterns.append(_literal(rng, 5, 9))
    return patterns


def dotstar03(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """``.*`` in ~30% of the rules."""
    return _dotstar(rng, n_patterns, 0.3)


def dotstar06(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """``.*`` in ~60% of the rules."""
    return _dotstar(rng, n_patterns, 0.6)


def dotstar09(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """``.*`` in ~90% of the rules."""
    return _dotstar(rng, n_patterns, 0.9)


def dotstar_anmlzoo(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """ANMLZoo Dotstar: a 5% / 10% / 20% ``.*``-probability mixture."""
    per = max(1, n_patterns // 3)
    out = _dotstar(rng, per, 0.05) + _dotstar(rng, per, 0.10)
    out += _dotstar(rng, n_patterns - 2 * per, 0.20)
    return out


def tcp(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """TCP header filters: short anchored prefix, ranges, then payload."""
    patterns = []
    for _ in range(n_patterns):
        prefix = _literal(rng, 2, 3)
        port = _range_class(rng)
        payload = _literal(rng, 4, 7)
        patterns.append(f"{prefix}{port}{{1,2}}{payload}")
    return patterns


def poweren(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """PowerEN-style: the suite's hard-convergence outlier.

    Two rule shapes conspire against enumeration, reproducing the paper's
    PowerEN behaviour (565 symbols for R to stabilize; the one benchmark
    where even CSE stays well below ideal speedup):

    - ``^(..)*lit`` — record-stride rules anchored to the string start.
      The DFA permanently tracks the input offset modulo the stride, so
      states in different residue classes can *never* converge: every
      engine, CSE included, keeps at least ``stride`` flows forever.
    - ``head[^x]*tail`` — arm-and-hold rules that stay armed until a rare
      kill symbol, keeping extra states feasible for ~alphabet-size
      symbols.
    """
    patterns = []
    for i in range(n_patterns):
        if i % 2 == 0:
            stride = 2 if rng.random() < 0.7 else 3
            lit = _literal(rng, 3, 4)
            patterns.append(f"^({'.' * stride})*{lit}")
        else:
            head = _literal(rng, 2, 3)
            kill = _LOWER[int(rng.integers(26))]
            tail = _literal(rng, 4, 6)
            patterns.append(f"{head}[^{kill}]*{tail}")
    return patterns


def protomata(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """PROSITE-style protein motifs: amino classes and ``x(n)`` gaps.

    A motif like ``C-x(2,4)-[LIVM]-G`` becomes ``C.{2,4}[LIVM]G``.  Many
    distinct motif anchors produce the diverse profiling partitions the
    paper observed (61 subsets when merging to 100%).
    """
    patterns = []
    for _ in range(n_patterns):
        parts = []
        n_elems = int(rng.integers(3, 6))
        for _ in range(n_elems):
            roll = rng.random()
            if roll < 0.4:
                parts.append(_AMINO[int(rng.integers(len(_AMINO)))])
            elif roll < 0.7:
                k = int(rng.integers(2, 5))
                members = rng.choice(list(_AMINO), size=k, replace=False)
                parts.append("[" + "".join(sorted(members)) + "]")
            else:
                a = int(rng.integers(1, 3))
                b = a + int(rng.integers(0, 3))
                parts.append(f"[{_AMINO[0]}-{_AMINO[-1]}]{{{a},{b}}}")
        patterns.append("".join(parts))
    return patterns


def snort(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """NIDS content rules: keywords, ``.*`` joins, digit runs, classes.

    Snort rulesets contain many independent keyword families, which is what
    fragments the DFA into the many connected components that hurt PAP's
    dynamic convergence (Section VI-C).
    """
    keywords = ["GET", "POST", "HEAD", "HTTP", "admin", "login", "passwd",
                "cmd", "exec", "shell", "root", "select", "union", "script"]
    patterns = []
    dotstars = 0
    for _ in range(n_patterns):
        roll = rng.random()
        kw = keywords[int(rng.integers(len(keywords)))]
        if roll < 0.35 and dotstars < _MAX_DOTSTAR_RULES:
            dotstars += 1
            patterns.append(f"{kw}.*{_literal(rng, 3, 5)}")
        elif roll < 0.6:
            patterns.append(f"{kw}/{_literal(rng, 3, 6)}")
        elif roll < 0.8:
            patterns.append(f"{kw}\\d{{2,4}}")
        else:
            patterns.append(_literal(rng, 4, 8))
    return patterns


def clamav(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """Virus signatures: long near-literal strings with tiny gaps.

    Long chains give deep DFAs where short lookbacks cannot shrink the
    start set — the case where the paper shows LBE-10 losing to the
    sequential baseline.
    """
    hex_alphabet = "0123456789abcdef"
    patterns = []
    for i in range(n_patterns):
        sig = _literal(rng, 14, 22, hex_alphabet)
        if i % 2 == 0:
            # the ClamAV `{n}` wildcard: a long counted gap keeps counter
            # states feasible for tens of symbols, so a short lookback
            # cannot collapse the start set — the regime where the paper
            # shows LBE-10 losing to the sequential baseline
            cut = int(rng.integers(4, 8))
            gap = int(rng.integers(8, 15))
            sig = f"{sig[:cut]}.{{{gap}}}{sig[cut:]}"
        elif rng.random() < 0.5:
            cut = int(rng.integers(4, len(sig) - 4))
            gap = int(rng.integers(1, 3))
            sig = f"{sig[:cut]}.{{{gap}}}{sig[cut:]}"
        patterns.append(sig)
    return patterns


def brill(rng: np.random.Generator, n_patterns: int) -> List[str]:
    """Brill-tagger contextual rules: adjacent word pairs in sentences."""
    patterns = []
    for _ in range(n_patterns):
        w1 = _WORDS[int(rng.integers(len(_WORDS)))]
        w2 = _WORDS[int(rng.integers(len(_WORDS)))]
        if rng.random() < 0.3:
            patterns.append(f"{w1} \\w{{2,5}} {w2}")
        else:
            patterns.append(f"{w1} {w2}")
    return patterns


FAMILY_GENERATORS: Dict[str, Callable[[np.random.Generator, int], List[str]]] = {
    "Dotstar03": dotstar03,
    "Dotstar06": dotstar06,
    "Dotstar09": dotstar09,
    "Ranges05": ranges05,
    "Ranges1": ranges1,
    "ExactMatch": exact_match,
    "TCP": tcp,
    "PowerEN": poweren,
    "Dotstar": dotstar_anmlzoo,
    "Protomata": protomata,
    "Snort": snort,
    "Clamav": clamav,
    "Brill": brill,
}

FAMILY_GENERATORS["LiteralHeavy"] = literal_heavy


def generate_ruleset(family: str, n_patterns: int, seed: int) -> List[str]:
    """Generate ``n_patterns`` rules of the named family, deterministically."""
    if family not in FAMILY_GENERATORS:
        raise KeyError(
            f"unknown family {family!r}; known: {sorted(FAMILY_GENERATORS)}"
        )
    rng = np.random.default_rng(seed)
    return FAMILY_GENERATORS[family](rng, n_patterns)
