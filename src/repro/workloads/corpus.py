"""Structured corpora: inputs with the statistics of real data.

Becchi-style traces (:mod:`traces`) are automaton-guided; real deployments
see *domain-structured* data instead — English-like sentences for a
tagger, keyword-bearing packet payloads for a NIDS, amino-acid sequences
for protein scanners.  Structured inputs matter for the evaluation: they
exercise partial-match behaviour that uniform random profiling inputs do
not, which is exactly what makes convergence-set *prediction* non-trivial
(Figures 8 and 18 of the paper).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.automata.dfa import as_symbols
from repro.workloads.rulesets import _WORDS

__all__ = [
    "sentence_corpus",
    "packet_corpus",
    "protein_corpus",
    "mixed_corpus",
]


def sentence_corpus(
    rng: np.random.Generator,
    length: int,
    vocabulary: Optional[Sequence[str]] = None,
    words_per_sentence: int = 12,
    period: str = ".",
) -> np.ndarray:
    """English-like text: space-separated dictionary words in sentences.

    The vocabulary defaults to the same word list the Brill ruleset
    generator draws from, so rule words appear with realistic frequency —
    including *adjacent pairs* that partially match rules, the situation
    uniform random characters essentially never produce.
    """
    vocabulary = list(vocabulary or _WORDS)
    parts: List[str] = []
    count = 0
    word_budget = 0
    # overshoot slightly: joining drops the trailing separator, so the
    # assembled text can come out a few characters short of `count`
    while count < length + 64:
        word = vocabulary[int(rng.integers(len(vocabulary)))]
        parts.append(word)
        count += len(word) + 1
        word_budget += 1
        if word_budget >= words_per_sentence:
            parts.append(period)
            count += 2
            word_budget = 0
    text = " ".join(parts)[:length]
    return as_symbols(text.encode("latin-1"))


def packet_corpus(
    rng: np.random.Generator,
    length: int,
    keywords: Optional[Sequence[str]] = None,
    keyword_rate: float = 0.02,
    delimiter: int = 0,
    packet_len: int = 400,
) -> np.ndarray:
    """A NIDS-flavoured byte stream: packets of printable payload.

    Protocol keywords (the same ones the Snort ruleset generator uses) are
    injected at ``keyword_rate`` per position, so rules frequently *start*
    matching — arming enumeration state — without necessarily completing.
    Packets are separated by ``delimiter`` bytes.
    """
    keywords = list(
        keywords
        or ["GET", "POST", "HEAD", "HTTP", "admin", "login", "passwd",
            "cmd", "exec", "shell", "root", "select", "union", "script"]
    )
    out: List[int] = []
    position_in_packet = 0
    while len(out) < length:
        if position_in_packet >= packet_len:
            out.append(int(delimiter))
            position_in_packet = 0
            continue
        if rng.random() < keyword_rate:
            word = keywords[int(rng.integers(len(keywords)))]
            out.extend(ord(c) for c in word)
            position_in_packet += len(word)
        else:
            out.append(int(rng.integers(32, 127)))
            position_in_packet += 1
    return np.asarray(out[:length], dtype=np.int64)


def protein_corpus(
    rng: np.random.Generator,
    length: int,
    motif_fragments: Optional[Sequence[str]] = None,
    fragment_rate: float = 0.01,
) -> np.ndarray:
    """Amino-acid sequences with occasional conserved fragments."""
    amino = "ACDEFGHIKLMNPQRSTVWY"
    fragments = list(motif_fragments or ["CAAC", "NGS", "LKKKKKKL"])
    out: List[int] = []
    while len(out) < length:
        if rng.random() < fragment_rate:
            fragment = fragments[int(rng.integers(len(fragments)))]
            out.extend(ord(c) for c in fragment)
        else:
            out.append(ord(amino[int(rng.integers(len(amino)))]))
    return np.asarray(out[:length], dtype=np.int64)


def mixed_corpus(
    rng: np.random.Generator,
    length: int,
    pieces: Sequence[np.ndarray],
) -> np.ndarray:
    """Concatenate random picks from precomputed corpus pieces."""
    if not pieces:
        raise ValueError("need at least one corpus piece")
    out: List[np.ndarray] = []
    total = 0
    while total < length:
        piece = pieces[int(rng.integers(len(pieces)))]
        out.append(piece)
        total += piece.size
    return np.concatenate(out)[:length]
