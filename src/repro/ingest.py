"""Zero-copy input ingestion.

The scan stack historically materialised input as ``bytes`` at every layer
(file -> ``read_bytes`` -> ``np.frombuffer`` copy -> per-segment slices ->
shared-memory populate).  This module provides the single entry point that
removes those copies:

- :func:`open_input` maps a file with ``mmap`` and wraps it in an
  :class:`InputView` whose ``view8()`` is a ``uint8`` ndarray aliasing the
  page cache — no read, no copy.
- :class:`InputView` implements ``__array__`` so ``as_symbols`` (and any
  ``np.asarray`` call) sees the underlying buffer without this module being
  imported from the automata layer.
- ``coords()`` exposes ``(path, offset, length)`` so pool dispatch can ship
  mmap coordinates to workers instead of pickling the payload, mirroring
  the shared-memory name-passing pattern already used by ``segment_pool``.

The view is read-only end to end (``ACCESS_READ`` + non-writeable ndarray);
kernels only ever index it.
"""

from __future__ import annotations

import mmap
import os
from typing import IO, Any, Optional, Tuple, Union

import numpy as np

__all__ = ["InputView", "open_input", "from_bytes", "byte_view"]

BufferLike = Union[bytes, bytearray, memoryview, mmap.mmap]


class InputView:
    """A read-only window over input bytes, zero-copy where possible.

    Wraps either an ``mmap`` (file-backed, with ``path`` coordinates for
    worker re-attachment) or an in-memory buffer.  ``len(view)``, slicing,
    ``bytes(view)`` and ``np.asarray(view)`` all behave like the underlying
    byte string, so existing call sites accept it unchanged.
    """

    __slots__ = ("_buf", "_mmap", "_file", "_path", "_offset", "_length", "_arr")

    def __init__(
        self,
        buf: BufferLike,
        *,
        path: Optional[str] = None,
        offset: int = 0,
        length: Optional[int] = None,
        _mmap: Optional[mmap.mmap] = None,
        _file: Optional[IO[bytes]] = None,
    ) -> None:
        if length is None:
            length = len(buf) - offset
        if offset < 0 or length < 0 or offset + length > len(buf):
            raise ValueError(
                f"window [{offset}, {offset + length}) outside buffer of "
                f"{len(buf)} bytes"
            )
        self._buf = buf
        self._mmap = _mmap
        self._file = _file
        self._path = path
        self._offset = int(offset)
        self._length = int(length)
        self._arr: Optional[np.ndarray] = None

    # -- buffer protocol-ish surface -------------------------------------
    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __bytes__(self) -> bytes:
        return bytes(self.view8())

    def __getitem__(self, item: Any) -> Any:
        return self.view8()[item]

    def __array__(self, dtype: Any = None, copy: Optional[bool] = None
                  ) -> np.ndarray:
        arr = self.view8()
        if dtype is not None and np.dtype(dtype) != arr.dtype:
            return arr.astype(dtype)
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        src = self._path if self._path is not None else type(self._buf).__name__
        return f"InputView({src!r}, offset={self._offset}, length={self._length})"

    # -- zero-copy accessors ---------------------------------------------
    def view8(self) -> np.ndarray:
        """``uint8`` ndarray aliasing the underlying buffer (no copy)."""
        if self._arr is None:
            arr = np.frombuffer(
                self._buf, dtype=np.uint8, count=self._length, offset=self._offset
            )
            arr.flags.writeable = False
            self._arr = arr
        return self._arr

    def symbols(self) -> np.ndarray:
        """``int64`` symbol array (one widening copy, only when asked for)."""
        return self.view8().astype(np.int64)

    def find(self, needle: bytes, start: int = 0, end: Optional[int] = None) -> int:
        """``bytes.find`` over the window."""
        view = self.view8()
        if end is None:
            end = view.size
        return _find(view, needle, start, end)

    def coords(self) -> Optional[Tuple[str, int, int]]:
        """``(path, offset, length)`` for mmap re-attachment, or ``None``."""
        if self._path is None:
            return None
        return (self._path, self._offset, self._length)

    @property
    def path(self) -> Optional[str]:
        return self._path

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def nbytes(self) -> int:
        return self._length

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Release the mapping (no-op for in-memory views)."""
        self._arr = None
        self._buf = b""
        self._length = 0
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # a live ndarray still aliases the pages; dropping our
                # reference lets the mapping unwind when the last view
                # is garbage-collected
                pass
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "InputView":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _find(view: np.ndarray, needle: bytes, start: int, end: int) -> int:
    """Substring search over a uint8 ndarray window.

    Single-byte needles use the vectorised compare (memchr-speed, zero
    copy); longer needles go through one ``bytes()`` of the window, which
    the scan kernels avoid by using the anchor-LUT sweep instead.
    """
    if len(needle) == 1:
        hits = np.flatnonzero(view[start:end] == needle[0])
        return int(hits[0]) + start if hits.size else -1
    idx = bytes(memoryview(view)[start:end]).find(needle)
    return idx if idx < 0 else idx + start


def open_input(path: Union[str, "os.PathLike[str]"]) -> InputView:
    """Map ``path`` read-only and return a zero-copy :class:`InputView`.

    Empty files cannot be mmapped; they degrade to an empty in-memory view
    with the same coordinates so callers never special-case them.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size == 0:
        return InputView(b"", path=str(path), offset=0, length=0)
    f = open(path, "rb")
    try:
        mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    except (ValueError, OSError):
        # degrade to an in-memory copy; the handle must not outlive the
        # attempt even when the read itself fails
        try:
            data = f.read()
        finally:
            f.close()
        return InputView(data, path=str(path), offset=0, length=len(data))
    except BaseException:
        f.close()
        raise
    return InputView(
        mapped, path=str(path), offset=0, length=size, _mmap=mapped, _file=f
    )


def from_bytes(data: Union[bytes, bytearray, memoryview]) -> InputView:
    """Wrap an in-memory buffer (no copy) in an :class:`InputView`."""
    return InputView(data)


def byte_view(symbols: object) -> Optional[np.ndarray]:
    """Best-effort zero-copy ``uint8`` view of ``symbols``.

    Returns ``None`` when the input is not byte-like (e.g. an ``int64``
    symbol array from a non-byte alphabet), in which case callers fall back
    to ``as_symbols``.
    """
    if isinstance(symbols, InputView):
        return symbols.view8()
    if isinstance(symbols, (bytes, bytearray, memoryview, mmap.mmap)):
        return np.frombuffer(symbols, dtype=np.uint8)
    if isinstance(symbols, np.ndarray) and symbols.dtype == np.uint8 and symbols.ndim == 1:
        return symbols
    return None
