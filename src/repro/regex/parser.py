"""Recursive-descent regex parser.

Grammar (standard POSIX-ish subset, Python-compatible on the constructs it
accepts)::

    pattern    := alternation
    alternation:= concat ('|' concat)*
    concat     := repeat*
    repeat     := atom ('*' | '+' | '?' | '{' bounds '}')*
    atom       := '(' alternation ')' | '[' class ']' | '.' | escape | char

Anchors ``^`` (only at the very start) and ``$`` (only at the very end) are
recorded on the returned :class:`ParsedPattern`; the compiler uses them to
decide between search and anchored match semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.regex import charclass as cc
from repro.regex.ast import Alternate, CharClass, Concat, Empty, Node, Repeat

__all__ = ["parse", "ParsedPattern", "RegexSyntaxError"]

_SPECIAL = set("\\^$.[]()*+?{}|")

_ESCAPE_CLASSES = {
    "d": cc.DIGITS,
    "D": cc.negate(cc.DIGITS),
    "w": cc.WORD,
    "W": cc.negate(cc.WORD),
    "s": cc.SPACE,
    "S": cc.negate(cc.SPACE),
}

_ESCAPE_CHARS = {
    "n": ord("\n"),
    "t": ord("\t"),
    "r": ord("\r"),
    "f": ord("\f"),
    "v": ord("\v"),
    "a": 0x07,
    "0": 0x00,
}


class RegexSyntaxError(ValueError):
    """Raised when a pattern cannot be parsed."""


@dataclass(frozen=True)
class ParsedPattern:
    """Parse result: the AST plus anchoring flags."""

    node: Node
    anchored_start: bool
    anchored_end: bool
    source: str


class _Parser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    # -- low-level cursor ------------------------------------------------
    def peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def advance(self) -> str:
        ch = self.pattern[self.pos]
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise RegexSyntaxError(
                f"expected {ch!r} at position {self.pos} in {self.pattern!r}"
            )
        self.advance()

    def error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(f"{message} at position {self.pos} in {self.pattern!r}")

    # -- grammar ---------------------------------------------------------
    def parse_alternation(self) -> Node:
        options = [self.parse_concat()]
        while self.peek() == "|":
            self.advance()
            options.append(self.parse_concat())
        if len(options) == 1:
            return options[0]
        return Alternate(tuple(options))

    def parse_concat(self) -> Node:
        parts = []
        while True:
            ch = self.peek()
            if ch is None or ch in "|)":
                break
            parts.append(self.parse_repeat())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def parse_repeat(self) -> Node:
        node = self.parse_atom()
        while True:
            ch = self.peek()
            if ch == "*":
                self.advance()
                node = Repeat(node, 0, None)
            elif ch == "+":
                self.advance()
                node = Repeat(node, 1, None)
            elif ch == "?":
                self.advance()
                node = Repeat(node, 0, 1)
            elif ch == "{":
                node = self.parse_bounds(node)
            else:
                return node

    def parse_bounds(self, node: Node) -> Node:
        self.expect("{")
        low = self.parse_int()
        high: Optional[int]
        if self.peek() == ",":
            self.advance()
            if self.peek() == "}":
                high = None
            else:
                high = self.parse_int()
        else:
            high = low
        self.expect("}")
        if high is not None and high < low:
            raise self.error(f"bad repeat bounds {{{low},{high}}}")
        return Repeat(node, low, high)

    def parse_int(self) -> int:
        digits = ""
        while (ch := self.peek()) is not None and ch.isdigit():
            digits += self.advance()
        if not digits:
            raise self.error("expected a number")
        return int(digits)

    def parse_atom(self) -> Node:
        ch = self.peek()
        if ch is None:
            raise self.error("unexpected end of pattern")
        if ch == "(":
            self.advance()
            # tolerate non-capturing group syntax
            if self.pattern.startswith("?:", self.pos):
                self.pos += 2
            node = self.parse_alternation()
            self.expect(")")
            return node
        if ch == "[":
            return CharClass(self.parse_class())
        if ch == ".":
            self.advance()
            return CharClass(cc.DOT)
        if ch == "\\":
            return self.parse_escape()
        if ch in "*+?{":
            raise self.error(f"nothing to repeat with {ch!r}")
        if ch in ")]^$":
            raise self.error(f"unexpected {ch!r}")
        self.advance()
        return CharClass(frozenset([ord(ch)]))

    def parse_escape(self) -> Node:
        self.expect("\\")
        ch = self.peek()
        if ch is None:
            raise self.error("dangling backslash")
        self.advance()
        if ch in _ESCAPE_CLASSES:
            return CharClass(_ESCAPE_CLASSES[ch])
        if ch in _ESCAPE_CHARS:
            return CharClass(frozenset([_ESCAPE_CHARS[ch]]))
        if ch == "x":
            return CharClass(frozenset([self.parse_hex_byte()]))
        # escaped metacharacter or plain char: literal
        return CharClass(frozenset([ord(ch)]))

    def parse_hex_byte(self) -> int:
        if self.pos + 2 > len(self.pattern):
            raise self.error("truncated \\x escape")
        hex_str = self.pattern[self.pos : self.pos + 2]
        try:
            value = int(hex_str, 16)
        except ValueError:
            raise self.error(f"bad \\x escape {hex_str!r}") from None
        self.pos += 2
        return value

    def parse_class(self) -> frozenset:
        """Parse a ``[...]`` character class body (cursor on '[')."""
        self.expect("[")
        negated = False
        if self.peek() == "^":
            negated = True
            self.advance()
        members = set()
        first = True
        while True:
            ch = self.peek()
            if ch is None:
                raise self.error("unterminated character class")
            if ch == "]" and not first:
                self.advance()
                break
            first = False
            low = self.parse_class_item(members)
            if low is not None and self.peek() == "-":
                # possible range; ']' after '-' means literal '-'
                save = self.pos
                self.advance()
                if self.peek() == "]":
                    self.pos = save
                    continue
                high = self.parse_class_item(None)
                if high is None:
                    raise self.error("bad range endpoint (class escape)")
                if high < low:
                    raise self.error(f"reversed range {low}-{high}")
                members.update(range(low, high + 1))
        if not members:
            raise self.error("empty character class")
        symbols = frozenset(members)
        return cc.negate(symbols) if negated else symbols

    def parse_class_item(self, members) -> Optional[int]:
        """One class member; adds to ``members`` and returns the byte value.

        Returns ``None`` for multi-char escapes like ``\\d`` (which cannot be
        a range endpoint).
        """
        ch = self.advance()
        if ch == "\\":
            esc = self.peek()
            if esc is None:
                raise self.error("dangling backslash in class")
            self.advance()
            if esc in _ESCAPE_CLASSES:
                if members is None:
                    raise self.error("class escape cannot bound a range")
                members.update(_ESCAPE_CLASSES[esc])
                return None
            if esc in _ESCAPE_CHARS:
                value = _ESCAPE_CHARS[esc]
            elif esc == "x":
                value = self.parse_hex_byte()
            else:
                value = ord(esc)
        else:
            value = ord(ch)
        if members is not None:
            members.add(value)
        return value


def parse(pattern: str) -> ParsedPattern:
    """Parse ``pattern`` into an AST plus anchor flags."""
    anchored_start = pattern.startswith("^")
    body = pattern[1:] if anchored_start else pattern
    anchored_end = body.endswith("$") and not body.endswith("\\$")
    if anchored_end:
        body = body[:-1]
    parser = _Parser(body)
    node = parser.parse_alternation()
    if parser.pos != len(body):
        raise parser.error("trailing characters")
    return ParsedPattern(node, anchored_start, anchored_end, pattern)
