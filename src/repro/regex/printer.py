"""Regex AST pretty-printer: the inverse of the parser.

Emits a pattern string that reparses to an equivalent AST.  Used by the
differential fuzzer (random AST → pattern → {our compiler, Python `re`} →
compare) and handy for debugging generated rulesets.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.regex import charclass as cc
from repro.regex.ast import Alternate, CharClass, Concat, Empty, Node, Repeat

__all__ = ["to_pattern"]

_METACHARS = set("\\^$.[]()*+?{}|")

_NAMED = [
    (cc.DIGITS, r"\d"),
    (cc.negate(cc.DIGITS), r"\D"),
    (cc.WORD, r"\w"),
    (cc.negate(cc.WORD), r"\W"),
    (cc.SPACE, r"\s"),
    (cc.negate(cc.SPACE), r"\S"),
    (cc.DOT, "."),
]


def _escape_char(value: int, in_class: bool = False) -> str:
    ch = chr(value)
    if in_class:
        if ch in "\\]^-":
            return "\\" + ch
    elif ch in _METACHARS:
        return "\\" + ch
    if 0x20 <= value < 0x7F:
        return ch
    return f"\\x{value:02x}"


def _class_body(symbols: FrozenSet[int]) -> str:
    """Members of a bracket expression, with ranges compressed."""
    values = sorted(symbols)
    parts = []
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and values[j + 1] == values[j] + 1:
            j += 1
        if j - i >= 2:
            parts.append(
                f"{_escape_char(values[i], True)}-{_escape_char(values[j], True)}"
            )
        else:
            parts.extend(_escape_char(v, True) for v in values[i:j + 1])
        i = j + 1
    return "".join(parts)


def _print_class(symbols: FrozenSet[int]) -> str:
    for named, text in _NAMED:
        if symbols == named:
            return text
    if len(symbols) == 1:
        return _escape_char(next(iter(symbols)))
    complement = cc.negate(symbols)
    if len(complement) < len(symbols) and complement:
        return f"[^{_class_body(complement)}]"
    return f"[{_class_body(symbols)}]"


def _needs_group_for_repeat(node: Node) -> bool:
    return not isinstance(node, (CharClass, Empty))


def _needs_group_in_concat(node: Node) -> bool:
    return isinstance(node, Alternate)


def to_pattern(node: Node) -> str:
    """Emit a pattern string that parses back to an equivalent AST."""
    if isinstance(node, Empty):
        return ""
    if isinstance(node, CharClass):
        return _print_class(node.symbols)
    if isinstance(node, Concat):
        parts = []
        for part in node.parts:
            text = to_pattern(part)
            if _needs_group_in_concat(part):
                text = f"(?:{text})"
            parts.append(text)
        return "".join(parts)
    if isinstance(node, Alternate):
        return "|".join(to_pattern(option) for option in node.options)
    if isinstance(node, Repeat):
        inner = to_pattern(node.node)
        if _needs_group_for_repeat(node.node) or inner == "":
            inner = f"(?:{inner})"
        low, high = node.low, node.high
        if (low, high) == (0, None):
            return inner + "*"
        if (low, high) == (1, None):
            return inner + "+"
        if (low, high) == (0, 1):
            return inner + "?"
        if high is None:
            return f"{inner}{{{low},}}"
        if low == high:
            return f"{inner}{{{low}}}"
        return f"{inner}{{{low},{high}}}"
    raise TypeError(f"unknown AST node {node!r}")
