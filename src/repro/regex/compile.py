"""Thompson NFA construction and the regex -> DFA pipeline.

Two entry points matter to the rest of the library:

- :func:`compile_pattern` — one pattern to a DFA, with ``fullmatch`` or
  ``search`` semantics (the latter prefixes an implicit ``.*`` exactly as a
  streaming pattern matcher sees the world).
- :func:`compile_ruleset` — many patterns to a single multi-pattern scan
  DFA, the shape every benchmark FSM in the paper has.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.automata.dfa import Dfa
from repro.automata.minimize import minimize as minimize_dfa
from repro.automata.nfa import EPSILON, Nfa
from repro.automata.subset import determinize
from repro.regex.ast import Alternate, CharClass, Concat, Empty, Node, Repeat
from repro.regex.parser import ParsedPattern, parse

__all__ = ["pattern_to_nfa", "compile_pattern", "compile_ruleset"]


def _clip_class(symbols: frozenset, alphabet_size: int) -> List[int]:
    """Restrict a byte class to the machine alphabet."""
    clipped = sorted(s for s in symbols if 0 <= s < alphabet_size)
    if not clipped:
        raise ValueError(
            f"character class {sorted(symbols)[:4]}... has no symbol below "
            f"alphabet_size={alphabet_size}"
        )
    return clipped


class _Builder:
    """Emits Thompson fragments into a shared :class:`Nfa`."""

    def __init__(self, nfa: Nfa):
        self.nfa = nfa

    def build(self, node: Node) -> Tuple[int, int]:
        """Return ``(entry, exit)`` states of a fresh fragment for ``node``."""
        if isinstance(node, Empty):
            s = self.nfa.add_state()
            t = self.nfa.add_state()
            self.nfa.add_transition(s, EPSILON, t)
            return s, t
        if isinstance(node, CharClass):
            s = self.nfa.add_state()
            t = self.nfa.add_state()
            self.nfa.add_symbols_transition(
                s, _clip_class(node.symbols, self.nfa.alphabet_size), t
            )
            return s, t
        if isinstance(node, Concat):
            entry, exit_ = self.build(node.parts[0])
            for part in node.parts[1:]:
                nxt_entry, nxt_exit = self.build(part)
                self.nfa.add_transition(exit_, EPSILON, nxt_entry)
                exit_ = nxt_exit
            return entry, exit_
        if isinstance(node, Alternate):
            s = self.nfa.add_state()
            t = self.nfa.add_state()
            for option in node.options:
                o_entry, o_exit = self.build(option)
                self.nfa.add_transition(s, EPSILON, o_entry)
                self.nfa.add_transition(o_exit, EPSILON, t)
            return s, t
        if isinstance(node, Repeat):
            return self._build_repeat(node)
        raise TypeError(f"unknown AST node {node!r}")

    def _build_star(self, node: Node) -> Tuple[int, int]:
        s = self.nfa.add_state()
        t = self.nfa.add_state()
        entry, exit_ = self.build(node)
        self.nfa.add_transition(s, EPSILON, entry)
        self.nfa.add_transition(s, EPSILON, t)
        self.nfa.add_transition(exit_, EPSILON, entry)
        self.nfa.add_transition(exit_, EPSILON, t)
        return s, t

    def _build_repeat(self, node: Repeat) -> Tuple[int, int]:
        """Expand bounded repetition by fragment duplication.

        ``{m,}`` is m copies followed by a star; ``{m,n}`` is m mandatory
        copies then ``n - m`` skippable copies.
        """
        pieces: List[Tuple[int, int]] = []
        for _ in range(node.low):
            pieces.append(self.build(node.node))
        if node.high is None:
            pieces.append(self._build_star(node.node))
        else:
            for _ in range(node.high - node.low):
                entry, exit_ = self.build(node.node)
                skip_entry = self.nfa.add_state()
                skip_exit = self.nfa.add_state()
                self.nfa.add_transition(skip_entry, EPSILON, entry)
                self.nfa.add_transition(skip_entry, EPSILON, skip_exit)
                self.nfa.add_transition(exit_, EPSILON, skip_exit)
                pieces.append((skip_entry, skip_exit))
        if not pieces:  # {0} or {0,0}: empty match
            s = self.nfa.add_state()
            t = self.nfa.add_state()
            self.nfa.add_transition(s, EPSILON, t)
            return s, t
        entry, exit_ = pieces[0]
        for nxt_entry, nxt_exit in pieces[1:]:
            self.nfa.add_transition(exit_, EPSILON, nxt_entry)
            exit_ = nxt_exit
        return entry, exit_


def pattern_to_nfa(
    pattern,
    alphabet_size: int = 256,
    mode: str = "search",
) -> Nfa:
    """Compile one pattern to a Thompson NFA.

    Parameters
    ----------
    pattern:
        Pattern string or an already-parsed :class:`ParsedPattern`.
    alphabet_size:
        Machine alphabet; classes are clipped to it.
    mode:
        ``"search"`` prepends an implicit unanchored prefix (unless the
        pattern starts with ``^``), matching scan semantics where the
        accepting state fires at the offset a match *ends*.  ``"fullmatch"``
        accepts exactly the pattern language.
    """
    parsed = pattern if isinstance(pattern, ParsedPattern) else parse(pattern)
    if mode not in ("search", "fullmatch"):
        raise ValueError(f"unknown mode {mode!r}")
    nfa = Nfa(alphabet_size)
    builder = _Builder(nfa)
    entry, exit_ = builder.build(parsed.node)
    if mode == "search" and not parsed.anchored_start:
        # implicit (any symbol)* prefix: a self-looping pre-state
        pre = nfa.add_state()
        nfa.add_symbols_transition(pre, range(alphabet_size), pre)
        nfa.add_transition(pre, EPSILON, entry)
        nfa.set_start(pre)
    else:
        nfa.set_start(entry)
    nfa.add_accepting(exit_)
    return nfa


def compile_pattern(
    pattern,
    alphabet_size: int = 256,
    mode: str = "search",
    minimize: bool = True,
    max_states: Optional[int] = 200_000,
) -> Dfa:
    """Compile one pattern string to a (minimal) DFA."""
    nfa = pattern_to_nfa(pattern, alphabet_size, mode)
    dfa = determinize(nfa, max_states=max_states)
    return minimize_dfa(dfa) if minimize else dfa


def compile_ruleset(
    patterns: Iterable,
    alphabet_size: int = 256,
    minimize: bool = True,
    max_states: Optional[int] = 200_000,
) -> Dfa:
    """Compile a multi-pattern ruleset into one scan DFA.

    This is the FSM shape the paper's benchmarks have: the DFA reports (is
    accepting) at every input offset where any rule's match ends, and keeps
    scanning — accepting states are not absorbing.
    """
    nfas = [pattern_to_nfa(p, alphabet_size, mode="search") for p in patterns]
    if not nfas:
        raise ValueError("empty ruleset")
    combined = Nfa.union(nfas) if len(nfas) > 1 else nfas[0]
    dfa = determinize(combined, max_states=max_states)
    return minimize_dfa(dfa) if minimize else dfa
