"""Regex abstract syntax tree.

Nodes are small frozen dataclasses; the parser builds them, the compiler
walks them.  Character classes are represented as frozensets of byte values
(0..255) so class algebra is plain set algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["Node", "Empty", "CharClass", "Concat", "Alternate", "Repeat"]


class Node:
    """Base class for regex AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Empty(Node):
    """Matches the empty string."""

    __slots__ = ()


@dataclass(frozen=True)
class CharClass(Node):
    """Matches exactly one symbol from ``symbols`` (byte values)."""

    symbols: frozenset

    def __post_init__(self):
        if not self.symbols:
            raise ValueError("empty character class matches nothing")

    def __repr__(self) -> str:
        if len(self.symbols) <= 4:
            inner = ",".join(str(s) for s in sorted(self.symbols))
        else:
            inner = f"{len(self.symbols)} syms"
        return f"CharClass({inner})"


@dataclass(frozen=True)
class Concat(Node):
    """Matches ``parts`` in sequence."""

    parts: Tuple[Node, ...]


@dataclass(frozen=True)
class Alternate(Node):
    """Matches any one of ``options``."""

    options: Tuple[Node, ...]


@dataclass(frozen=True)
class Repeat(Node):
    """Matches ``node`` repeated between ``low`` and ``high`` times.

    ``high is None`` means unbounded (``*`` is ``Repeat(n, 0, None)``,
    ``+`` is ``Repeat(n, 1, None)``, ``?`` is ``Repeat(n, 0, 1)``).
    """

    node: Node
    low: int
    high: Optional[int]

    def __post_init__(self):
        if self.low < 0:
            raise ValueError("repeat lower bound must be >= 0")
        if self.high is not None and self.high < self.low:
            raise ValueError("repeat upper bound below lower bound")
