"""Character-class algebra over the byte alphabet.

Classes are frozensets of byte values (0..255).  The named classes mirror
Python's ``re`` semantics restricted to ASCII, which is what the benchmark
rulesets (Snort, ClamAV, Becchi traces) assume.
"""

from __future__ import annotations

import string
from typing import FrozenSet

__all__ = [
    "ALL_BYTES",
    "DIGITS",
    "WORD",
    "SPACE",
    "PRINTABLE",
    "DOT",
    "negate",
    "byte_range",
    "from_chars",
]

ALL_BYTES: FrozenSet[int] = frozenset(range(256))

DIGITS: FrozenSet[int] = frozenset(ord(c) for c in string.digits)

WORD: FrozenSet[int] = frozenset(
    ord(c) for c in string.ascii_letters + string.digits + "_"
)

SPACE: FrozenSet[int] = frozenset(ord(c) for c in " \t\n\r\f\v")

#: Visible ASCII plus space — the "symbol range" many benchmarks restrict to.
PRINTABLE: FrozenSet[int] = frozenset(range(0x20, 0x7F))

#: ``.`` matches everything except newline (re.DOTALL off).
DOT: FrozenSet[int] = ALL_BYTES - frozenset([ord("\n")])


def negate(symbols: FrozenSet[int]) -> FrozenSet[int]:
    """Complement within the byte alphabet."""
    return ALL_BYTES - symbols


def byte_range(low: int, high: int) -> FrozenSet[int]:
    """Inclusive byte range ``low-high`` (as in ``[a-z]``)."""
    if not (0 <= low <= high <= 255):
        raise ValueError(f"invalid byte range {low}-{high}")
    return frozenset(range(low, high + 1))


def from_chars(chars: str) -> FrozenSet[int]:
    """Class containing exactly the characters of ``chars``."""
    return frozenset(ord(c) for c in chars)
