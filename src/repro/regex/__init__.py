"""A from-scratch regular-expression compiler (the paper's RE2 substitute).

Pipeline: pattern string -> AST (:mod:`parser`) -> Thompson NFA
(:mod:`compile`) -> DFA (subset construction) -> minimal DFA (Hopcroft).

Supported syntax: literals, escapes (``\\n \\t \\r \\xHH \\d \\D \\w \\W
\\s \\S``), character classes ``[a-z]`` / ``[^...]``, ``.``, grouping,
alternation ``|``, quantifiers ``* + ? {m} {m,} {m,n}``, anchors ``^ $``
(compile-level).  This covers every construct used by the 13 benchmark
ruleset generators.
"""

from repro.regex.parser import parse, RegexSyntaxError
from repro.regex.compile import (
    compile_pattern,
    compile_ruleset,
    pattern_to_nfa,
)

__all__ = [
    "parse",
    "RegexSyntaxError",
    "compile_pattern",
    "compile_ruleset",
    "pattern_to_nfa",
]
