"""repro — reproduction of "CSE: Parallel Finite State Machines with
Convergence Set Enumeration" (MICRO 2018).

Quick tour
----------

>>> from repro import compile_ruleset, CseEngine, SequentialEngine
>>> dfa = compile_ruleset(["cat", "dog", "fis?h"])
>>> engine = CseEngine(dfa, n_segments=8)
>>> result = engine.run(b"the cat chased a fish up the dogwood tree " * 50)
>>> result.final_state == SequentialEngine(dfa).run(
...     b"the cat chased a fish up the dogwood tree " * 50).final_state
True
>>> result.speedup > 1
True

Subpackages: :mod:`repro.automata` (DFA/NFA substrate), :mod:`repro.regex`
(pattern compiler), :mod:`repro.engines` (baseline + LBE + PAP),
:mod:`repro.core` (CSE itself), :mod:`repro.hardware` (AP cost model),
:mod:`repro.workloads` (the 13-benchmark suite), :mod:`repro.analysis`
(experiment harness regenerating every paper table and figure).
"""

from repro.automata import Dfa, Nfa, determinize, minimize
from repro.regex import compile_pattern, compile_ruleset, parse
from repro.hardware import APConfig
from repro.engines import (
    Engine,
    RunResult,
    SequentialEngine,
    EnumerativeEngine,
    LbeEngine,
    PapEngine,
)
from repro.core import (
    CseEngine,
    AdaptiveCseEngine,
    HybridCseEngine,
    SetFsm,
    StatePartition,
    ProfilingConfig,
    profile_partitions,
    maximum_frequency_partition,
    merge_to_cutoff,
    predict_convergence_sets,
    recover_reports,
)
from repro.stream import FleetScanner, StreamScanner
from repro import obs

__version__ = "1.0.0"

__all__ = [
    "Dfa",
    "Nfa",
    "determinize",
    "minimize",
    "compile_pattern",
    "compile_ruleset",
    "parse",
    "APConfig",
    "Engine",
    "RunResult",
    "SequentialEngine",
    "EnumerativeEngine",
    "LbeEngine",
    "PapEngine",
    "CseEngine",
    "AdaptiveCseEngine",
    "HybridCseEngine",
    "SetFsm",
    "StatePartition",
    "ProfilingConfig",
    "profile_partitions",
    "maximum_frequency_partition",
    "merge_to_cutoff",
    "predict_convergence_sets",
    "recover_reports",
    "StreamScanner",
    "FleetScanner",
    "obs",
    "__version__",
]
