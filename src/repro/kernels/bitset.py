"""Bitset set-flow kernel: uint64-packed active masks.

This is the software realization of the AP's one-hot step (Section III-A,
generalizing :mod:`repro.automata.onehot`): a not-yet-converged convergence
set is an N-bit active mask packed into ``ceil(N/64)`` uint64 words, and one
symbol step is an AND of the mask against the symbol's precomputed packed
*predecessor* matrix followed by a row-wise any — ``O(N/64)`` words of
traffic per target state, with zero ``unique``/``take`` allocation churn.

:class:`BitsetTables` holds the per-symbol predecessor matrices (built once
per DFA, reusable across segments and scans); :class:`BitsetSetFlows` steps
a whole batch of flows — every diverged convergence set of every segment —
with one vectorized operation per symbol position, and reports flows that
collapsed to a single state so the orchestrator can degrade them to the
lockstep scalar pool.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa

__all__ = ["BitsetTables", "BitsetSetFlows", "pack_bool", "unpack_words"]


def pack_bool(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., n)`` boolean array into ``(..., ceil(n/64))`` uint64.

    Bit ``b`` of word ``w`` corresponds to column ``w * 64 + b``
    (little-endian bit order, matching :func:`unpack_words`).
    """
    bits = np.asarray(bits, dtype=bool)
    n = bits.shape[-1]
    words = (n + 63) // 64
    pad = words * 64 - n
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=bool)], axis=-1
        )
    packed = np.packbits(bits, axis=-1, bitorder="little")
    return packed.view(np.uint64)


def unpack_words(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bool`: ``(..., W)`` uint64 -> ``(..., n)`` bool."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    bits = np.unpackbits(words.view(np.uint8), axis=-1, bitorder="little")
    return bits[..., :n].astype(bool)


class BitsetTables:
    """Per-symbol packed predecessor matrices for a DFA.

    ``pred[c]`` has shape ``(num_states, words)``: row ``t`` is the packed
    mask of states ``q`` with ``delta(q, c) == t``.  Stepping an active mask
    ``m`` is then ``next[t] = any(pred[c][t] & m)`` — the transpose of the
    AP's "OR the rows of active states" formulation, chosen because it
    vectorizes over targets *and* over a batch of flows at once.
    """

    def __init__(self, dfa: Dfa) -> None:
        n = dfa.num_states
        alphabet = dfa.alphabet_size
        self.num_states = n
        self.words = (n + 63) // 64
        pred = np.empty((alphabet, n, self.words), dtype=np.uint64)
        cols = np.arange(n, dtype=np.int64)
        onehot = np.empty((n, n), dtype=bool)
        for c in range(alphabet):
            onehot[:] = False
            onehot[dfa.transitions[c], cols] = True
            pred[c] = pack_bool(onehot)
        self.pred = pred

    @property
    def nbytes(self) -> int:
        return int(self.pred.nbytes)

    def mask_from_states(self, states: np.ndarray) -> np.ndarray:
        """Packed ``(words,)`` mask with the given state bits set."""
        bits = np.zeros(self.num_states, dtype=bool)
        idx = np.asarray(states, dtype=np.int64)
        if idx.size:
            bits[idx] = True
        return pack_bool(bits)

    def states_from_mask(self, mask: np.ndarray) -> np.ndarray:
        """Sorted int64 state ids of the set bits."""
        return np.flatnonzero(unpack_words(mask, self.num_states)).astype(np.int64)

    def step_masks(self, masks: np.ndarray, symbols: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance a batch of packed masks, each under its own symbol.

        Returns ``(next_masks, sizes)`` where ``sizes[f]`` is the popcount
        of flow ``f``'s next mask (used for the M = 1 degradation check).
        """
        hits = self.pred[symbols] & masks[:, None, :]  # (F, N, W)
        bits = hits.any(axis=2)                        # (F, N)
        return pack_bool(bits), bits.sum(axis=1)


class BitsetSetFlows:
    """Batched diverged-set stepping over packed masks.

    One flow per (segment, multi-member convergence set) pair.  The
    orchestrator calls :meth:`step` once per symbol position; flows whose
    mask popcount drops to 1 are removed and returned as
    ``(state, segment, block)`` triples so they can continue in the scalar
    lockstep pool.
    """

    def __init__(
        self,
        tables: BitsetTables,
        multi_blocks: List[np.ndarray],
        multi_ids: np.ndarray,
        n_segments: int,
    ) -> None:
        self.tables = tables
        n_multi = len(multi_blocks)
        if n_multi:
            bits = np.zeros((n_multi, tables.num_states), dtype=bool)
            for j, block in enumerate(multi_blocks):
                bits[j, block] = True
            base = pack_bool(bits)
            self.masks = np.tile(base, (n_segments, 1))
        else:
            self.masks = np.empty((0, tables.words), dtype=np.uint64)
        self.flow_seg = np.repeat(np.arange(n_segments, dtype=np.int64), n_multi)
        self.flow_block = np.tile(np.asarray(multi_ids, dtype=np.int64), n_segments)

    @property
    def n_flows(self) -> int:
        return int(self.flow_seg.size)

    def step(
        self, sym_col: np.ndarray, seg_active: Optional[np.ndarray] = None
    ) -> List[Tuple[int, int, int]]:
        """One symbol position for every (active) flow.

        ``sym_col[s]`` is segment ``s``'s symbol at this position;
        ``seg_active`` optionally restricts stepping to segments that still
        have symbols left (ragged tails).  Returns collapsed flows as
        ``(state, segment, block)`` triples and removes them.
        """
        if not self.n_flows:
            return []
        if seg_active is None:
            idx = None
            masks = self.masks
            segs = self.flow_seg
        else:
            idx = np.flatnonzero(seg_active[self.flow_seg])
            if not idx.size:
                return []
            masks = self.masks[idx]
            segs = self.flow_seg[idx]
        nxt, sizes = self.tables.step_masks(masks, sym_col[segs])
        if idx is None:
            self.masks = nxt
            hit = np.flatnonzero(sizes == 1)
        else:
            self.masks[idx] = nxt
            hit = idx[sizes == 1]
        if not hit.size:
            return []
        collapsed: List[Tuple[int, int, int]] = []
        for f in hit.tolist():
            state = int(self.tables.states_from_mask(self.masks[f])[0])
            collapsed.append((state, int(self.flow_seg[f]), int(self.flow_block[f])))
        keep = np.ones(self.n_flows, dtype=bool)
        keep[hit] = False
        self.masks = self.masks[keep]
        self.flow_seg = self.flow_seg[keep]
        self.flow_block = self.flow_block[keep]
        return collapsed

    def final_outcomes(self) -> List[Tuple[np.ndarray, int, int]]:
        """Remaining diverged flows as ``(states, segment, block)`` triples."""
        out: List[Tuple[np.ndarray, int, int]] = []
        for f in range(self.n_flows):
            states = self.tables.states_from_mask(self.masks[f])
            out.append((states, int(self.flow_seg[f]), int(self.flow_block[f])))
        return out
