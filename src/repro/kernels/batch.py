"""Batched segment execution: one interpreter loop for the whole scan.

:func:`run_segments_batch` is the software kernel entry point.  It stacks
all enumerative segments into an ``(n_segments, seg_len)`` symbol matrix
(:func:`repro.engines.base.stack_segments` — lengths from
``even_boundaries`` differ by at most one, and ragged tails are handled
with an active-segment mask) and walks symbol positions **once**, advancing

- every scalar flow of every segment with one fancy-indexed gather
  (:class:`repro.kernels.lockstep.ScalarPool`), and
- every diverged convergence set of every segment with one batched
  set-step, via either the flat-member lockstep pool or the packed-bitset
  pool depending on ``backend``.

The moment a set flow collapses to M = 1 it degrades into the scalar pool,
so the steady-state cost per position is a single gather regardless of how
many segments and convergence sets the scan has — this is where the
interpreter gets amortized across the batch instead of being paid per
segment.

Outcomes are bit-identical to :func:`repro.software.run_segment`'s
``backend="python"`` path: converged sets yield the same concrete state,
diverged sets the same sorted-unique int64 state array.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.automata.dfa import Dfa, as_symbols
from repro.core.partition import StatePartition
from repro.core.transition import CsOutcome, SegmentFunction
from repro.engines.base import stack_segments
from repro.kernels.bitset import BitsetSetFlows, BitsetTables
from repro.kernels.dense import DenseTables, run_segments_dense
from repro.kernels.lockstep import FlatSetFlows, ScalarPool
from repro.kernels.native import native_available, run_segments_native
from repro.kernels.prefilter import (
    PrefilterTables,
    certify_prefilter,
    run_segments_prefilter,
)

__all__ = [
    "BACKENDS",
    "DENSE_MAX_STATES",
    "KERNEL_BACKENDS",
    "resolve_backend",
    "run_segments_batch",
]

#: every executable backend of the software CSE path
BACKENDS = ("python", "lockstep", "bitset", "dense", "native", "prefilter")
#: the vectorized kernels (everything but the interpreted reference path)
KERNEL_BACKENDS = ("lockstep", "bitset", "dense", "native", "prefilter")
#: measured crossover: below this the dense frontier's one-gather step
#: beats sparse lockstep; above it the N-wide gather outgrows the cache
#: and the sparse member arrays win (benchmarks/bench_dense.py)
DENSE_MAX_STATES = 512
#: per-metric histogram ladder for batched kernel passes: 100us..25s —
#: a batch is never sub-100us at bench scale, so the generic
#: DEFAULT_BUCKETS would waste its bottom two decades here
BATCH_SECONDS_BUCKETS = tuple(
    round(m * 10.0 ** e, 12) for e in range(-4, 2) for m in (1.0, 2.5, 5.0)
)


def _record_decision(requested: str, chosen: str, reason: str) -> None:
    """One structured record per backend resolution.

    The counter keeps the running chosen-vs-requested tally (grouped by
    reason — ``repro top`` renders these rows) and the zero-duration span
    puts the individual decision on the trace timeline next to the scan
    it gated.
    """
    obs.counter("kernels_backend_resolved_total",
                requested=requested, backend=chosen, reason=reason).inc()
    if obs.is_enabled():
        obs.record_span("kernels.backend_resolve", time.time(), 0.0,
                        requested=requested, backend=chosen, reason=reason)


def resolve_backend(
    dfa: Dfa,
    backend: Optional[str] = None,
    partition: Optional[StatePartition] = None,
    n_segments: int = 16,
) -> str:
    """Shared default-resolution for the software kernel backend.

    Explicit names pass through (after validation); ``None``/``"auto"``
    picks from the DFA + partition profile — the single place the
    "partition-friendly profile" heuristic lives, shared by
    :func:`repro.software.software_cse_scan`, ``stream.StreamScanner`` and
    ``stream.FleetScanner``.

    The measured trade-off (``benchmarks/bench_kernels.py`` and
    ``benchmarks/bench_dense.py``): a *trivial* partition (one block, or
    none supplied) gives the kernels nothing to batch — every segment is
    one speculative frontier with no scalar flows to amortize — and the
    lockstep kernel measured **0.33x** against the interpreter on that
    profile (``random64/trivial``), so trivial partitions always resolve
    to the interpreted path.  With a real partition, batching pays as soon
    as there is enough work per symbol position — many scalar flows
    (``n_blocks * segments``) or wide convergence sets.  Among the
    kernels, the dense frontier's one-gather step wins up to
    :data:`DENSE_MAX_STATES` states; above that the ``n_segments x N``
    gather outgrows the cache and sparse lockstep takes over.  When the
    compiled native library loads (:mod:`repro.kernels.native`), the
    dense-profile pick upgrades to ``"native"`` — same tables, same
    outcomes, the per-position dispatch compiled away; without a
    toolchain the pick (and any explicit ``"native"`` request) degrades
    to ``"dense"``, recorded as ``native-unavailable``.
    ``"bitset"`` is never auto-picked: in this NumPy realization its
    O(N/64)-word step is dominated by the flat gather except for
    near-full sets on sub-64-state machines; it stays an explicit choice
    (and the differential-testing model of the AP's one-hot step).
    """
    if backend is not None and backend != "auto":
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; pick one of {BACKENDS + ('auto',)}"
            )
        if backend == "native" and not native_available():
            # the compiled tier is strictly optional: an explicit request
            # on a toolchain-less install degrades to the dense kernel
            # (bit-identical outcomes) instead of erroring
            _record_decision(backend, "dense", "native-unavailable")
            return "dense"
        _record_decision(backend, backend, "explicit")
        return backend
    # literal-certified machines skip the frontier between anchor hits
    # regardless of partition shape — the sweep needs nothing to batch
    if certify_prefilter(dfa) is not None:
        _record_decision("auto", "prefilter", "literal-certified")
        return "prefilter"
    if partition is None:
        n_blocks, max_block = 1, dfa.num_states
    else:
        sizes = [len(b) for b in partition.blocks]
        n_blocks, max_block = len(sizes), max(sizes)
    enum_segments = max(1, n_segments - 1)
    chosen, reason = "python", "small-workload"
    if n_blocks <= 1:
        reason = "trivial-partition"
    elif max_block > 8 or n_blocks * enum_segments >= 48:
        if dfa.num_states <= DENSE_MAX_STATES:
            # dense-profile machines take the compiled tier when the
            # library loads; same table, same outcomes, no numpy dispatch
            if native_available():
                chosen, reason = "native", "native-fit"
            else:
                chosen, reason = "dense", "dense-fit"
        else:
            chosen, reason = "lockstep", "dense-over-budget"
    _record_decision("auto", chosen, reason)
    return chosen


def run_segments_batch(
    dfa: Dfa,
    partition: StatePartition,
    segments: Sequence[np.ndarray],
    backend: str = "lockstep",
    tables: Optional[BitsetTables] = None,
    flat: Optional[np.ndarray] = None,
    dense: Optional[DenseTables] = None,
    stride: Optional[int] = None,
    prefilter: Optional[PrefilterTables] = None,
) -> List[SegmentFunction]:
    """Execute every enumerative segment's set-flows in one batched pass.

    Returns one :class:`SegmentFunction` per entry of ``segments``,
    bit-identical to running :func:`repro.software.run_segment` per
    segment.  ``tables`` optionally reuses precomputed
    :class:`BitsetTables`, ``flat`` an int64-raveled transition matrix and
    ``dense`` precomputed :class:`DenseTables` across calls (streaming, or
    a cached :class:`repro.compilecache.CompiledDfa` artifact; the native
    tier consumes the same dense tables — no separate artifact format).
    ``stride`` pins the dense kernel's collapse-check gap (tests; the
    default adapts).  ``prefilter`` reuses a precomputed certificate for
    ``backend="prefilter"``; when the DFA is not literal-certifiable the
    call degrades to the dense kernel (correctness never depends on the
    prefilter heuristic) and records the fallback.
    """
    if backend not in KERNEL_BACKENDS:
        raise ValueError(f"batched execution needs one of {KERNEL_BACKENDS}")
    pf_tables: Optional[PrefilterTables] = None
    if backend == "prefilter":
        pf_tables = prefilter if prefilter is not None else certify_prefilter(dfa)
        if pf_tables is None:
            obs.counter("kernels_prefilter_fallbacks_total").inc()
            backend = "native" if native_available() else "dense"
    if backend == "native" and not native_available():
        # explicit call on a toolchain-less install: outcomes must not
        # depend on the optional compiled tier
        obs.counter("kernels_native_fallbacks_total").inc()
        backend = "dense"
    if backend == "prefilter":
        # keep the incoming dtype: uint8 mmap views flow into the anchor
        # sweep zero-copy, no int64 widening of the skipped bytes
        segments = [
            s if isinstance(s, np.ndarray) else as_symbols(s) for s in segments
        ]
    else:
        segments = [as_symbols(s) for s in segments]
    n_seg = len(segments)
    if n_seg == 0:
        return []
    batch_wall = time.time()
    batch_begin = time.perf_counter()
    labels = partition.labels()
    if backend == "prefilter":
        assert pf_tables is not None
        grid, stats = run_segments_prefilter(
            dfa, partition, segments, pf_tables, dense=dense, stride=stride
        )
        if obs.is_enabled():
            batch_elapsed = time.perf_counter() - batch_begin
            obs.record_span("kernels.batch", batch_wall, batch_elapsed,
                            backend=backend, segments=n_seg)
            obs.histogram("kernels_batch_seconds",
                          buckets=BATCH_SECONDS_BUCKETS,
                          backend=backend).observe(batch_elapsed)
            obs.counter("kernels_batch_runs_total", backend=backend).inc()
            obs.counter("kernels_segments_total", backend=backend).inc(n_seg)
            obs.counter("kernels_positions_total",
                        backend=backend).inc(stats["positions"])
            obs.counter("kernels_collapses_total",
                        backend=backend).inc(stats["collapses"])
            obs.counter("kernels_prefilter_windows_total").inc(
                stats["windows"])
            obs.counter("kernels_prefilter_skipped_bytes_total").inc(
                stats["skipped_bytes"])
            obs.counter("kernels_prefilter_anchor_hits_total").inc(
                stats["anchor_hits"])
            obs.counter("kernels_prefilter_walked_positions_total").inc(
                stats["walked_positions"])
            obs.counter("kernels_prefilter_fallback_segments_total").inc(
                stats["fallback_segments"])
        return [SegmentFunction(list(outcomes), labels) for outcomes in grid]
    if backend == "native":
        grid, stats = run_segments_native(
            dfa, partition, segments, tables=dense, stride=stride
        )
        if obs.is_enabled():
            batch_elapsed = time.perf_counter() - batch_begin
            obs.record_span("kernels.batch", batch_wall, batch_elapsed,
                            backend=backend, segments=n_seg)
            obs.histogram("kernels_batch_seconds",
                          buckets=BATCH_SECONDS_BUCKETS,
                          backend=backend).observe(batch_elapsed)
            obs.counter("kernels_batch_runs_total", backend=backend).inc()
            obs.counter("kernels_segments_total", backend=backend).inc(n_seg)
            obs.counter("kernels_positions_total",
                        backend=backend).inc(stats["positions"])
            obs.counter("kernels_collapses_total",
                        backend=backend).inc(stats["collapses"])
            obs.counter("kernels_native_positions_total").inc(
                stats["native_positions"])
            obs.counter("kernels_native_stride_checks_total").inc(
                stats["stride_checks"])
            obs.counter("kernels_native_degraded_segments_total").inc(
                stats["degraded_segments"])
            obs.counter("kernels_native_scalar_positions_total").inc(
                stats["scalar_positions"])
        return [SegmentFunction(list(outcomes), labels) for outcomes in grid]
    if backend == "dense":
        grid, stats = run_segments_dense(
            dfa, partition, segments, tables=dense, stride=stride
        )
        if obs.is_enabled():
            batch_elapsed = time.perf_counter() - batch_begin
            obs.record_span("kernels.batch", batch_wall, batch_elapsed,
                            backend=backend, segments=n_seg)
            obs.histogram("kernels_batch_seconds",
                          buckets=BATCH_SECONDS_BUCKETS,
                          backend=backend).observe(batch_elapsed)
            obs.counter("kernels_batch_runs_total", backend=backend).inc()
            obs.counter("kernels_segments_total", backend=backend).inc(n_seg)
            obs.counter("kernels_positions_total",
                        backend=backend).inc(stats["positions"])
            obs.counter("kernels_collapses_total",
                        backend=backend).inc(stats["collapses"])
            obs.counter("kernels_dense_positions_total").inc(
                stats["dense_positions"])
            obs.counter("kernels_dense_stride_checks_total").inc(
                stats["stride_checks"])
            obs.counter("kernels_dense_degraded_segments_total").inc(
                stats["degraded_segments"])
        return [SegmentFunction(list(outcomes), labels) for outcomes in grid]
    n_collapsed = 0
    blocks = partition.block_arrays()
    n_states = dfa.num_states
    if flat is None:
        flat = dfa.transitions.astype(np.int64).ravel()
    matrix, lengths = stack_segments(segments)
    offsets = matrix * n_states

    single_ids = [i for i, b in enumerate(blocks) if b.size == 1]
    multi_ids = np.asarray(
        [i for i, b in enumerate(blocks) if b.size > 1], dtype=np.int64
    )
    multi_blocks = [blocks[i] for i in multi_ids.tolist()]

    pool = ScalarPool(flat)
    if single_ids:
        singles = np.asarray([int(blocks[i][0]) for i in single_ids], dtype=np.int64)
        pool.extend(
            np.tile(singles, n_seg),
            np.repeat(np.arange(n_seg, dtype=np.int64), len(single_ids)),
            np.tile(np.asarray(single_ids, dtype=np.int64), n_seg),
        )
    flows: Union[BitsetSetFlows, FlatSetFlows]
    if backend == "bitset":
        flows = BitsetSetFlows(
            tables or BitsetTables(dfa), multi_blocks, multi_ids, n_seg
        )
    else:
        flows = FlatSetFlows(flat, multi_blocks, multi_ids, n_seg)

    length_min = int(lengths.min()) if n_seg else 0
    length_max = int(lengths.max()) if n_seg else 0
    for t in range(length_min):
        col_off = offsets[:, t]
        pool.step(col_off)
        if backend == "bitset":
            collapsed = flows.step(matrix[:, t])
        else:
            collapsed = flows.step(col_off)
        n_collapsed += len(collapsed)
        pool.absorb(collapsed)
    for t in range(length_min, length_max):
        seg_active = lengths > t
        col_off = offsets[:, t]
        pool.step(col_off, seg_active)
        if backend == "bitset":
            collapsed = flows.step(matrix[:, t], seg_active)
        else:
            collapsed = flows.step(col_off, seg_active)
        n_collapsed += len(collapsed)
        pool.absorb(collapsed)

    grid: List[List[Optional[CsOutcome]]] = [
        [None] * len(blocks) for _ in range(n_seg)
    ]
    for state, seg, blk in zip(
        pool.states.tolist(), pool.seg.tolist(), pool.block.tolist()
    ):
        grid[seg][blk] = CsOutcome(
            True, int(state), np.asarray([state], dtype=np.int64)
        )
    for states, seg, blk in flows.final_outcomes():
        grid[seg][blk] = CsOutcome(False, None, states.astype(np.int64))
    assert all(o is not None for outcomes in grid for o in outcomes)
    if obs.is_enabled():
        batch_elapsed = time.perf_counter() - batch_begin
        obs.record_span("kernels.batch", batch_wall, batch_elapsed,
                        backend=backend, segments=n_seg)
        obs.histogram("kernels_batch_seconds",
                      buckets=BATCH_SECONDS_BUCKETS,
                      backend=backend).observe(batch_elapsed)
        obs.counter("kernels_batch_runs_total", backend=backend).inc()
        obs.counter("kernels_segments_total", backend=backend).inc(n_seg)
        obs.counter("kernels_positions_total", backend=backend).inc(length_max)
        obs.counter("kernels_collapses_total", backend=backend).inc(n_collapsed)
        if backend == "bitset":
            # a bitset collapse is exactly a bitset→lockstep degradation:
            # the flow leaves the packed pool for the scalar gather pool
            obs.counter("kernels_bitset_degradations_total").inc(n_collapsed)
    return [SegmentFunction(list(outcomes), labels) for outcomes in grid]
