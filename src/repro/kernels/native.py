"""Compiled native set-flow tier: the dense kernel as one C call.

The dense kernel already pays just one offset-add + flat gather per
symbol position, but each position is still a Python-level dispatch with
numpy's full-generality machinery behind it.  This module loads
``_native.c`` — a dependency-free C library (no ``Python.h``, no numpy
headers) — through :mod:`ctypes` and advances **every** segment's dense
enumeration frontier over its **whole** symbol buffer in a single native
call: fused offset-add + gather at the narrowed table dtype, in-loop
strided collapse checks (the same adaptive-K ladder as ``dense.py`` —
stride only moves *when* degradation is noticed, never the outcome), a C
scalar walk for fully-collapsed segments, and early exit per segment.

Availability is best-effort and never load-bearing:

- ``REPRO_NATIVE=0`` disables the tier outright (CI pins the fallback
  path with it);
- the library is found next to this module (wheel/sdist builds via
  ``setup.py``), then in a per-user cache keyed by the source digest,
  then lazily compiled with ``cc``/``gcc``/``clang`` if a toolchain is
  present — all failures are memoized into
  :func:`native_unavailable_reason` and every caller degrades to the
  dense kernel.

Outcomes are bit-identical to every other backend: the C core returns
raw final frontiers and this module reuses ``dense.py``'s epilogue
(per-CS ``np.unique``) verbatim.  ``repro check`` certifies the
compiled library reads the exact table bytes the Python tier built
(K114/K115); ``benchmarks/bench_native.py`` gates the speedup
(native >= 3x dense on the 64-state/1 MB/16-segment acceptance config).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import Dfa, as_symbols
from repro.core.partition import StatePartition
from repro.core.transition import CsOutcome
from repro.kernels.dense import DenseTables

__all__ = [
    "NATIVE_ABI",
    "NativeBuildError",
    "build_native",
    "load_native",
    "native_available",
    "native_build_info",
    "native_library_path",
    "native_table_view",
    "native_unavailable_reason",
    "reset_native",
    "run_segments_native",
]

#: expected ``cse_native_abi()`` of a loadable library
NATIVE_ABI = 1
#: set to ``0``/``off``/``false`` to disable the native tier entirely
ENV_DISABLE = "REPRO_NATIVE"
#: overrides the per-user build cache directory
ENV_CACHE_DIR = "REPRO_NATIVE_CACHE"
#: compilers probed (after ``$CC``) for the lazy on-demand build
COMPILERS = ("cc", "gcc", "clang")

_SOURCE = Path(__file__).with_name("_native.c")
#: table dtype -> C kind tag (must match KIND_* in _native.c)
_TABLE_KINDS: Dict[str, int] = {"uint8": 0, "uint16": 1, "int64": 2}
#: stats_out slot layout (must match STAT_* in _native.c)
_STAT_SLOTS = 4
_STAT_NATIVE_POSITIONS = 0
_STAT_STRIDE_CHECKS = 1
_STAT_DEGRADED = 2
_STAT_SCALAR_POSITIONS = 3


class NativeBuildError(RuntimeError):
    """The optional native library could not be compiled."""


# memoized load outcome: (library or None, unavailability reason, path)
_state: Optional[
    Tuple[Optional[ctypes.CDLL], Optional[str], Optional[Path]]
] = None


def _compiler() -> Optional[str]:
    """First usable C compiler: ``$CC``, then cc/gcc/clang on PATH."""
    env_cc = os.environ.get("CC", "").strip()
    for cand in (env_cc, *COMPILERS):
        if cand and shutil.which(cand.split()[0]):
            return cand
    return None


def source_digest() -> str:
    """Content digest of the C source + ABI + platform (cache key)."""
    h = hashlib.sha256()
    h.update(_SOURCE.read_bytes())
    h.update(
        f"|abi={NATIVE_ABI}|{platform.system()}|{platform.machine()}".encode()
    )
    return h.hexdigest()[:16]


def _cache_dir() -> Path:
    override = os.environ.get(ENV_CACHE_DIR, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-native"


def _library_name() -> str:
    return f"_native_cse-{source_digest()}.so"


def build_native(
    output: Optional[Path] = None, compiler: Optional[str] = None
) -> Path:
    """Compile ``_native.c`` into a shared library; returns its path.

    Raises :class:`NativeBuildError` when no toolchain is available or
    the compile fails — callers that must not fail (``setup.py``, the
    lazy loader) catch it and continue pure-python.
    """
    cc = compiler or _compiler()
    if cc is None:
        raise NativeBuildError(
            f"no C compiler found ($CC, {', '.join(COMPILERS)})"
        )
    out = output or _cache_dir() / _library_name()
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        suffix=".so", prefix="_native_cse.", dir=str(out.parent)
    )
    os.close(fd)
    tmp = Path(tmp_name)
    cmd = [
        *cc.split(), "-O3", "-std=c99", "-fPIC", "-shared",
        "-o", str(tmp), str(_SOURCE),
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        tmp.unlink(missing_ok=True)
        raise NativeBuildError(f"compile invocation failed: {exc}") from exc
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        detail = (proc.stderr or proc.stdout or "").strip()[-400:]
        raise NativeBuildError(
            f"{cc} exited {proc.returncode}: {detail or 'no output'}"
        )
    # atomic publish: concurrent builders race benignly to the same digest
    os.replace(tmp, out)
    return out


def _configure(lib: ctypes.CDLL) -> None:
    c_i64 = ctypes.c_int64
    c_ptr = ctypes.c_void_p
    lib.cse_native_abi.restype = c_i64
    lib.cse_native_abi.argtypes = []
    lib.cse_native_scan.restype = c_i64
    lib.cse_native_scan.argtypes = [
        c_ptr, c_i64, c_i64,          # table, kind, n_states
        c_ptr, c_ptr, c_i64,          # syms, seg_starts, n_seg
        c_ptr, c_i64,                 # init, width
        c_ptr, c_ptr, c_i64, c_i64,   # cs_starts, cs_sizes, n_blocks, stride
        c_ptr, c_ptr, c_ptr,          # final_out, collapsed_out, stats_out
        c_ptr, c_ptr,                 # frontier_scratch, seen_scratch
    ]
    lib.cse_native_table_view.restype = c_i64
    lib.cse_native_table_view.argtypes = [c_ptr, c_i64, c_i64, c_ptr]


def _try_load(path: Path) -> Tuple[Optional[ctypes.CDLL], Optional[str]]:
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as exc:
        return None, f"dlopen({path.name}) failed: {exc}"
    if not hasattr(lib, "cse_native_abi"):
        return None, f"{path.name} lacks cse_native_abi"
    lib.cse_native_abi.restype = ctypes.c_int64
    lib.cse_native_abi.argtypes = []
    abi = int(lib.cse_native_abi())
    if abi != NATIVE_ABI:
        return None, f"{path.name} has ABI {abi}, expected {NATIVE_ABI}"
    _configure(lib)
    return lib, None


def _disabled_reason() -> Optional[str]:
    raw = os.environ.get(ENV_DISABLE, "").strip().lower()
    if raw in ("0", "off", "no", "false"):
        return f"disabled via {ENV_DISABLE}={raw}"
    return None


def _load() -> Tuple[Optional[ctypes.CDLL], Optional[str], Optional[Path]]:
    disabled = _disabled_reason()
    if disabled is not None:
        return None, disabled, None
    if not _SOURCE.is_file():
        return None, "_native.c missing from the package", None
    # prebuilt (setup.py drops the library next to the module), then the
    # per-user cache, then a lazy on-demand build
    candidates = sorted(_SOURCE.parent.glob("_native_cse*.so"))
    cached = _cache_dir() / _library_name()
    if cached.is_file():
        candidates.append(cached)
    last_err: Optional[str] = None
    for cand in candidates:
        lib, err = _try_load(cand)
        if lib is not None:
            return lib, None, cand
        last_err = err
    try:
        built = build_native()
    except NativeBuildError as exc:
        reason = str(exc) if last_err is None else f"{last_err}; {exc}"
        return None, reason, None
    lib, err = _try_load(built)
    if lib is not None:
        return lib, None, built
    return None, err, None


def load_native(refresh: bool = False) -> Optional[ctypes.CDLL]:
    """The loaded library, or ``None`` (reason memoized) when absent."""
    global _state
    if _state is None or refresh:
        _state = _load()
    return _state[0]


def reset_native() -> None:
    """Forget the memoized load outcome (tests flip env vars)."""
    global _state
    _state = None


def native_available() -> bool:
    """True when the compiled tier is loadable right now."""
    return load_native() is not None


def native_unavailable_reason() -> Optional[str]:
    """Why the native tier is off (``None`` when it is available)."""
    load_native()
    assert _state is not None
    return _state[1]


def native_library_path() -> Optional[Path]:
    """Path of the loaded library (``None`` when unavailable)."""
    load_native()
    assert _state is not None
    return _state[2]


def _compiler_version(cc: str) -> Optional[str]:
    try:
        proc = subprocess.run(
            [*cc.split(), "--version"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    first = (proc.stdout or proc.stderr or "").strip().splitlines()
    return first[0][:120] if first else None


def native_build_info() -> Dict[str, object]:
    """Provenance of the compiled tier (stamped into BENCH_*.json)."""
    lib = load_native()
    assert _state is not None
    info: Dict[str, object] = {
        "available": lib is not None,
        "abi": NATIVE_ABI,
        "source_digest": source_digest() if _SOURCE.is_file() else None,
    }
    if lib is None:
        info["reason"] = _state[1]
    else:
        info["library"] = str(_state[2])
    cc = _compiler()
    info["compiler"] = cc
    if cc is not None:
        info["compiler_version"] = _compiler_version(cc)
    return info


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def native_table_view(tables: DenseTables) -> np.ndarray:
    """The table exactly as the C library reads it, widened to int64.

    ``repro check`` compares this against the dense tables (K114): a
    mismatch means the compiled library and the Python tier disagree on
    the transition bytes and the native backend must not be trusted.
    """
    lib = load_native()
    if lib is None:
        raise RuntimeError(
            f"native tier unavailable: {native_unavailable_reason()}"
        )
    kind = _TABLE_KINDS.get(str(tables.table.dtype))
    if kind is None:
        raise ValueError(f"unsupported table dtype {tables.table.dtype}")
    table = np.ascontiguousarray(tables.table, dtype=tables.table.dtype)
    out = np.empty(int(table.size), dtype=np.int64)
    rc = int(lib.cse_native_table_view(
        _ptr(table), kind, int(table.size), _ptr(out)
    ))
    if rc != 0:
        raise RuntimeError(f"native table view rejected kind {kind}")
    return out


def _delegate_stats(dense_stats: Dict[str, int]) -> Dict[str, int]:
    """Map dense-kernel stats onto the native stat vocabulary."""
    return {
        "positions": dense_stats["positions"],
        "native_positions": 0,
        "stride_checks": dense_stats["stride_checks"],
        "degraded_segments": dense_stats["degraded_segments"],
        "scalar_positions": 0,
        "collapses": dense_stats["collapses"],
    }


def run_segments_native(
    dfa: Dfa,
    partition: StatePartition,
    segments: Sequence[np.ndarray],
    tables: Optional[DenseTables] = None,
    stride: Optional[int] = None,
) -> Tuple[List[List[CsOutcome]], Dict[str, int]]:
    """Execute every segment's dense frontier in one compiled call.

    Same contract and bit-identical outcomes as
    :func:`repro.kernels.dense.run_segments_dense`; ``stats`` carries the
    native tier's own telemetry (``native_positions``, ``stride_checks``,
    ``degraded_segments``, ``scalar_positions``, ``collapses``).  Inputs
    the C core cannot take verbatim (an unsupported table dtype, or
    out-of-range symbols that dense's clipped gather would absorb)
    delegate to the dense kernel — never a crash, never a different
    answer.
    """
    from repro.kernels.dense import run_segments_dense

    lib = load_native()
    if lib is None:
        raise RuntimeError(
            f"native tier unavailable: {native_unavailable_reason()}"
        )
    if stride is not None and int(stride) < 1:
        raise ValueError("stride must be >= 1")
    tables = tables or DenseTables(dfa)
    kind = _TABLE_KINDS.get(str(tables.table.dtype))
    if kind is None:
        grid, dstats = run_segments_dense(
            dfa, partition, segments, tables=tables, stride=stride
        )
        return grid, _delegate_stats(dstats)
    n_seg = len(segments)
    blocks = partition.block_arrays()
    n_blocks = len(blocks)
    sizes = np.ascontiguousarray(
        [b.size for b in blocks], dtype=np.int64
    )
    multi_count = int((sizes > 1).sum())
    if n_seg == 0:
        return [], {
            "positions": 0, "native_positions": 0, "stride_checks": 0,
            "degraded_segments": 0, "scalar_positions": 0, "collapses": 0,
        }
    segs = [
        np.ascontiguousarray(as_symbols(s), dtype=np.int64) for s in segments
    ]
    lengths = np.asarray([int(s.size) for s in segs], dtype=np.int64)
    seg_starts = np.zeros(n_seg + 1, dtype=np.int64)
    np.cumsum(lengths, out=seg_starts[1:])
    syms = (
        np.concatenate(segs) if int(seg_starts[-1]) else
        np.empty(0, dtype=np.int64)
    )
    if syms.size and (
        int(syms.min()) < 0 or int(syms.max()) >= dfa.alphabet_size
    ):
        # dense's clipped gather tolerates out-of-range symbols; the C
        # gather must not — delegate rather than OOB-read
        grid, dstats = run_segments_dense(
            dfa, partition, segments, tables=tables, stride=stride
        )
        return grid, _delegate_stats(dstats)

    # frontier lanes grouped by convergence set, same layout as dense.py
    perm = (
        np.concatenate(blocks).astype(np.int64) if n_blocks else
        np.empty(0, dtype=np.int64)
    )
    width = int(perm.size)
    cs_starts = np.zeros(n_blocks, dtype=np.int64)
    if n_blocks > 1:
        np.cumsum(sizes[:-1], out=cs_starts[1:])
    cs_ends = cs_starts + sizes

    table = np.ascontiguousarray(tables.table, dtype=tables.table.dtype)
    final_out = np.empty((n_seg, max(width, 1)), dtype=np.int64)
    collapsed_out = np.empty(n_seg, dtype=np.int64)
    stats_out = np.zeros(_STAT_SLOTS, dtype=np.int64)
    frontier_scratch = np.empty(max(width, 1), dtype=np.int64)
    seen_scratch = np.empty(max(n_blocks, 1), dtype=np.uint8)
    rc = int(lib.cse_native_scan(
        _ptr(table), kind, int(tables.num_states),
        _ptr(syms), _ptr(seg_starts), n_seg,
        _ptr(perm), width,
        _ptr(cs_starts), _ptr(sizes),
        n_blocks, 0 if stride is None else int(stride),
        _ptr(final_out), _ptr(collapsed_out), _ptr(stats_out),
        _ptr(frontier_scratch), _ptr(seen_scratch),
    ))
    if rc != 0:
        raise RuntimeError(f"native scan rejected table kind {kind}")

    # epilogue identical to dense.py: outcomes derive from the final
    # frontier (or the collapsed scalar), so stride placement and the C
    # realization cannot change them
    n_collapsed = 0
    grid: List[List[CsOutcome]] = []
    for seg_i in range(n_seg):
        scalar = int(collapsed_out[seg_i])
        if scalar >= 0:
            states = np.asarray([scalar], dtype=np.int64)
            grid.append([CsOutcome(True, scalar, states)] * n_blocks)
            n_collapsed += multi_count
            continue
        fr = final_out[seg_i]
        outcomes: List[CsOutcome] = []
        for b in range(n_blocks):
            uniq = np.unique(fr[int(cs_starts[b]):int(cs_ends[b])])
            if uniq.size == 1:
                outcomes.append(CsOutcome(True, int(uniq[0]), uniq))
                if int(sizes[b]) > 1:
                    n_collapsed += 1
            else:
                outcomes.append(CsOutcome(False, None, uniq))
        grid.append(outcomes)

    stats = {
        "positions": int(lengths.max()) if n_seg else 0,
        "native_positions": int(stats_out[_STAT_NATIVE_POSITIONS]),
        "stride_checks": int(stats_out[_STAT_STRIDE_CHECKS]),
        "degraded_segments": int(stats_out[_STAT_DEGRADED]),
        "scalar_positions": int(stats_out[_STAT_SCALAR_POSITIONS]),
        "collapses": n_collapsed,
    }
    return grid, stats


def _main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.kernels.native [--rebuild]``: build + report."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="build/inspect the optional native set-flow library"
    )
    parser.add_argument(
        "--rebuild", action="store_true",
        help="force a fresh compile into the cache directory",
    )
    args = parser.parse_args(argv)
    if args.rebuild:
        try:
            path = build_native()
            print(f"built {path}", file=sys.stderr)
            reset_native()
        except NativeBuildError as exc:
            print(f"build failed: {exc}", file=sys.stderr)
    print(json.dumps(native_build_info(), indent=2, sort_keys=True))
    return 0 if native_available() else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    raise SystemExit(_main())
