"""Literal-prefilter fast path: skip the frontier between anchor hits.

For literal-heavy rulesets (ExactMatch/Snort-like families) almost every
input position provably cannot move the machine anywhere interesting: the
DFA sits on a *home* state that self-loops on most bytes, and only a small
set of *anchor* bytes (the required factors of the patterns — first bytes
of literals and their in-pattern continuations) can hold it away from
home.  This module derives that structure from the transition table at
compile time and exploits it at scan time, the same dead-work skip that
Simultaneous Finite Automata and factor-based regex prefilters formalize.

Certification (:func:`derive_prefilter`) is a compile-time proof, not a
heuristic.  It establishes three facts about ``(home, anchors,
skip_width)``:

1. **Home invariance** — every non-anchor byte maps ``home`` to ``home``
   (by construction: anchors are exactly the bytes that move home).
2. **Bounded absorption** — the non-anchor transition graph restricted to
   states other than home is acyclic, and ``skip_width`` is the longest
   non-anchor path before absorption at home.  Therefore **any**
   ``skip_width`` consecutive non-anchor bytes drive *every* state to
   home, after which fact 1 pins it there.  Cycles are broken by greedily
   promoting the byte carrying the most cycle edges to an anchor; if the
   anchor set grows past :data:`MAX_ANCHOR_FRACTION` of the alphabet the
   table is not literal-skippable and certification fails.
3. **Anchor soundness** — no accepting state is reachable from the start
   or home state through non-anchor bytes alone, so a scan that sees no
   anchor byte can never report: every accepting path contains an anchor.
   (``repro check`` re-verifies all three facts as K130–K132.)

The scan consequence: within a segment, only the suffix after the *last*
``>= skip_width`` run of non-anchor bytes can influence the final state —
everything before it is erased by that run (every enumeration path sits at
home when the run ends).  So the kernel does one vectorized anchor-LUT
sweep (``np.flatnonzero(lut[segment])``, memchr-speed in C), finds the
last qualifying run, and walks only the tail after it with the interpreted
table — typically a handful of bytes per segment.  Segments with no
qualifying run (adversarially dense matches, or shorter than the skip
width) fall back to the dense-frontier kernel, batched in one call, so
correctness never depends on the prefilter being profitable.

Outcomes are bit-identical to :func:`repro.kernels.dense.run_segments_dense`
and therefore to the interpreted reference: a proven reset collapses every
convergence set to the one surviving path, exactly the dense kernel's
whole-frontier-collapse outcome.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.core.partition import StatePartition
from repro.core.transition import CsOutcome

if TYPE_CHECKING:
    from repro.kernels.dense import DenseTables

__all__ = [
    "MAX_ANCHOR_FRACTION",
    "MIN_HOME_LOOP_FRACTION",
    "PrefilterTables",
    "certify_prefilter",
    "derive_prefilter",
    "prefilter_scan_scalar",
    "run_segments_prefilter",
]

#: home must self-loop on at least this fraction of the alphabet —
#: below it the "skip" erases too little input to be worth certifying
MIN_HOME_LOOP_FRACTION = 0.5
#: give up when cycle-breaking pushes anchors past this alphabet fraction:
#: the sweep would hit on most bytes and the walk would dominate
MAX_ANCHOR_FRACTION = 0.5
#: certification results memoized by DFA fingerprint (success *and*
#: failure — failed certification must stay O(1) on re-scan so an explicit
#: ``backend="prefilter"`` fallback costs nothing measurable)
_CERT_CACHE_MAX = 128
_CERT_CACHE: "OrderedDict[Tuple[object, ...], Optional[PrefilterTables]]" = \
    OrderedDict()


class PrefilterTables:
    """Compile-time literal-skip certificate for one DFA.

    ``anchor_lut`` is a bool LUT over the alphabet (True = anchor byte),
    ``home`` the absorbing rest state and ``skip_width`` the proven
    absorption bound: any ``skip_width`` consecutive non-anchor symbols
    send every state to ``home``.  Stored inside
    :class:`repro.compilecache.CompiledDfa` so scans never re-derive it.
    """

    __slots__ = ("home", "skip_width", "anchor_lut", "num_states", "alphabet_size")

    def __init__(
        self,
        home: int,
        skip_width: int,
        anchor_lut: np.ndarray,
        num_states: int,
        alphabet_size: int,
    ) -> None:
        self.home = int(home)
        self.skip_width = int(skip_width)
        self.anchor_lut = np.asarray(anchor_lut, dtype=bool)
        self.num_states = int(num_states)
        self.alphabet_size = int(alphabet_size)

    @property
    def anchors(self) -> np.ndarray:
        """Sorted int64 array of anchor symbols."""
        return np.flatnonzero(self.anchor_lut).astype(np.int64)

    @property
    def n_anchors(self) -> int:
        return int(self.anchor_lut.sum())

    @property
    def nbytes(self) -> int:
        return int(self.anchor_lut.nbytes)

    def summary(self) -> Dict[str, object]:
        """Envelope-stable digest for artifact cross-checks (K133)."""
        return {
            "home": self.home,
            "skip_width": self.skip_width,
            "n_anchors": self.n_anchors,
            "anchor_digest": hashlib.sha256(
                np.packbits(self.anchor_lut).tobytes()
            ).hexdigest()[:16],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PrefilterTables(home={self.home}, skip_width={self.skip_width}, "
            f"anchors={self.n_anchors}/{self.alphabet_size})"
        )


def _absorption_depths(
    table: np.ndarray, home: int, anchor: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Longest-path-to-home DP over the non-anchor transition graph.

    Returns ``(depth, finite)``: ``depth[q]`` is the longest chain of
    non-anchor steps from ``q`` before reaching home (0 for home itself),
    valid only where ``finite[q]``.  States left non-finite sit on a
    non-anchor cycle away from home.  Vectorized reverse topological peel:
    a state's depth is final once every non-anchor successor's is.
    """
    n = table.shape[1]
    finite = np.zeros(n, dtype=bool)
    finite[home] = True
    depth = np.zeros(n, dtype=np.int64)
    non_anchor = np.flatnonzero(~anchor)
    if non_anchor.size == 0:
        finite[:] = True
        return depth, finite
    sub = table[non_anchor]  # (k', n) successor matrix
    for _ in range(n):
        ready = ~finite & finite[sub].all(axis=0)
        if not ready.any():
            break
        depth[ready] = 1 + depth[sub[:, ready]].max(axis=0)
        finite[ready] = True
    return depth, finite


def _cycle_byte(
    table: np.ndarray, anchor: np.ndarray, cyclic: np.ndarray
) -> Optional[int]:
    """Non-anchor byte carrying the most edges inside the cyclic region."""
    non_anchor = np.flatnonzero(~anchor)
    if non_anchor.size == 0:
        return None
    sub = table[non_anchor][:, cyclic]  # (k', n_cyclic) targets
    in_cycle = np.zeros(table.shape[1], dtype=bool)
    in_cycle[cyclic] = True
    counts = in_cycle[sub].sum(axis=1)
    best = int(np.argmax(counts))
    if int(counts[best]) == 0:
        return None
    return int(non_anchor[best])


def _non_anchor_closure(table: np.ndarray, anchor: np.ndarray, root: int) -> np.ndarray:
    """Bool mask of states reachable from ``root`` via non-anchor bytes."""
    n = table.shape[1]
    seen = np.zeros(n, dtype=bool)
    seen[root] = True
    non_anchor = np.flatnonzero(~anchor)
    if non_anchor.size == 0:
        return seen
    sub = table[non_anchor]
    frontier = np.asarray([root], dtype=np.int64)
    while frontier.size:
        nxt = np.unique(sub[:, frontier])
        fresh = nxt[~seen[nxt]]
        seen[fresh] = True
        frontier = fresh
    return seen


def derive_prefilter(dfa: Dfa) -> Optional[PrefilterTables]:
    """Derive a literal-skip certificate, or ``None`` if uncertifiable.

    See the module docstring for the three facts this establishes.  Pure
    compile-time analysis over ``dfa.transitions``; cost is a few
    vectorized passes over the ``(alphabet, states)`` table.
    """
    n = dfa.num_states
    k = dfa.alphabet_size
    if n < 1 or k < 2:
        return None
    table = dfa.transitions
    # home: the state that self-loops on the most bytes (the "rest" state
    # of a literal machine); certify only if it absorbs most of the input
    self_loops = (table == np.arange(n, dtype=table.dtype)[None, :]).sum(axis=0)
    home = int(np.argmax(self_loops))
    if int(self_loops[home]) < k * MIN_HOME_LOOP_FRACTION:
        return None
    # anchors: exactly the bytes that move home (fact 1 by construction)
    anchor = table[:, home] != home
    max_anchors = int(k * MAX_ANCHOR_FRACTION)
    # overwritten on the first pass; typed placeholders keep the for/else
    depth = np.empty(0, dtype=np.int64)
    finite = np.empty(0, dtype=bool)
    for _ in range(k):
        if int(anchor.sum()) > max_anchors:
            return None
        depth, finite = _absorption_depths(table, home, anchor)
        if bool(finite.all()):
            break
        extra = _cycle_byte(table, anchor, np.flatnonzero(~finite))
        if extra is None:
            return None
        anchor[extra] = True
    else:
        return None
    if not bool(finite.all()):
        return None
    # fact 3: no accepting state on a non-anchor-only path from start/home
    acc = dfa.accepting_mask
    if bool(acc[home]) or bool((acc & _non_anchor_closure(table, anchor, dfa.start)).any()):
        return None
    skip_width = max(1, int(depth.max()))
    return PrefilterTables(home, skip_width, anchor, n, k)


def certify_prefilter(dfa: Dfa) -> Optional[PrefilterTables]:
    """Memoized :func:`derive_prefilter` keyed by the DFA fingerprint."""
    fp = dfa.fingerprint
    if fp in _CERT_CACHE:
        _CERT_CACHE.move_to_end(fp)
        return _CERT_CACHE[fp]
    tables = derive_prefilter(dfa)
    if len(_CERT_CACHE) >= _CERT_CACHE_MAX:
        _CERT_CACHE.popitem(last=False)
    _CERT_CACHE[fp] = tables
    return tables


def _last_reset(
    hits: np.ndarray, length: int, skip_width: int
) -> Tuple[bool, int]:
    """Locate the last ``>= skip_width`` non-anchor run in a segment.

    Given the sorted anchor-hit positions, returns ``(proven, walk_from)``:
    ``proven`` is False when no qualifying run exists; otherwise
    ``walk_from`` is the position to resume the interpreted walk from
    ``home`` (``== length`` when the trailing run qualifies, i.e. the
    segment provably ends at home with nothing left to walk).
    """
    if hits.size == 0:
        if length >= skip_width:
            return True, length
        return False, 0
    if length - 1 - int(hits[-1]) >= skip_width:
        return True, length
    gaps = np.diff(hits) - 1
    qual = np.flatnonzero(gaps >= skip_width)
    if qual.size:
        return True, int(hits[int(qual[-1]) + 1])
    if int(hits[0]) >= skip_width:
        return True, int(hits[0])
    return False, 0


def prefilter_scan_scalar(
    dfa: Dfa,
    tables: PrefilterTables,
    segment: np.ndarray,
    start_state: Optional[int] = None,
    rows: Optional[List[List[int]]] = None,
) -> Tuple[int, int]:
    """Concrete-flow prefilter scan (segment 0 / sequential fallback).

    Returns ``(final_state, walked)`` where ``walked`` is the number of
    positions actually stepped through the interpreted table; the rest of
    the segment was erased by a proven reset run.  Bit-identical to
    ``dfa.run(segment, start_state)``.
    """
    # dtype deliberately inherited: uint8 views stay uint8 (zero-copy)
    seg = np.asarray(segment)  # repro: noqa(R101)
    length = int(seg.size)
    state = dfa.start if start_state is None else int(start_state)
    if length == 0:
        return state, 0
    hits = np.flatnonzero(tables.anchor_lut[seg])
    proven, walk_from = _last_reset(hits, length, tables.skip_width)
    if proven:
        state = tables.home
    else:
        walk_from = 0
    if walk_from >= length:
        return state, 0
    if rows is None:
        rows = [r.tolist() for r in dfa.transitions]
    for sym in seg[walk_from:].tolist():
        state = rows[sym][state]
    return state, length - walk_from


def run_segments_prefilter(
    dfa: Dfa,
    partition: StatePartition,
    segments: Sequence[np.ndarray],
    tables: PrefilterTables,
    dense: Optional[DenseTables] = None,
    stride: Optional[int] = None,
) -> Tuple[List[List[CsOutcome]], Dict[str, int]]:
    """Enumerative prefilter scan over a batch of segments.

    For each segment: one vectorized anchor sweep; if a ``>= skip_width``
    non-anchor run exists, every enumeration path provably sits at ``home``
    when it ends, so the whole frontier is one scalar flow from there — the
    tail after the run is walked interpreted and every convergence set
    collapses to its final state.  Segments with no qualifying run are
    batched through :func:`repro.kernels.dense.run_segments_dense`
    unchanged (``dense``/``stride`` are its optional precomputed tables and
    collapse-check stride).

    Returns ``(grid, stats)`` with the same grid contract as the dense
    kernel and stats keys ``positions, walked_positions, skipped_bytes,
    anchor_hits, windows, fallback_segments, collapses``.
    """
    n_seg = len(segments)
    blocks = partition.block_arrays()
    n_blocks = len(blocks)
    sizes = np.asarray([b.size for b in blocks], dtype=np.int64)
    multi_count = int((sizes > 1).sum())
    # identity outcomes for empty segments: each set maps to itself
    identity: Optional[List[CsOutcome]] = None

    lut = tables.anchor_lut
    sw = tables.skip_width
    home = tables.home
    rows: Optional[List[List[int]]] = None

    grid: List[Optional[List[CsOutcome]]] = [None] * n_seg
    fallback_idx: List[int] = []
    max_len = 0
    walked = 0
    skipped = 0
    anchor_hits = 0
    windows = 0
    n_collapsed = 0

    for i, segment in enumerate(segments):
        # dtype deliberately inherited: uint8 views stay uint8 (zero-copy)
        seg = np.asarray(segment)  # repro: noqa(R101)
        length = int(seg.size)
        max_len = max(max_len, length)
        if length == 0:
            if identity is None:
                identity = [
                    CsOutcome(
                        b.size == 1,
                        int(b[0]) if b.size == 1 else None,
                        np.unique(b).astype(np.int64),
                    )
                    for b in blocks
                ]
            grid[i] = list(identity)
            continue
        hits = np.flatnonzero(lut[seg])
        anchor_hits += int(hits.size)
        proven, walk_from = _last_reset(hits, length, sw)
        if not proven:
            fallback_idx.append(i)
            continue
        state = home
        if walk_from < length:
            if rows is None:
                rows = [r.tolist() for r in dfa.transitions]
            for sym in seg[walk_from:].tolist():
                state = rows[sym][state]
            walked += length - walk_from
            windows += 1
        skipped += walk_from
        states = np.asarray([state], dtype=np.int64)
        grid[i] = [CsOutcome(True, state, states)] * n_blocks
        n_collapsed += multi_count

    if fallback_idx:
        # unproven segments take the strongest full-frontier kernel
        # available: the compiled native tier when its library loads,
        # else the dense kernel (identical outcomes either way)
        from repro.kernels.dense import run_segments_dense
        from repro.kernels.native import native_available, run_segments_native

        run_fallback = (
            run_segments_native if native_available() else run_segments_dense
        )
        sub_grid, sub_stats = run_fallback(
            dfa,
            partition,
            [segments[i] for i in fallback_idx],
            tables=dense,
            stride=stride,
        )
        for j, i in enumerate(fallback_idx):
            grid[i] = sub_grid[j]
        walked += sub_stats["positions"] * len(fallback_idx)
        n_collapsed += sub_stats["collapses"]

    stats = {
        "positions": max_len,
        "walked_positions": walked,
        "skipped_bytes": skipped,
        "anchor_hits": anchor_hits,
        "windows": windows,
        "fallback_segments": len(fallback_idx),
        "collapses": n_collapsed,
    }
    return grid, stats  # type: ignore[return-value]
