"""Cross-segment lockstep kernel: batched scalar and flat set flows.

The software interpreter cost of :func:`repro.software.run_segment` is per
Python bytecode, not per state transition — so the way to make the software
CSE path fast is to make every interpreted step advance *many* flows.  This
module provides the two flow pools the batched executor drives in lockstep
across **all** enumerative segments at once:

- :class:`ScalarPool` — every converged/singleton flow of every segment,
  advanced with a single fancy-indexed gather per symbol position
  (``states = flat_table[offset_of(symbol) + states]``);
- :class:`FlatSetFlows` — every diverged convergence set of every segment,
  stored as one flat member array (duplicates retained: the M = 1 collapse
  check only needs min == max per flow, not a per-step ``unique``), also one
  gather per position.

Flows that collapse migrate from :class:`FlatSetFlows` into the
:class:`ScalarPool` — the batched analogue of the paper's "M = 1 computes
all paths at the cost of one" degradation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

__all__ = ["ScalarPool", "FlatSetFlows"]


class ScalarPool:
    """All scalar (converged / singleton-set) flows of every segment.

    ``states[i]`` is flow ``i``'s current state, ``seg[i]`` the segment it
    reads symbols from and ``block[i]`` the convergence set it answers for.
    One :meth:`step` call advances the whole pool with one gather.
    """

    def __init__(self, flat_table: np.ndarray) -> None:
        self.flat = flat_table
        self.states = np.empty(0, dtype=np.int64)
        self.seg = np.empty(0, dtype=np.int64)
        self.block = np.empty(0, dtype=np.int64)

    def extend(self, states: ArrayLike, seg: ArrayLike,
               block: ArrayLike) -> None:
        self.states = np.concatenate(
            [self.states, np.asarray(states, dtype=np.int64)]
        )
        self.seg = np.concatenate([self.seg, np.asarray(seg, dtype=np.int64)])
        self.block = np.concatenate([self.block, np.asarray(block, dtype=np.int64)])

    def absorb(self, collapsed: List[Tuple[int, int, int]]) -> None:
        """Add flows that just collapsed out of a set pool."""
        if collapsed:
            states, segs, blocks = zip(*collapsed)
            self.extend(states, segs, blocks)

    def step(self, col_off: np.ndarray, seg_active: Optional[np.ndarray] = None
             ) -> None:
        """One symbol position: ``state <- table[segment symbol, state]``.

        ``col_off[s]`` is ``symbol_of(segment s) * num_states`` for this
        position, so the whole pool advances via one flat gather.
        """
        if not self.states.size:
            return
        if seg_active is None:
            self.states = self.flat[col_off[self.seg] + self.states]
            return
        idx = np.flatnonzero(seg_active[self.seg])
        if idx.size:
            self.states[idx] = self.flat[col_off[self.seg[idx]] + self.states[idx]]


class FlatSetFlows:
    """Batched diverged-set stepping over a flat member array.

    One flow per (segment, multi-member convergence set) pair; members of
    all flows live in one flat array sorted by flow, so a position costs one
    gather plus an ``O(total members)`` min/max reduction for the collapse
    check.  Duplicate members are *retained* (no per-step ``unique``): the
    final outcome set and the collapse point are unaffected, and skipping
    the sort/unique is where the allocation churn of the interpreted path
    goes away.
    """

    def __init__(
        self,
        flat_table: np.ndarray,
        multi_blocks: List[np.ndarray],
        multi_ids: np.ndarray,
        n_segments: int,
    ) -> None:
        self.flat = flat_table
        n_multi = len(multi_blocks)
        sizes = np.asarray([b.size for b in multi_blocks], dtype=np.int64)
        base = (
            np.concatenate([np.asarray(b, dtype=np.int64) for b in multi_blocks])
            if n_multi
            else np.empty(0, dtype=np.int64)
        )
        self.members = np.tile(base, n_segments)
        self.mem_seg = np.repeat(np.arange(n_segments, dtype=np.int64), base.size)
        local0 = np.repeat(np.arange(n_multi, dtype=np.int64), sizes)
        self.mem_local = np.concatenate(
            [local0 + s * n_multi for s in range(n_segments)]
        ) if n_multi else np.empty(0, dtype=np.int64)
        self.flow_seg = np.repeat(np.arange(n_segments, dtype=np.int64), n_multi)
        self.flow_block = np.tile(np.asarray(multi_ids, dtype=np.int64), n_segments)
        self._rebuild_starts()

    @property
    def n_flows(self) -> int:
        return int(self.flow_seg.size)

    def _rebuild_starts(self) -> None:
        counts = np.bincount(self.mem_local, minlength=self.n_flows)
        self.starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]]
        ) if self.n_flows else np.empty(0, dtype=np.int64)

    def step(
        self, col_off: np.ndarray, seg_active: Optional[np.ndarray] = None
    ) -> List[Tuple[int, int, int]]:
        """One symbol position; returns (and removes) collapsed flows."""
        if not self.n_flows:
            return []
        if seg_active is None:
            self.members = self.flat[col_off[self.mem_seg] + self.members]
        else:
            idx = np.flatnonzero(seg_active[self.mem_seg])
            if not idx.size:
                return []
            self.members[idx] = self.flat[
                col_off[self.mem_seg[idx]] + self.members[idx]
            ]
        mins = np.minimum.reduceat(self.members, self.starts)
        maxs = np.maximum.reduceat(self.members, self.starts)
        hit = np.flatnonzero(mins == maxs)
        if not hit.size:
            return []
        collapsed = [
            (int(mins[f]), int(self.flow_seg[f]), int(self.flow_block[f]))
            for f in hit.tolist()
        ]
        if hit.size == self.n_flows:
            # everything collapsed at once: jump straight to the empty
            # pool instead of rebuilding starts/new_index for zero flows
            # (subsequent step() calls early-return on n_flows == 0)
            self.members = np.empty(0, dtype=np.int64)
            self.mem_seg = np.empty(0, dtype=np.int64)
            self.mem_local = np.empty(0, dtype=np.int64)
            self.flow_seg = np.empty(0, dtype=np.int64)
            self.flow_block = np.empty(0, dtype=np.int64)
            self.starts = np.empty(0, dtype=np.int64)
            return collapsed
        keep = np.ones(self.n_flows, dtype=bool)
        keep[hit] = False
        new_index = np.full(self.n_flows, -1, dtype=np.int64)
        live = np.flatnonzero(keep)
        new_index[live] = np.arange(live.size, dtype=np.int64)
        mem_keep = keep[self.mem_local]
        self.members = self.members[mem_keep]
        self.mem_seg = self.mem_seg[mem_keep]
        self.mem_local = new_index[self.mem_local[mem_keep]]
        self.flow_seg = self.flow_seg[live]
        self.flow_block = self.flow_block[live]
        self._rebuild_starts()
        return collapsed

    def final_outcomes(self) -> List[Tuple[np.ndarray, int, int]]:
        """Remaining diverged flows as ``(states, segment, block)`` triples."""
        out: List[Tuple[np.ndarray, int, int]] = []
        ends = np.concatenate([self.starts[1:], [self.members.size]]) \
            if self.n_flows else np.empty(0, dtype=np.int64)
        for f in range(self.n_flows):
            states = np.unique(self.members[self.starts[f]:ends[f]])
            out.append((states, int(self.flow_seg[f]), int(self.flow_block[f])))
        return out
