"""Vectorized execution kernels for the software CSE path.

The interpreted reference path (:func:`repro.software.run_segment` with
``backend="python"``) pays Python bytecode per state transition; these
kernels pay it per *symbol position of the whole scan*:

- :mod:`repro.kernels.lockstep` — cross-segment lockstep stepping: all
  scalar flows of all segments advance with one fancy-indexed gather per
  position; diverged sets ride a flat member array.
- :mod:`repro.kernels.bitset` — uint64-packed active masks with
  precomputed per-symbol predecessor matrices (the software realization of
  the AP's one-hot step), stepping a set in O(N/64) words.
- :mod:`repro.kernels.dense` — the dense-frontier kernel: all N states of
  every segment advance with exactly one flat gather per symbol position
  (dtype-narrowed table, strided collapse checks); the small-N fast path.
- :mod:`repro.kernels.native` — the compiled set-flow tier: the dense
  kernel's whole frontier advanced over the whole symbol buffer in one C
  call (ctypes-loaded, zero runtime deps); strictly optional — every
  caller degrades to dense when no toolchain or prebuilt library exists.
- :mod:`repro.kernels.prefilter` — the literal-prefilter fast path:
  compile-time anchor/skip-width certification plus a scan kernel that
  sweeps for anchor bytes vectorized and walks only the tail after the
  last proven reset run, skipping the frontier entirely elsewhere.
- :mod:`repro.kernels.batch` — the orchestrator that runs every
  enumerative segment through one batched pass and the shared
  ``resolve_backend`` default-resolution helper.
"""

from repro.kernels.batch import (
    BACKENDS,
    DENSE_MAX_STATES,
    KERNEL_BACKENDS,
    resolve_backend,
    run_segments_batch,
)
from repro.kernels.bitset import BitsetTables
from repro.kernels.dense import DenseTables, dense_state_dtype
from repro.kernels.native import (
    NativeBuildError,
    build_native,
    native_available,
    native_build_info,
    native_table_view,
    native_unavailable_reason,
    run_segments_native,
)
from repro.kernels.prefilter import (
    PrefilterTables,
    certify_prefilter,
    derive_prefilter,
    prefilter_scan_scalar,
)

__all__ = [
    "BACKENDS",
    "DENSE_MAX_STATES",
    "KERNEL_BACKENDS",
    "BitsetTables",
    "DenseTables",
    "NativeBuildError",
    "PrefilterTables",
    "build_native",
    "certify_prefilter",
    "dense_state_dtype",
    "derive_prefilter",
    "native_available",
    "native_build_info",
    "native_table_view",
    "native_unavailable_reason",
    "prefilter_scan_scalar",
    "resolve_backend",
    "run_segments_batch",
    "run_segments_native",
]
