"""Dense-frontier enumeration kernel: one gather per symbol position.

The lockstep/bitset kernels (PR 1) made the software CSE path pay Python
per symbol position instead of per transition, but a position still costs
~6 NumPy calls (column-offset index, scalar gather, member gather, two
``reduceat`` collapse reductions, ``flatnonzero``).  For small machines the
data-parallel-optimal form is the one Simultaneous Finite Automata
materializes: keep the **full** ``state -> state`` mapping per segment and
advance it whole.  This module realizes that form:

- one dense *frontier* vector of all N states per enumerative segment,
  flattened across segments, so every symbol position is exactly **one
  flat gather** of ``n_segments x N`` elements
  (``frontier = flat_table[col_off[seg] + frontier]``) plus the offset
  add, both into preallocated buffers;
- the state dtype is narrowed to uint8/uint16 when N permits
  (:func:`dense_state_dtype`), so the gather table and the frontier stay
  cache-dense;
- collapse detection is a **strided** check every K positions (K adaptive
  unless pinned): per-CS uniqueness is read off the dense frontier with a
  blocked min/max ``reduceat``.  Correctness is unaffected by the stride —
  the dense step costs the same whether or not a set has collapsed, and
  the final per-CS outcomes are derived once at segment end;
- a segment whose *entire* frontier collapses to one state is an
  identity-composable singleton: every enumeration path is the same path.
  Such segments degrade out of the dense gather entirely and continue as
  one scalar flow each (the batched analogue of the paper's "M = 1
  computes all paths at the cost of one").

Outcomes are bit-identical to the interpreted reference and to the
lockstep/bitset kernels; ``benchmarks/bench_dense.py`` gates the speedup
(dense >= 2x lockstep on the 64-state/1 MB/16-segment acceptance config).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.core.partition import StatePartition
from repro.core.transition import CsOutcome

__all__ = ["DenseTables", "dense_state_dtype", "run_segments_dense"]

#: first gap between strided collapse checks in adaptive mode
STRIDE_MIN = 8
#: ceiling the adaptive stride doubles toward while checks find nothing
STRIDE_MAX = 512


def dense_state_dtype(num_states: int) -> np.dtype[Any]:
    """Narrowest unsigned dtype that can hold every state id.

    uint8 up to 256 states, uint16 up to 65536; beyond that the kernel
    falls back to int64 (the lockstep dtype) — ``resolve_backend`` only
    auto-picks dense far below that, but an explicit request still works.
    """
    if num_states <= (1 << 8):
        return np.dtype(np.uint8)
    if num_states <= (1 << 16):
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


class DenseTables:
    """Dtype-narrowed dense transition table + per-symbol column offsets.

    ``table`` is the raveled transition matrix in :func:`dense_state_dtype`
    precision; ``offsets[c] == c * num_states`` is the column offset of
    symbol ``c`` into it (int64: offsets index the full table and must not
    narrow).  Built once per DFA — the compilation cache stores an
    instance inside :class:`repro.compilecache.CompiledDfa` so scans never
    re-derive it.
    """

    def __init__(self, dfa: Dfa) -> None:
        n = dfa.num_states
        self.num_states = n
        self.dtype = dense_state_dtype(n)
        self.table = dfa.transitions.astype(self.dtype).ravel()
        self.offsets = np.arange(dfa.alphabet_size, dtype=np.int64) * n

    @property
    def nbytes(self) -> int:
        return int(self.table.nbytes) + int(self.offsets.nbytes)


def _compact(
    act: np.ndarray, frontier: np.ndarray, keep: np.ndarray,
    cs_starts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Drop dense rows; rebuild the step buffers and reduceat starts."""
    act = act[keep]
    frontier = np.ascontiguousarray(frontier[keep], dtype=frontier.dtype)
    idx = np.empty(frontier.shape, dtype=np.int64)
    buf = np.empty(frontier.shape, dtype=frontier.dtype)
    width = frontier.shape[1] if frontier.ndim == 2 else 0
    check_starts = (
        np.arange(act.size, dtype=np.int64)[:, None] * width
        + cs_starts[None, :]
    ).reshape(-1)
    return act, frontier, idx, buf, check_starts


def run_segments_dense(
    dfa: Dfa,
    partition: StatePartition,
    segments: Sequence[np.ndarray],
    tables: Optional[DenseTables] = None,
    stride: Optional[int] = None,
) -> Tuple[List[List[CsOutcome]], Dict[str, int]]:
    """Execute every segment's full enumeration frontier densely.

    Returns ``(grid, stats)``: ``grid[seg][block]`` is the
    :class:`CsOutcome` of convergence set ``block`` in segment ``seg``
    (bit-identical to the interpreted path), and ``stats`` carries the
    kernel's own telemetry (positions, dense gather positions, stride
    checks, degraded segments, collapses) for the orchestrator to record.

    ``stride`` pins the gap between collapse checks; ``None`` adapts it
    (start at :data:`STRIDE_MIN`, double toward :data:`STRIDE_MAX` while
    checks find nothing new, reset on progress).
    """
    from repro.engines.base import stack_segments

    if stride is not None and int(stride) < 1:
        raise ValueError("stride must be >= 1")
    tables = tables or DenseTables(dfa)
    n_seg = len(segments)
    blocks = partition.block_arrays()
    n_blocks = len(blocks)
    sizes = np.asarray([b.size for b in blocks], dtype=np.int64)
    multi_count = int((sizes > 1).sum())
    matrix, lengths = stack_segments(segments)
    max_len = int(lengths.max()) if n_seg else 0
    # (max_len, n_seg) C-order: position t's column offsets are one
    # contiguous row instead of a strided column slice
    off_rows = np.take(tables.offsets, matrix.T) if matrix.size else \
        np.zeros((max_len, n_seg), dtype=np.int64)

    # frontier columns are grouped by convergence set so a per-CS read is
    # a contiguous slice: column j tracks the path that started at perm[j]
    perm = np.concatenate(blocks).astype(np.int64) if n_blocks else \
        np.empty(0, dtype=np.int64)
    width = int(perm.size)
    cs_starts = np.zeros(n_blocks, dtype=np.int64)
    if n_blocks > 1:
        np.cumsum(sizes[:-1], out=cs_starts[1:])
    cs_ends = cs_starts + sizes

    frontier = np.tile(perm.astype(tables.dtype), (n_seg, 1))
    act = np.arange(n_seg, dtype=np.int64)
    idx = np.empty((n_seg, width), dtype=np.int64)
    buf = np.empty((n_seg, width), dtype=tables.dtype)
    check_starts = (
        np.arange(n_seg, dtype=np.int64)[:, None] * width
        + cs_starts[None, :]
    ).reshape(-1)

    final_rows: Dict[int, np.ndarray] = {}
    scalar_final: Dict[int, int] = {}
    # degraded (uniform) segments: one scalar flow each, stepped alongside
    scalar_seg = np.empty(0, dtype=np.int64)
    scalar_state = np.empty(0, dtype=tables.dtype)
    scalar_len = np.empty(0, dtype=np.int64)

    collapsed_seen = np.zeros((n_seg, n_blocks), dtype=bool)
    boundaries = np.unique(lengths)
    b_ptr = 0
    k = int(stride) if stride is not None else STRIDE_MIN
    next_check = k
    n_checks = 0
    n_degraded = 0
    dense_positions = 0

    rows: Optional[List[List[int]]] = None
    for t in range(max_len):
        if act.size == 0:
            # every remaining segment is one scalar path: the per-position
            # NumPy dispatch now costs more than the work, so finish with
            # the interpreted table walk (lists beat numpy scalar indexing
            # ~5x — the same trade scan_sequential exploits)
            if scalar_seg.size:
                if rows is None:
                    rows = [r.tolist() for r in dfa.transitions]
                for i in range(int(scalar_seg.size)):
                    seg = int(scalar_seg[i])
                    state = int(scalar_state[i])
                    for sym in matrix[seg, t:int(lengths[seg])].tolist():
                        state = rows[sym][state]
                    scalar_final[seg] = state
                scalar_seg = np.empty(0, dtype=np.int64)
                scalar_state = np.empty(0, dtype=tables.dtype)
                scalar_len = np.empty(0, dtype=np.int64)
            break
        if b_ptr < boundaries.size and int(boundaries[b_ptr]) <= t:
            while b_ptr < boundaries.size and int(boundaries[b_ptr]) <= t:
                b_ptr += 1
            # segments ending here leave the gather with their final row
            if act.size:
                keep = lengths[act] > t
                if not keep.all():
                    for row in np.flatnonzero(~keep).tolist():
                        final_rows[int(act[row])] = frontier[row].copy()
                    act, frontier, idx, buf, check_starts = _compact(
                        act, frontier, keep, cs_starts
                    )
            if scalar_seg.size:
                s_keep = scalar_len > t
                if not s_keep.all():
                    for i in np.flatnonzero(~s_keep).tolist():
                        scalar_final[int(scalar_seg[i])] = int(scalar_state[i])
                    scalar_seg = scalar_seg[s_keep]
                    scalar_state = scalar_state[s_keep]
                    scalar_len = scalar_len[s_keep]

        if act.size:
            row = off_rows[t]
            if act.size != n_seg:
                row = row[act]
            # the whole frontier advances: one offset add + one flat
            # gather into preallocated buffers, no per-position allocation
            np.add(row[:, None], frontier, out=idx)
            np.take(tables.table, idx, out=buf, mode="clip")
            frontier, buf = buf, frontier
            dense_positions += 1

        if scalar_seg.size:
            scalar_state = np.take(
                tables.table, np.take(off_rows[t], scalar_seg) + scalar_state
            )

        if act.size and n_blocks and t + 1 >= next_check:
            n_checks += 1
            flat = frontier.reshape(-1)
            mins = np.minimum.reduceat(flat, check_starts)
            maxs = np.maximum.reduceat(flat, check_starts)
            eq = (mins == maxs).reshape(act.size, n_blocks)
            fresh = bool((eq & ~collapsed_seen[act]).any())
            if fresh:
                collapsed_seen[act] |= eq
            row_min = mins.reshape(act.size, n_blocks).min(axis=1)
            row_max = maxs.reshape(act.size, n_blocks).max(axis=1)
            uniform = row_min == row_max
            if uniform.any():
                segs = act[uniform]
                n_degraded += int(segs.size)
                scalar_seg = np.concatenate([scalar_seg, segs])
                scalar_state = np.concatenate(
                    [scalar_state, row_min[uniform].astype(tables.dtype)]
                )
                scalar_len = np.concatenate([scalar_len, lengths[segs]])
                act, frontier, idx, buf, check_starts = _compact(
                    act, frontier, ~uniform, cs_starts
                )
            if stride is None:
                k = STRIDE_MIN if fresh or bool(uniform.any()) \
                    else min(k * 2, STRIDE_MAX)
            next_check = t + 1 + k

    for row in range(int(act.size)):
        final_rows[int(act[row])] = frontier[row]
    for i in range(int(scalar_seg.size)):
        scalar_final[int(scalar_seg[i])] = int(scalar_state[i])

    n_collapsed = 0
    grid: List[List[CsOutcome]] = []
    for seg in range(n_seg):
        if seg in scalar_final:
            # the whole frontier collapsed: every convergence set maps to
            # the one surviving path's final state
            state = scalar_final[seg]
            states = np.asarray([state], dtype=np.int64)
            grid.append([CsOutcome(True, state, states)] * n_blocks)
            n_collapsed += multi_count
            continue
        fr = final_rows[seg].astype(np.int64)
        outcomes: List[CsOutcome] = []
        for b in range(n_blocks):
            uniq = np.unique(fr[cs_starts[b]:cs_ends[b]])
            if uniq.size == 1:
                outcomes.append(CsOutcome(True, int(uniq[0]), uniq))
                if sizes[b] > 1:
                    n_collapsed += 1
            else:
                outcomes.append(CsOutcome(False, None, uniq))
        grid.append(outcomes)

    stats = {
        "positions": max_len,
        "dense_positions": dense_positions,
        "stride_checks": n_checks,
        "degraded_segments": n_degraded,
        "collapses": n_collapsed,
    }
    return grid, stats
