/* Native set-flow tier: the dense-frontier kernel as one compiled call.
 *
 * The dense kernel (dense.py) already reduced a symbol position to one
 * offset-add + one flat gather, but each position still pays a Python
 * dispatch and full-generality numpy machinery.  This library advances a
 * whole segment's enumeration frontier over its entire symbol buffer in
 * one C loop: per position a fused offset-add + gather at the narrowed
 * table dtype, a strided collapse check every K positions (adaptive K,
 * same STRIDE_MIN/STRIDE_MAX ladder as dense.py — correctness is
 * stride-independent because the outcomes are derived from the final
 * frontier), and when the *whole* frontier collapses to one state the
 * segment degrades to a single scalar table walk for its remaining tail.
 *
 * Deliberately plain C with a flat pointer ABI: no Python.h, no numpy
 * headers.  The Python side (native.py) loads it through ctypes, passes
 * preallocated numpy buffers, and reuses dense.py's epilogue verbatim so
 * outcomes stay bit-identical to every other backend.
 */

#include <stdint.h>

/* bump when the entry-point signatures change; native.py refuses to use
 * a library whose cse_native_abi() disagrees */
#define CSE_NATIVE_ABI 1

/* same adaptive collapse-check ladder as dense.py */
#define NATIVE_STRIDE_MIN 8
#define NATIVE_STRIDE_MAX 512

/* table element kinds (must match _TABLE_KINDS in native.py) */
#define KIND_U8 0
#define KIND_U16 1
#define KIND_I64 2

/* stats_out slot layout (must match _STAT_* in native.py) */
#define STAT_NATIVE_POSITIONS 0
#define STAT_STRIDE_CHECKS 1
#define STAT_DEGRADED 2
#define STAT_SCALAR_POSITIONS 3
#define STAT_SLOTS 4

int64_t cse_native_abi(void) { return CSE_NATIVE_ABI; }

/* advance every frontier lane through symbol column `col` */
static void
advance(const void *table, int64_t kind, int64_t col_off,
        int64_t *frontier, int64_t width)
{
    int64_t j;
    if (kind == KIND_U8) {
        const uint8_t *col = (const uint8_t *)table + col_off;
        for (j = 0; j < width; j++)
            frontier[j] = (int64_t)col[frontier[j]];
    } else if (kind == KIND_U16) {
        const uint16_t *col = (const uint16_t *)table + col_off;
        for (j = 0; j < width; j++)
            frontier[j] = (int64_t)col[frontier[j]];
    } else {
        const int64_t *col = (const int64_t *)table + col_off;
        for (j = 0; j < width; j++)
            frontier[j] = col[frontier[j]];
    }
}

/* walk one scalar flow over syms[from:len] (a collapsed segment's tail) */
static int64_t
walk_scalar(const void *table, int64_t kind, int64_t n_states,
            const int64_t *syms, int64_t from, int64_t len, int64_t state)
{
    int64_t t;
    if (kind == KIND_U8) {
        const uint8_t *tab = (const uint8_t *)table;
        for (t = from; t < len; t++)
            state = (int64_t)tab[syms[t] * n_states + state];
    } else if (kind == KIND_U16) {
        const uint16_t *tab = (const uint16_t *)table;
        for (t = from; t < len; t++)
            state = (int64_t)tab[syms[t] * n_states + state];
    } else {
        const int64_t *tab = (const int64_t *)table;
        for (t = from; t < len; t++)
            state = tab[syms[t] * n_states + state];
    }
    return state;
}

/* Run every segment's full dense frontier.
 *
 * table        raveled (alphabet x n_states) transition table, dtype per kind
 * kind         KIND_U8 / KIND_U16 / KIND_I64
 * syms         all segments' symbols concatenated, int64, validated in-range
 * seg_starts   n_seg+1 prefix offsets into syms
 * init         frontier start states (CS blocks concatenated), width lanes
 * cs_starts    per-CS lane offset into the frontier, n_blocks entries
 * cs_sizes     per-CS lane count, n_blocks entries
 * stride       pinned collapse-check gap, or <=0 for adaptive
 * final_out    (n_seg x width) int64 final frontiers (rows of segments
 *              that did not fully collapse)
 * collapsed_out  per segment: final scalar state if the whole frontier
 *              collapsed, else -1
 * stats_out    STAT_SLOTS int64 counters
 * frontier_scratch  width int64 working lanes
 * seen_scratch n_blocks bytes (per-segment fresh-collapse memory)
 *
 * Returns 0, or -1 on an unknown table kind.
 */
int64_t
cse_native_scan(const void *table, int64_t kind, int64_t n_states,
                const int64_t *syms, const int64_t *seg_starts, int64_t n_seg,
                const int64_t *init, int64_t width,
                const int64_t *cs_starts, const int64_t *cs_sizes,
                int64_t n_blocks, int64_t stride,
                int64_t *final_out, int64_t *collapsed_out, int64_t *stats_out,
                int64_t *frontier_scratch, uint8_t *seen_scratch)
{
    int64_t s, i;
    if (kind != KIND_U8 && kind != KIND_U16 && kind != KIND_I64)
        return -1;
    for (i = 0; i < STAT_SLOTS; i++)
        stats_out[i] = 0;
    for (s = 0; s < n_seg; s++) {
        const int64_t *seg = syms + seg_starts[s];
        const int64_t len = seg_starts[s + 1] - seg_starts[s];
        int64_t *fr = frontier_scratch;
        int64_t k = stride > 0 ? stride : NATIVE_STRIDE_MIN;
        int64_t next_check = k;
        int64_t scalar = -1;
        int64_t t, b, j;
        for (j = 0; j < width; j++)
            fr[j] = init[j];
        for (b = 0; b < n_blocks; b++)
            seen_scratch[b] = 0;
        for (t = 0; t < len; t++) {
            advance(table, kind, seg[t] * n_states, fr, width);
            stats_out[STAT_NATIVE_POSITIONS]++;
            if (width > 0 && t + 1 >= next_check) {
                int64_t gmin = fr[0], gmax = fr[0];
                int fresh = 0;
                stats_out[STAT_STRIDE_CHECKS]++;
                for (b = 0; b < n_blocks; b++) {
                    const int64_t lo = cs_starts[b];
                    const int64_t hi = lo + cs_sizes[b];
                    int64_t mn = fr[lo], mx = fr[lo];
                    for (j = lo + 1; j < hi; j++) {
                        const int64_t v = fr[j];
                        if (v < mn) mn = v;
                        if (v > mx) mx = v;
                    }
                    if (mn == mx && !seen_scratch[b]) {
                        seen_scratch[b] = 1;
                        fresh = 1;
                    }
                    if (mn < gmin) gmin = mn;
                    if (mx > gmax) gmax = mx;
                }
                if (gmin == gmax) {
                    /* whole frontier is one state: every enumeration
                     * path is the same path — finish as one scalar flow */
                    stats_out[STAT_DEGRADED]++;
                    stats_out[STAT_SCALAR_POSITIONS] += len - (t + 1);
                    scalar = walk_scalar(table, kind, n_states,
                                         seg, t + 1, len, gmin);
                    break;
                }
                if (stride <= 0)
                    k = fresh ? NATIVE_STRIDE_MIN
                              : (k * 2 > NATIVE_STRIDE_MAX
                                     ? NATIVE_STRIDE_MAX : k * 2);
                next_check = t + 1 + k;
            }
        }
        collapsed_out[s] = scalar;
        if (scalar < 0) {
            int64_t *dst = final_out + s * width;
            for (j = 0; j < width; j++)
                dst[j] = fr[j];
        }
    }
    return 0;
}

/* Widen the first n_cells table entries to int64 — the certification
 * window repro check's K114 compares against the dense tables, proving
 * the compiled library reads the exact bytes the Python tier built. */
int64_t
cse_native_table_view(const void *table, int64_t kind, int64_t n_cells,
                      int64_t *out)
{
    int64_t i;
    if (kind == KIND_U8) {
        const uint8_t *tab = (const uint8_t *)table;
        for (i = 0; i < n_cells; i++)
            out[i] = (int64_t)tab[i];
    } else if (kind == KIND_U16) {
        const uint16_t *tab = (const uint16_t *)table;
        for (i = 0; i < n_cells; i++)
            out[i] = (int64_t)tab[i];
    } else if (kind == KIND_I64) {
        const int64_t *tab = (const int64_t *)table;
        for (i = 0; i < n_cells; i++)
            out[i] = tab[i];
    } else {
        return -1;
    }
    return 0;
}
