"""Streaming and fleet scanning: the deployment-facing API.

The engine classes answer "how fast is one design on one string"; a real
deployment (the NIDS or mail gateway of the paper's introduction) needs
two more shapes:

- :class:`StreamScanner` — feed byte chunks as they arrive, carry the FSM
  state across chunks, get report events with global offsets.  Chunks are
  internally accelerated with a parallel engine when they are long enough
  to amortize enumeration.
- :class:`FleetScanner` — scan one input against *many* FSMs (the paper's
  benchmarks are collections of hundreds), allocating the AP's half-cores
  across machines and reporting aggregate throughput.

Both preserve exact sequential semantics: every report a sequential scan
would emit, no more, no fewer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.automata.dfa import Dfa, as_symbols
from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.engines.base import Engine
from repro.engines.sequential import SequentialEngine
from repro.hardware.ap import APConfig
from repro.hardware.cost import throughput_symbols_per_sec
from repro.kernels import resolve_backend

__all__ = ["StreamScanner", "FleetScanner", "FleetResult", "FleetWallclock"]


class StreamScanner:
    """Incremental scanning with exact report offsets.

    Parameters
    ----------
    dfa:
        The compiled ruleset.
    engine:
        Optional parallel engine used to *model* chunk latency (its cycle
        count feeds :attr:`cycles`); report extraction always runs the
        exact sequential pass.
    min_parallel_chunk:
        Chunks shorter than this are charged at sequential cost — with
        segments only a few symbols long, enumeration cannot pay off.
    backend:
        Software kernel backend used to carry the FSM state across long
        chunks when no model ``engine`` is given.  ``None``/``"auto"``
        resolves through :func:`repro.kernels.resolve_backend` (the same
        partition-friendly-profile helper :class:`FleetScanner` uses);
        ``"python"`` forces the plain table walk, and the vectorized
        kernels (``"lockstep"``/``"bitset"``/``"dense"``) are accepted by
        name.
    partition:
        Convergence partition for the kernel path; defaults to the
        trivial single-set partition.
    cache:
        Optional :class:`repro.compilecache.CompileCache`.  When given
        (and no explicit ``partition``), the scanner serves its partition
        and kernel tables from a compiled artifact — profiled on first
        use, reused by every scanner of the same ruleset afterwards.
    """

    def __init__(
        self,
        dfa: Dfa,
        engine: Optional[Engine] = None,
        min_parallel_chunk: int = 512,
        backend: Optional[str] = "python",
        partition: Optional[StatePartition] = None,
        n_segments: int = 8,
        cache=None,
    ):
        self.dfa = dfa
        self.engine = engine
        self.min_parallel_chunk = int(min_parallel_chunk)
        self.n_segments = int(n_segments)
        self.compiled = None
        if cache is not None and partition is None:
            self.compiled = cache.get_or_compile(
                dfa, backend=backend or "auto", n_segments=self.n_segments
            )
            self.partition = self.compiled.partition
            self.backend = self.compiled.backend
        else:
            self.partition = partition or StatePartition.trivial(dfa.num_states)
            self.backend = resolve_backend(
                dfa, backend, self.partition, n_segments
            )
        self.reset()

    def reset(self) -> None:
        """Forget all stream state (new connection / new file)."""
        self.state = self.dfa.start
        self.offset = 0
        self.cycles = 0
        self.reports: List[Tuple[int, int]] = []

    def feed(self, chunk) -> List[Tuple[int, int]]:
        """Consume one chunk; return the report events it produced.

        Report offsets are global stream offsets.
        """
        if not obs.is_enabled():
            return self._feed(chunk)
        wall = time.time()
        begin = time.perf_counter()
        reports = self._feed(chunk)
        duration = time.perf_counter() - begin
        n = int(as_symbols(chunk).size)
        obs.record_span("stream.feed", wall, duration,
                        n_symbols=n, backend=self.backend)
        obs.counter("stream_chunks_total").inc()
        obs.counter("stream_symbols_total").inc(n)
        obs.counter("stream_reports_total").inc(len(reports))
        obs.histogram("stream_chunk_seconds").observe(duration)
        return reports

    def _feed(self, chunk) -> List[Tuple[int, int]]:
        syms = as_symbols(chunk)
        if syms.size == 0:
            return []
        new_reports = [
            (self.offset + local, state)
            for local, state in self.dfa.run_reports(syms, self.state)
        ]
        if self.engine is not None and syms.size >= self.min_parallel_chunk:
            run = self.engine.run(syms, start_state=self.state)
            self.cycles += run.cycles
            end_state = run.final_state
        elif self.backend != "python" and syms.size >= self.min_parallel_chunk:
            from repro.software import software_cse_scan

            run = software_cse_scan(
                self.dfa,
                syms,
                self.partition,
                n_segments=self.n_segments,
                backend=self.backend,
                start_state=self.state,
                verify=False,
                compiled=self.compiled,
            )
            self.cycles += int(syms.size)
            end_state = run.final_state
        else:
            self.cycles += int(syms.size)
            end_state = self.dfa.run(syms, self.state)
        self.state = int(end_state)
        self.offset += int(syms.size)
        self.reports.extend(new_reports)
        return new_reports

    def finish(self) -> Tuple[int, List[Tuple[int, int]]]:
        """Final state and the full report log."""
        return self.state, list(self.reports)


@dataclass
class FleetResult:
    """Aggregate outcome of a fleet scan."""

    n_fsms: int
    n_symbols: int
    #: per-FSM report events
    reports: Dict[int, List[Tuple[int, int]]]
    #: critical-path cycles (FSMs run concurrently on separate half-cores)
    cycles: int
    config: APConfig = field(default_factory=APConfig)

    @property
    def total_reports(self) -> int:
        return sum(len(r) for r in self.reports.values())

    @property
    def throughput(self) -> float:
        """Aggregate symbols/second at the modeled clock."""
        return throughput_symbols_per_sec(self.n_symbols, self.cycles, self.config)


class FleetScanner:
    """Scan inputs against a collection of FSMs (multi-ruleset deployment).

    Half-cores are split across FSMs the way Table I splits them across
    segments: with ``F`` machines and ``H`` total half-cores, each machine
    gets ``H // F`` half-cores (minimum 1) for its segments, and machines
    beyond the core budget are serialized in rounds.
    """

    def __init__(
        self,
        dfas: Sequence[Dfa],
        partitions: Optional[Sequence[Optional[StatePartition]]] = None,
        config: Optional[APConfig] = None,
        n_segments: int = 8,
        backend: Optional[str] = "auto",
        cache=None,
    ):
        if not dfas:
            raise ValueError("need at least one FSM")
        self.config = config or APConfig()
        self.n_segments = int(n_segments)
        partitions = partitions or [None] * len(dfas)
        if len(partitions) != len(dfas):
            raise ValueError("one partition (or None) per FSM required")
        per_fsm_cores = max(1, self.config.total_half_cores // len(dfas))
        cores_per_segment = max(1, per_fsm_cores // self.n_segments)
        self.engines: List[Engine] = []
        self.backends: List[str] = []
        self.compiled: List = []
        for dfa, partition in zip(dfas, partitions):
            compiled = None
            if cache is not None and partition is None:
                # fleet machines share one cache: identical rulesets hit
                # the same artifact and profile exactly once
                compiled = cache.get_or_compile(
                    dfa, backend=backend or "auto", n_segments=self.n_segments
                )
                partition = compiled.partition
            elif partition is None:
                partition = StatePartition.trivial(dfa.num_states)
            self.compiled.append(compiled)
            # same shared default-resolution helper StreamScanner uses
            self.backends.append(
                compiled.backend
                if compiled is not None
                else resolve_backend(dfa, backend, partition, self.n_segments)
            )
            self.engines.append(
                CseEngine(
                    dfa,
                    n_segments=self.n_segments,
                    cores_per_segment=cores_per_segment,
                    config=self.config,
                    partition=partition,
                )
            )
        #: how many FSMs can run concurrently on the rank
        self.concurrency = max(
            1, self.config.total_half_cores // max(1, per_fsm_cores)
        )

    def scan(self, symbols) -> FleetResult:
        """Run every FSM over the input; verify against sequential."""
        syms = as_symbols(symbols)
        per_fsm_cycles: List[int] = []
        reports: Dict[int, List[Tuple[int, int]]] = {}
        collect = obs.is_enabled()
        wall = time.time()
        begin = time.perf_counter()
        for idx, engine in enumerate(self.engines):
            run = engine.run(syms)
            sequential = SequentialEngine(engine.dfa, config=self.config).run(syms)
            if run.final_state != sequential.final_state:
                raise AssertionError(f"fleet FSM {idx} diverged from oracle")
            reports[idx] = sequential.reports or []
            per_fsm_cycles.append(run.cycles)
            if collect:
                obs.gauge("fleet_machine_throughput", fsm=idx).set(
                    throughput_symbols_per_sec(
                        int(syms.size), run.cycles, self.config
                    )
                )
                obs.counter("fleet_machine_reports_total", fsm=idx).inc(
                    len(reports[idx])
                )
        # machines run `concurrency` at a time; rounds are serialized
        per_fsm_cycles.sort(reverse=True)
        cycles = 0
        for round_start in range(0, len(per_fsm_cycles), self.concurrency):
            cycles += per_fsm_cycles[round_start]  # slowest of the round
        if collect:
            obs.record_span("fleet.scan", wall, time.perf_counter() - begin,
                            n_fsms=len(self.engines), n_symbols=int(syms.size))
            obs.counter("fleet_scans_total").inc()
        return FleetResult(
            n_fsms=len(self.engines),
            n_symbols=int(syms.size),
            reports=reports,
            cycles=int(cycles),
            config=self.config,
        )

    def scan_wallclock(self, symbols) -> "FleetWallclock":
        """Measured-seconds fleet scan on the software kernels.

        Runs every FSM's software CSE scan with its resolved kernel
        backend and reports real wall-clock, the deployment-facing
        counterpart of the cycle-model :meth:`scan`.
        """
        from repro.software import software_cse_scan

        syms = as_symbols(symbols)
        runs = []
        collect = obs.is_enabled()
        wall = time.time()
        begin = time.perf_counter()
        for idx, (engine, backend, compiled) in enumerate(
            zip(self.engines, self.backends, self.compiled)
        ):
            run = software_cse_scan(
                engine.dfa,
                syms,
                engine.partition,
                n_segments=self.n_segments,
                backend=backend,
                compiled=compiled,
            )
            runs.append(run)
            if collect and run.elapsed_seconds > 0:
                obs.gauge("fleet_machine_wallclock_throughput", fsm=idx).set(
                    run.n_symbols / run.elapsed_seconds
                )
        if collect:
            obs.record_span("fleet.scan_wallclock", wall,
                            time.perf_counter() - begin,
                            n_fsms=len(self.engines), n_symbols=int(syms.size))
        return FleetWallclock(runs=runs)


@dataclass
class FleetWallclock:
    """Wall-clock outcome of :meth:`FleetScanner.scan_wallclock`."""

    runs: List  # List[repro.software.SoftwareRun]

    @property
    def sequential_seconds(self) -> float:
        return sum(r.sequential_seconds for r in self.runs)

    @property
    def elapsed_seconds(self) -> float:
        return sum(r.elapsed_seconds for r in self.runs)

    @property
    def critical_path_seconds(self) -> float:
        """FSMs run concurrently: the fleet latency is the slowest FSM."""
        return max(r.critical_path_seconds for r in self.runs)

    @property
    def work_speedup(self) -> float:
        path = self.critical_path_seconds
        return self.sequential_seconds / path if path > 0 else float("inf")
