"""Streaming and fleet scanning: the deployment-facing API.

The engine classes answer "how fast is one design on one string"; a real
deployment (the NIDS or mail gateway of the paper's introduction) needs
two more shapes:

- :class:`StreamScanner` — feed byte chunks as they arrive, carry the FSM
  state across chunks, get report events with global offsets.  Chunks are
  internally accelerated with a parallel engine when they are long enough
  to amortize enumeration.
- :class:`FleetScanner` — scan one input against *many* FSMs (the paper's
  benchmarks are collections of hundreds), allocating the AP's half-cores
  across machines and reporting aggregate throughput.

Both preserve exact sequential semantics: every report a sequential scan
would emit, no more, no fewer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.automata.dfa import Dfa, as_symbols
from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.engines.base import Engine
from repro.engines.sequential import SequentialEngine
from repro.fleet import ShardMachine, ShardPlan, plan_shards
from repro.hardware.ap import APConfig
from repro.hardware.cost import throughput_symbols_per_sec
from repro.kernels import resolve_backend

__all__ = ["StreamScanner", "FleetScanner", "FleetResult", "FleetWallclock",
           "CHUNK_LATENCY_BUCKETS"]

#: per-metric histogram override for chunk latencies: a finer 1-2.5-5
#: ladder from 10 microseconds to 10 seconds — chunk feeds are far
#: narrower than the generic DEFAULT_BUCKETS span, so percentile
#: estimates from the live endpoint gain a full decade of resolution
CHUNK_LATENCY_BUCKETS = tuple(
    round(m * 10.0 ** e, 12) for e in range(-5, 1) for m in (1.0, 2.5, 5.0)
)


class StreamScanner:
    """Incremental scanning with exact report offsets.

    Parameters
    ----------
    dfa:
        The compiled ruleset.
    engine:
        Optional parallel engine used to *model* chunk latency (its cycle
        count feeds :attr:`cycles`); report extraction always runs the
        exact sequential pass.
    min_parallel_chunk:
        Chunks shorter than this are charged at sequential cost — with
        segments only a few symbols long, enumeration cannot pay off.
    backend:
        Software kernel backend used to carry the FSM state across long
        chunks when no model ``engine`` is given.  ``None``/``"auto"``
        resolves through :func:`repro.kernels.resolve_backend` (the same
        partition-friendly-profile helper :class:`FleetScanner` uses);
        ``"python"`` forces the plain table walk, and the vectorized
        kernels (``"lockstep"``/``"bitset"``/``"dense"``/``"native"``/
        ``"prefilter"``) are accepted by name — a ``"prefilter"``
        request on a machine that fails literal certification degrades
        to ``"dense"``, and ``"native"`` degrades the same way on a
        host where the compiled library does not load.
    partition:
        Convergence partition for the kernel path; defaults to the
        trivial single-set partition.
    cache:
        Optional :class:`repro.compilecache.CompileCache`.  When given
        (and no explicit ``partition``), the scanner serves its partition
        and kernel tables from a compiled artifact — profiled on first
        use, reused by every scanner of the same ruleset afterwards.
    """

    def __init__(
        self,
        dfa: Dfa,
        engine: Optional[Engine] = None,
        min_parallel_chunk: int = 512,
        backend: Optional[str] = "python",
        partition: Optional[StatePartition] = None,
        n_segments: int = 8,
        cache=None,
    ):
        self.dfa = dfa
        self.engine = engine
        self.min_parallel_chunk = int(min_parallel_chunk)
        self.n_segments = int(n_segments)
        self.compiled = None
        if cache is not None and partition is None:
            self.compiled = cache.get_or_compile(
                dfa, backend=backend or "auto", n_segments=self.n_segments
            )
            self.partition = self.compiled.partition
            self.backend = self.compiled.backend
        else:
            self.partition = partition or StatePartition.trivial(dfa.num_states)
            self.backend = resolve_backend(
                dfa, backend, self.partition, n_segments
            )
        self.reset()

    def reset(self) -> None:
        """Forget all stream state (new connection / new file)."""
        self.state = self.dfa.start
        self.offset = 0
        self.cycles = 0
        self.reports: List[Tuple[int, int]] = []
        #: one trace id per stream lifetime (minted lazily on first
        #: instrumented feed); every chunk span joins it
        self.trace_id: Optional[str] = None

    def feed(self, chunk) -> List[Tuple[int, int]]:
        """Consume one chunk; return the report events it produced.

        Report offsets are global stream offsets.
        """
        if not obs.is_enabled():
            return self._feed(chunk)
        if self.trace_id is None:
            self.trace_id = obs.new_trace_id()
        with obs.trace(self.trace_id):
            wall = time.time()
            begin = time.perf_counter()
            reports = self._feed(chunk)
            duration = time.perf_counter() - begin
            n = int(as_symbols(chunk).size)
            obs.record_span("stream.feed", wall, duration,
                            n_symbols=n, backend=self.backend)
            obs.counter("stream_chunks_total").inc()
            obs.counter("stream_symbols_total").inc(n)
            obs.counter("stream_reports_total").inc(len(reports))
            obs.histogram(
                "stream_chunk_seconds", buckets=CHUNK_LATENCY_BUCKETS
            ).observe(duration)
        return reports

    def _feed(self, chunk) -> List[Tuple[int, int]]:
        syms = as_symbols(chunk)
        if syms.size == 0:
            return []
        new_reports = [
            (self.offset + local, state)
            for local, state in self.dfa.run_reports(syms, self.state)
        ]
        if self.engine is not None and syms.size >= self.min_parallel_chunk:
            run = self.engine.run(syms, start_state=self.state)
            self.cycles += run.cycles
            end_state = run.final_state
        elif self.backend != "python" and syms.size >= self.min_parallel_chunk:
            from repro.software import software_cse_scan

            run = software_cse_scan(
                self.dfa,
                syms,
                self.partition,
                n_segments=self.n_segments,
                backend=self.backend,
                start_state=self.state,
                verify=False,
                compiled=self.compiled,
            )
            self.cycles += int(syms.size)
            end_state = run.final_state
        else:
            self.cycles += int(syms.size)
            end_state = self.dfa.run(syms, self.state)
        self.state = int(end_state)
        self.offset += int(syms.size)
        self.reports.extend(new_reports)
        return new_reports

    def finish(self) -> Tuple[int, List[Tuple[int, int]]]:
        """Final state and the full report log."""
        return self.state, list(self.reports)


@dataclass
class FleetResult:
    """Aggregate outcome of a fleet scan."""

    n_fsms: int
    n_symbols: int
    #: per-FSM report events
    reports: Dict[int, List[Tuple[int, int]]]
    #: critical-path cycles (FSMs run concurrently on separate half-cores)
    cycles: int
    config: APConfig = field(default_factory=APConfig)
    #: input passes actually paid for (shards or deduped machines)
    n_scans: int = 0

    @property
    def total_reports(self) -> int:
        return sum(len(r) for r in self.reports.values())

    @property
    def throughput(self) -> float:
        """Aggregate symbols/second at the modeled clock."""
        return throughput_symbols_per_sec(self.n_symbols, self.cycles, self.config)


class FleetScanner:
    """Scan inputs against a collection of FSMs (multi-ruleset deployment).

    Half-cores are split across scan units the way Table I splits them
    across segments: with ``U`` units and ``H`` total half-cores, each
    unit gets ``H // U`` half-cores (minimum 1) for its segments, and
    units beyond the core budget are serialized in rounds.

    Two layers reduce the number of scan units below ``len(dfas)``:

    - **dedupe** — identical rulesets (same :attr:`Dfa.fingerprint`, no
      explicit partition) profile and scan once; duplicates share the
      unit's results.
    - **sharding** (``shard=``) — alphabet-compatible machines are packed
      into product/union :class:`~repro.fleet.ShardMachine` units by
      :func:`repro.fleet.plan_shards`, so each unit pays one input pass
      for *all* its members and per-ruleset outcomes are demultiplexed
      from the product state, bit-identical to the per-machine loop.
      Pass ``True`` to plan with the default ``DENSE_MAX_STATES`` budget
      or a :class:`~repro.fleet.ShardPlan` (over the deduped fleet) to
      reuse a plan.  Explicit ``partitions`` are per-machine objects and
      are rejected in shard mode.
    """

    def __init__(
        self,
        dfas: Sequence[Dfa],
        partitions: Optional[Sequence[Optional[StatePartition]]] = None,
        config: Optional[APConfig] = None,
        n_segments: int = 8,
        backend: Optional[str] = "auto",
        cache=None,
        shard: Union[bool, ShardPlan] = False,
        max_shard_states: Optional[int] = None,
    ):
        if not dfas:
            raise ValueError("need at least one FSM")
        self.config = config or APConfig()
        self.n_segments = int(n_segments)
        self.dfas: List[Dfa] = list(dfas)
        partitions = list(partitions) if partitions is not None else [None] * len(dfas)
        if len(partitions) != len(self.dfas):
            raise ValueError("one partition (or None) per FSM required")

        # -- dedupe: identical partition-less rulesets scan once --------
        seen: Dict[Tuple, int] = {}
        self.unique_of: List[int] = []      # original index -> unique slot
        self.unique_indices: List[int] = []  # unique slot -> first original
        unique_dfas: List[Dfa] = []
        unique_partitions: List[Optional[StatePartition]] = []
        for i, (dfa, partition) in enumerate(zip(self.dfas, partitions)):
            fp = dfa.fingerprint if partition is None else None
            if fp is not None and fp in seen:
                self.unique_of.append(seen[fp])
                continue
            slot = len(unique_dfas)
            if fp is not None:
                seen[fp] = slot
            unique_dfas.append(dfa)
            unique_partitions.append(partition)
            self.unique_indices.append(i)
            self.unique_of.append(slot)
        self.n_duplicates = len(self.dfas) - len(unique_dfas)
        if self.n_duplicates and obs.is_enabled():
            obs.counter("fleet_deduped_machines_total").inc(self.n_duplicates)

        # -- sharding: pack unique machines into product units ----------
        self.plan: Optional[ShardPlan] = None
        if shard:
            if any(p is not None for p in partitions):
                raise ValueError(
                    "explicit partitions are per-machine objects and cannot "
                    "be combined with shard="
                )
            if isinstance(shard, ShardPlan):
                covered = sorted(
                    i for s in shard.shards for i in s.member_indices
                )
                if covered != list(range(len(unique_dfas))):
                    raise ValueError(
                        "shard plan must cover every deduped fleet machine "
                        "exactly once"
                    )
                self.plan = shard
            else:
                self.plan = plan_shards(
                    unique_dfas,
                    max_states=max_shard_states,
                    config=self.config,
                )
            self.shards: Tuple[ShardMachine, ...] = self.plan.shards
            unit_dfas: List[Dfa] = [s.dfa for s in self.shards]
        else:
            self.shards = ()
            unit_dfas = unique_dfas

        # -- per-unit engines, backends, compiled artifacts -------------
        self.n_units = len(unit_dfas)
        per_unit_cores = max(1, self.config.total_half_cores // self.n_units)
        cores_per_segment = max(1, per_unit_cores // self.n_segments)
        self.unit_engines: List[Engine] = []
        self.unit_backends: List[str] = []
        self.unit_compiled: List = []
        for u, dfa in enumerate(unit_dfas):
            partition = None if self.plan is not None else unique_partitions[u]
            compiled = None
            if cache is not None and partition is None:
                # units share one cache; singleton shards carry the member
                # Dfa itself, so their artifacts are the per-machine ones
                compiled = cache.get_or_compile(
                    dfa, backend=backend or "auto", n_segments=self.n_segments
                )
                partition = compiled.partition
            elif partition is None:
                partition = StatePartition.trivial(dfa.num_states)
            self.unit_compiled.append(compiled)
            # same shared default-resolution helper StreamScanner uses
            self.unit_backends.append(
                compiled.backend
                if compiled is not None
                else resolve_backend(dfa, backend, partition, self.n_segments)
            )
            self.unit_engines.append(
                CseEngine(
                    dfa,
                    n_segments=self.n_segments,
                    cores_per_segment=cores_per_segment,
                    config=self.config,
                    partition=partition,
                )
            )
        #: how many units can run concurrently on the rank
        self.concurrency = max(
            1, self.config.total_half_cores // max(1, per_unit_cores)
        )

    # -- per-machine views (shared unit objects) ------------------------
    def _unit_of(self, original: int) -> int:
        slot = self.unique_of[original]
        if self.plan is None:
            return slot
        return self.plan.member_to_shard()[slot][0]

    @property
    def engines(self) -> List[Engine]:
        """Per-original-machine view of the unit engines (shared objects)."""
        return [self.unit_engines[self._unit_of(i)] for i in range(len(self.dfas))]

    @property
    def backends(self) -> List[str]:
        return [self.unit_backends[self._unit_of(i)] for i in range(len(self.dfas))]

    @property
    def compiled(self) -> List:
        return [self.unit_compiled[self._unit_of(i)] for i in range(len(self.dfas))]

    # -- scanning -------------------------------------------------------
    def _round_cycles(self, per_unit_cycles: List[int]) -> int:
        # units run `concurrency` at a time; rounds are serialized
        ordered = sorted(per_unit_cycles, reverse=True)
        cycles = 0
        for round_start in range(0, len(ordered), self.concurrency):
            cycles += ordered[round_start]  # slowest of the round
        return cycles

    def _fan_out(
        self, per_slot: Dict[int, List[Tuple[int, int]]]
    ) -> Dict[int, List[Tuple[int, int]]]:
        """Expand per-unique-slot results back to every original machine."""
        return {
            i: per_slot[self.unique_of[i]] for i in range(len(self.dfas))
        }

    def scan(self, symbols) -> FleetResult:
        """Run every scan unit over the input; verify against sequential.

        Reports are keyed by *original* machine index regardless of
        dedupe or sharding, and are bit-identical to each machine's own
        sequential :meth:`Dfa.run_reports`.  With observability enabled
        the whole fleet pass shares one trace id, and a per-scan summary
        (units, shards, cycles) lands in the flight recorder.
        """
        if not obs.is_enabled():
            return self._scan(symbols)
        with obs.trace() as trace_id:
            result = self._scan(symbols)
        obs.record_scan(
            kind="fleet",
            trace_id=trace_id,
            n_fsms=result.n_fsms,
            n_units=self.n_units,
            n_shards=len(self.shards),
            n_symbols=result.n_symbols,
            cycles=result.cycles,
        )
        return result

    def _scan(self, symbols) -> FleetResult:
        syms = as_symbols(symbols)
        per_unit_cycles: List[int] = []
        per_slot: Dict[int, List[Tuple[int, int]]] = {}
        collect = obs.is_enabled()
        wall = time.time()
        begin = time.perf_counter()
        if self.plan is not None:
            for s, (shard, engine) in enumerate(
                zip(self.shards, self.unit_engines)
            ):
                run = engine.run(syms)
                final, demuxed = shard.scan_sequential(syms)
                if run.final_state != final:
                    raise AssertionError(
                        f"fleet shard {s} diverged from demux oracle"
                    )
                per_slot.update(demuxed)
                per_unit_cycles.append(run.cycles)
                if collect:
                    obs.gauge("fleet_shard_throughput", shard=s).set(
                        throughput_symbols_per_sec(
                            int(syms.size), run.cycles, self.config
                        )
                    )
        else:
            for slot, engine in enumerate(self.unit_engines):
                run = engine.run(syms)
                sequential = SequentialEngine(
                    engine.dfa, config=self.config
                ).run(syms)
                if run.final_state != sequential.final_state:
                    raise AssertionError(
                        f"fleet FSM {self.unique_indices[slot]} diverged "
                        "from oracle"
                    )
                per_slot[slot] = sequential.reports or []
                per_unit_cycles.append(run.cycles)
                if collect:
                    obs.gauge(
                        "fleet_machine_throughput",
                        fsm=self.unique_indices[slot],
                    ).set(
                        throughput_symbols_per_sec(
                            int(syms.size), run.cycles, self.config
                        )
                    )
                    obs.counter(
                        "fleet_machine_reports_total",
                        fsm=self.unique_indices[slot],
                    ).inc(len(per_slot[slot]))
        reports = self._fan_out(per_slot)
        cycles = self._round_cycles(per_unit_cycles)
        if collect:
            obs.record_span("fleet.scan", wall, time.perf_counter() - begin,
                            n_fsms=len(self.dfas), n_units=self.n_units,
                            n_symbols=int(syms.size))
            obs.counter("fleet_scans_total").inc()
        return FleetResult(
            n_fsms=len(self.dfas),
            n_symbols=int(syms.size),
            reports=reports,
            cycles=int(cycles),
            config=self.config,
            n_scans=self.n_units,
        )

    def scan_wallclock(self, symbols, verify: bool = True) -> "FleetWallclock":
        """Measured-seconds fleet scan on the software kernels.

        Runs every scan unit's software CSE scan with its resolved kernel
        backend and reports real wall-clock, the deployment-facing
        counterpart of the cycle-model :meth:`scan`.  ``verify=False``
        skips the per-unit sequential oracle (pure kernel timing — the
        benchmark path); correctness is still pinned by :meth:`scan` and
        the equivalence tests.  :attr:`FleetWallclock.final_states` is
        always per *original* machine, demuxed out of shard units.

        With observability enabled the whole fleet pass shares one trace
        id — each unit's ``software_cse_scan`` joins it — and a per-scan
        summary (units, shards, backends, wallclock) lands in the flight
        recorder.
        """
        if not obs.is_enabled():
            return self._scan_wallclock(symbols, verify)
        with obs.trace() as trace_id:
            result = self._scan_wallclock(symbols, verify)
        obs.record_scan(
            kind="fleet_wallclock",
            trace_id=trace_id,
            n_fsms=len(self.dfas),
            n_units=self.n_units,
            n_shards=len(self.shards),
            backends=",".join(sorted(set(self.unit_backends))),
            elapsed_seconds=result.elapsed_seconds,
            reexec_segments=sum(r.reexec_segments for r in result.runs),
        )
        return result

    def _scan_wallclock(self, symbols, verify: bool = True) -> "FleetWallclock":
        from repro.software import software_cse_scan

        syms = as_symbols(symbols)
        runs = []
        collect = obs.is_enabled()
        wall = time.time()
        begin = time.perf_counter()
        for u, (engine, backend, compiled) in enumerate(
            zip(self.unit_engines, self.unit_backends, self.unit_compiled)
        ):
            run = software_cse_scan(
                engine.dfa,
                syms,
                engine.partition,
                n_segments=self.n_segments,
                backend=backend,
                verify=verify,
                compiled=compiled,
            )
            runs.append(run)
            if collect and run.elapsed_seconds > 0:
                label = "fleet_shard_wallclock_throughput" \
                    if self.plan is not None else \
                    "fleet_machine_wallclock_throughput"
                obs.gauge(label, fsm=u).set(
                    run.n_symbols / run.elapsed_seconds
                )
        # demux per-unit final states back to per-original-machine finals
        slot_finals: Dict[int, int] = {}
        if self.plan is not None:
            for shard, run in zip(self.shards, runs):
                slot_finals.update(shard.demux_finals(run.final_state))
        else:
            for slot, run in enumerate(runs):
                slot_finals[slot] = int(run.final_state)
        final_states = [
            slot_finals[self.unique_of[i]] for i in range(len(self.dfas))
        ]
        if collect:
            obs.record_span("fleet.scan_wallclock", wall,
                            time.perf_counter() - begin,
                            n_fsms=len(self.dfas), n_units=self.n_units,
                            n_symbols=int(syms.size))
        return FleetWallclock(runs=runs, final_states=final_states)


@dataclass
class FleetWallclock:
    """Wall-clock outcome of :meth:`FleetScanner.scan_wallclock`."""

    runs: List  # List[repro.software.SoftwareRun], one per scan unit
    #: final state per *original* machine (demuxed in shard mode)
    final_states: Optional[List[int]] = None

    @property
    def sequential_seconds(self) -> float:
        return sum(r.sequential_seconds for r in self.runs)

    @property
    def elapsed_seconds(self) -> float:
        return sum(r.elapsed_seconds for r in self.runs)

    @property
    def critical_path_seconds(self) -> float:
        """Units run concurrently: the fleet latency is the slowest unit."""
        return max(r.critical_path_seconds for r in self.runs)

    @property
    def work_speedup(self) -> float:
        path = self.critical_path_seconds
        return self.sequential_seconds / path if path > 0 else float("inf")
