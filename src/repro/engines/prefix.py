"""Parallel-prefix FSM execution (the classical software approach).

Section VII's related work traces enumerative FSM back to parallel prefix
computation (Ladner & Fischer; Hillis & Steele; Mytkowicz et al.'s DPFSM):
a segment's effect is the full ``state -> state`` mapping — a function on
Q — and function composition is associative, so m segment mappings reduce
in O(log m) *rounds* of pairwise composition instead of a linear chain.

On the AP this buys little (the paper's engines chain in negligible time
because each segment's mapping collapses during enumeration), but as a
software baseline it is the canonical comparator, and it showcases what
CSE discards: the prefix approach must *materialize* every mapping
(N values per segment), which is exactly the ``state -> state`` overhead
CSE's set-formulation avoids.

Cost model: each enumerative segment computes its mapping with per-state
flows (same dynamic merging as the enumerative engine); the composition
tree then costs ``ceil(log2(m))`` rounds of N-lookup composition on the
critical path.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.engines.base import Engine, RunResult, SegmentTrace, even_boundaries
from repro.engines.enumerative import absorbing_dead_states, enumerate_all_states
from repro.hardware.cost import segment_cycles

__all__ = ["PrefixEngine", "compose_mappings"]


def compose_mappings(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Composition ``second after first`` of full state mappings.

    ``result[q] = second[first[q]]`` — the machine runs the first
    segment, then the second.
    """
    return second[first]


class PrefixEngine(Engine):
    """Enumerative FSM with log-depth mapping composition.

    Functionally identical to :class:`EnumerativeEngine`; differs only in
    how per-segment results are combined (tree instead of chain) and in
    charging that combination on the critical path.  Exists as the
    related-work software baseline and for ablating composition cost.
    """

    display_name = "Prefix"
    building_block = "state FSM"
    static_optimization = "parallel prefix composition"
    dynamic_optimization = "convergence check and deactivation check"

    def __init__(
        self,
        dfa: Dfa,
        n_segments: int = 16,
        cores_per_segment: int = 1,
        config=None,
        deactivate: bool = True,
    ):
        super().__init__(dfa, n_segments, cores_per_segment, config)
        self._inactive = absorbing_dead_states(dfa) if deactivate else frozenset()

    def run(self, symbols, start_state: Optional[int] = None) -> RunResult:
        syms, start = self._prepare(symbols, start_state)
        bounds = even_boundaries(int(syms.size), self.n_segments)
        traces: List[SegmentTrace] = []
        mappings: List[np.ndarray] = []
        n = self.dfa.num_states
        for i, (a, b) in enumerate(bounds):
            segment = syms[a:b]
            starts, finals, r_trace = enumerate_all_states(
                self.dfa, segment, inactive=self._inactive
            )
            # full mapping vector over all states
            mapping = np.empty(n, dtype=np.int32)
            mapping[starts] = finals
            mappings.append(mapping)
            cycles = segment_cycles(
                r_trace[:-1], self.cores_per_segment, self.config, checks=True
            )
            traces.append(SegmentTrace(a, b, r_trace, cycles))

        # log-depth composition tree; each round composes pairs in parallel
        rounds = 0
        level = mappings
        while len(level) > 1:
            rounds += 1
            nxt: List[np.ndarray] = []
            for j in range(0, len(level) - 1, 2):
                nxt.append(compose_mappings(level[j], level[j + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        total_mapping = level[0]
        final = int(total_mapping[start])

        # composition cost: one N-lookup pass per round on the critical path
        composition_cycles = rounds * n * self.config.symbol_cycles
        result = self._finalize(
            syms,
            final,
            traces,
            serial_tail=composition_cycles,
            composition_rounds=rounds,
            composition_cycles=composition_cycles,
        )
        return result

    @staticmethod
    def expected_rounds(n_segments: int) -> int:
        """Composition-tree depth for a given segment count."""
        return max(0, math.ceil(math.log2(max(1, n_segments))))
