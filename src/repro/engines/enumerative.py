"""Basic enumerative FSM (the DPFSM approach, Section II-B).

The input is cut into equal segments.  Segment 0 runs from the concrete
start state; every other segment enumerates *all* N states, with the
dynamic convergence check merging flows whose current states coincide and
the deactivation check dropping flows absorbed in the dead sink.  After all
segments finish, the concrete state is chained through the per-segment
``state -> state`` mappings.

The flow bookkeeping uses a representative trick: ``reps`` holds the
distinct live states and ``index[s]`` says which representative carries the
enumeration path that started at ``s``.  Merging is then a ``np.unique``
per symbol, exactly mirroring the hardware's pairwise convergence checks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.automata import analysis
from repro.automata.dfa import Dfa
from repro.engines.base import Engine, RunResult, SegmentTrace, even_boundaries
from repro.hardware.cost import segment_cycles

__all__ = ["EnumerativeEngine", "absorbing_dead_states", "enumerate_all_states"]


def absorbing_dead_states(dfa: Dfa) -> frozenset:
    """States that are dead *and* absorbing — safe to deactivate.

    A flow parked on such a state needs no further computation: its mapping
    is the identity and it can produce no reports.  (In a minimized scan
    DFA all dead states collapse into one absorbing sink, so this set is
    the paper's "dead state" deactivation target.)
    """
    dead = analysis.dead_states(dfa)
    absorbing = np.zeros(dfa.num_states, dtype=bool)
    loops = analysis.always_active_states(dfa)
    absorbing[loops] = True
    return frozenset(int(q) for q in np.flatnonzero(dead & absorbing))


def enumerate_all_states(
    dfa: Dfa,
    segment: np.ndarray,
    initial_states: Optional[np.ndarray] = None,
    inactive: frozenset = frozenset(),
) -> Tuple[np.ndarray, np.ndarray, List[int]]:
    """Enumerate ``state -> state`` paths for a set of start states.

    Returns ``(starts, finals, r_trace)`` where ``finals[i]`` is the end
    state of the path starting at ``starts[i]`` and ``r_trace`` has one
    entry per symbol *plus a trailing entry*: ``r_trace[t]`` is the number
    of chargeable flows entering symbol ``t`` (merged flows counted once,
    flows parked on ``inactive`` states counted zero) and ``r_trace[-1]``
    is the count after the last symbol (the segment's RT).
    """
    if initial_states is None:
        starts = np.arange(dfa.num_states, dtype=np.int32)
    else:
        starts = np.unique(np.asarray(initial_states, dtype=np.int32))
    reps = starts.copy()
    index = np.arange(reps.size, dtype=np.int64)
    inactive_arr = np.asarray(sorted(inactive), dtype=np.int32)

    def live_count(current: np.ndarray) -> int:
        if inactive_arr.size == 0:
            return int(current.size)
        parked = np.isin(current, inactive_arr)
        return int(current.size - np.count_nonzero(parked))

    table = dfa.transitions
    r_trace: List[int] = [live_count(reps)]
    for sym in segment:
        reps = table[sym].take(reps)
        reps, inverse = np.unique(reps, return_inverse=True)
        index = inverse[index]
        r_trace.append(live_count(reps))
    finals = reps[index]
    return starts, finals, r_trace


class EnumerativeEngine(Engine):
    """Data-Parallel FSM: full enumeration with dynamic checks."""

    display_name = "Enumerative"
    building_block = "state FSM"
    static_optimization = "NA"
    dynamic_optimization = "convergence check and deactivation check"

    def __init__(
        self,
        dfa: Dfa,
        n_segments: int = 16,
        cores_per_segment: int = 1,
        config=None,
        deactivate: bool = True,
    ):
        super().__init__(dfa, n_segments, cores_per_segment, config)
        self._inactive = absorbing_dead_states(dfa) if deactivate else frozenset()

    def run(self, symbols, start_state: Optional[int] = None) -> RunResult:
        syms, start = self._prepare(symbols, start_state)
        bounds = even_boundaries(int(syms.size), self.n_segments)
        traces: List[SegmentTrace] = []
        mappings: List[Tuple[np.ndarray, np.ndarray]] = []
        concrete_final = start
        for i, (a, b) in enumerate(bounds):
            segment = syms[a:b]
            if i == 0:
                concrete_final = self.dfa.run(segment, start)
                cycles = int(segment.size) * self.config.symbol_cycles
                traces.append(
                    SegmentTrace(a, b, [1] * (int(segment.size) + 1), cycles)
                )
                continue
            starts, finals, r_trace = enumerate_all_states(
                self.dfa, segment, inactive=self._inactive
            )
            cycles = segment_cycles(
                r_trace[:-1], self.cores_per_segment, self.config, checks=True
            )
            traces.append(SegmentTrace(a, b, r_trace, cycles))
            mappings.append((starts, finals))

        state = int(concrete_final)
        for starts, finals in mappings:
            pos = int(np.searchsorted(starts, state))
            state = int(finals[pos])
        return self._finalize(syms, state, traces)
