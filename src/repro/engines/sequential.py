"""The sequential baseline: Figure 1 of the paper.

One flow, one symbol per cycle, no enumeration.  Every other engine must
reproduce this engine's final state (and reports) exactly; the experiment
harness also uses its cycle count as the speedup denominator.
"""

from __future__ import annotations

from typing import Optional

from repro.engines.base import Engine, RunResult, SegmentTrace

__all__ = ["SequentialEngine"]


class SequentialEngine(Engine):
    """Table II "Baseline": plain table-driven execution."""

    display_name = "Baseline"
    building_block = "state FSM"
    static_optimization = "NA"
    dynamic_optimization = "NA"

    def __init__(self, dfa, config=None):
        super().__init__(dfa, n_segments=1, cores_per_segment=1, config=config)

    def run(self, symbols, start_state: Optional[int] = None) -> RunResult:
        syms, start = self._prepare(symbols, start_state)
        final = self.dfa.run(syms, start)
        cycles = int(syms.size) * self.config.symbol_cycles
        trace = SegmentTrace(0, int(syms.size), [1] * (int(syms.size) + 1), cycles)
        result = self._finalize(syms, final, [trace])
        result.reports = self.dfa.run_reports(syms, start)
        return result
