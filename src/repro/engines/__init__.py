"""Parallel FSM engines: the baseline and the paper's comparators.

- :class:`~repro.engines.sequential.SequentialEngine` — Figure 1's loop,
  1 symbol/cycle ("Baseline" in Table II).
- :class:`~repro.engines.enumerative.EnumerativeEngine` — basic enumerative
  FSM / DPFSM with dynamic convergence + deactivation checks.
- :class:`~repro.engines.lbe.LbeEngine` — Lookback Enumeration: a set-FSM
  lookback over the previous segment's suffix shrinks the start set before
  per-state enumeration ("LBE").
- :class:`~repro.engines.pap.PapEngine` — Parallel Automata Processor with
  its four static optimizations and dynamic checks ("PAP").

The paper's own design, CSE, lives in :mod:`repro.core.engine` and shares
the same :class:`~repro.engines.base.Engine` interface.
"""

from repro.engines.base import Engine, RunResult, SegmentTrace, even_boundaries
from repro.engines.sequential import SequentialEngine
from repro.engines.enumerative import EnumerativeEngine
from repro.engines.lbe import LbeEngine
from repro.engines.pap import PapEngine
from repro.engines.prefix import PrefixEngine

__all__ = [
    "Engine",
    "RunResult",
    "SegmentTrace",
    "even_boundaries",
    "SequentialEngine",
    "EnumerativeEngine",
    "LbeEngine",
    "PapEngine",
    "PrefixEngine",
]
