"""Lookback Enumeration (LBE, Section II-C).

Each enumerative segment first *looks back* over the last ``L`` symbols of
the previous segment.  That pass starts from all N states but is executed
with the set-FSM primitive — a single flow, ``L`` cycles — and yields the
set of states the machine can possibly be in at the segment boundary
(``R0 <= N``).  Enumeration then runs only those ``R0`` paths.

Following the paper's methodology (Section V-C) we implement LBE *without*
start-state prediction: the true boundary state always lies in the looked-
back set (it is the image of the previous segment's suffix), so this
variant never re-executes.  The probabilistic prediction schemes of the
software literature are excluded for the same reason the paper excludes
them — they are impractical in hardware.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.engines.base import Engine, RunResult, SegmentTrace, even_boundaries
from repro.engines.enumerative import absorbing_dead_states, enumerate_all_states
from repro.hardware.cost import segment_cycles

__all__ = ["LbeEngine"]


class LbeEngine(Engine):
    """Table II "LBE": set-FSM lookback, then per-state enumeration.

    Parameters
    ----------
    lookback:
        Number of suffix symbols of the previous segment to scan (the
        paper's ``L``; Table I uses 10-50, Figure 15 sweeps 10-100).
    """

    display_name = "LBE"
    building_block = "state and set FSM"
    static_optimization = "NA"
    dynamic_optimization = "lookback"

    def __init__(
        self,
        dfa: Dfa,
        n_segments: int = 16,
        cores_per_segment: int = 1,
        config=None,
        lookback: int = 20,
        deactivate: bool = True,
    ):
        super().__init__(dfa, n_segments, cores_per_segment, config)
        if lookback < 0:
            raise ValueError("lookback must be >= 0")
        self.lookback = lookback
        self._inactive = absorbing_dead_states(dfa) if deactivate else frozenset()

    def run(self, symbols, start_state: Optional[int] = None) -> RunResult:
        syms, start = self._prepare(symbols, start_state)
        bounds = even_boundaries(int(syms.size), self.n_segments)
        traces: List[SegmentTrace] = []
        mappings: List[Tuple[np.ndarray, np.ndarray]] = []
        concrete_final = start
        all_states = np.arange(self.dfa.num_states, dtype=np.int32)
        for i, (a, b) in enumerate(bounds):
            segment = syms[a:b]
            if i == 0:
                concrete_final = self.dfa.run(segment, start)
                cycles = int(segment.size) * self.config.symbol_cycles
                traces.append(
                    SegmentTrace(a, b, [1] * (int(segment.size) + 1), cycles)
                )
                continue
            # Lookback: one set-flow over the previous segment's suffix.
            prev_start = bounds[i - 1][0]
            lb_from = max(prev_start, a - self.lookback)
            suffix = syms[lb_from:a]
            possible = self.dfa.set_run(all_states, suffix)
            lookback_cycles = int(suffix.size) * self.config.symbol_cycles
            # Enumerate only the looked-back start set.
            starts, finals, r_trace = enumerate_all_states(
                self.dfa, segment, initial_states=possible, inactive=self._inactive
            )
            cycles = segment_cycles(
                r_trace[:-1],
                self.cores_per_segment,
                self.config,
                checks=True,
                prologue_cycles=lookback_cycles,
            )
            traces.append(SegmentTrace(a, b, r_trace, cycles))
            mappings.append((starts, finals))

        state = int(concrete_final)
        for starts, finals in mappings:
            pos = int(np.searchsorted(starts, state))
            if pos >= starts.size or starts[pos] != state:
                raise AssertionError(
                    "LBE invariant violated: boundary state missing from the "
                    "looked-back start set"
                )
            state = int(finals[pos])
        return self._finalize(syms, state, traces)
