"""Common engine interface and run-result records.

Every engine consumes one input string and produces a :class:`RunResult`
carrying the *functional* output (final state, equal to the sequential
oracle's by construction) and the *performance* output (cycles on the AP
cost model, per-segment R traces, re-execution counts).  The experiment
harness compares engines purely through these records.
"""

from __future__ import annotations

import abc
import functools
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.automata.dfa import Dfa, as_symbols
from repro.hardware.ap import APConfig
from repro.hardware.cost import parallel_cycles, throughput_symbols_per_sec

__all__ = [
    "Engine",
    "RunResult",
    "SegmentTrace",
    "even_boundaries",
    "stack_segments",
]


def even_boundaries(n_symbols: int, n_segments: int) -> List[Tuple[int, int]]:
    """Split ``[0, n_symbols)`` into ``n_segments`` near-equal spans.

    The first segments absorb the remainder, matching the paper's "always
    divide into equal segments" for LBE/CSE.  Segments never come out empty
    unless the input is shorter than the segment count, in which case the
    trailing spans are empty and engines skip them.
    """
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    base, rem = divmod(n_symbols, n_segments)
    bounds = []
    pos = 0
    for i in range(n_segments):
        length = base + (1 if i < rem else 0)
        bounds.append((pos, pos + length))
        pos += length
    return bounds


def stack_segments(segments: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack ragged segments into an ``(n, max_len)`` int64 symbol matrix.

    Returns ``(matrix, lengths)``.  Rows shorter than ``max_len`` are padded
    with symbol 0; the batched kernels never read padded cells because they
    mask stepping by ``lengths > position``.  ``even_boundaries`` produces
    lengths that differ by at most one, so in practice only the final
    position is ragged.
    """
    lengths = np.asarray([int(len(s)) for s in segments], dtype=np.int64)
    max_len = int(lengths.max()) if lengths.size else 0
    matrix = np.zeros((len(segments), max_len), dtype=np.int64)
    for i, seg in enumerate(segments):
        matrix[i, : lengths[i]] = seg
    return matrix, lengths


@dataclass
class SegmentTrace:
    """Per-segment execution record.

    ``r_trace`` has one entry per symbol plus a trailing entry:
    ``r_trace[t]`` is the number of live flows *entering* symbol ``t`` and
    ``r_trace[-1]`` is the count after the last symbol (the segment's RT).
    ``cycles`` is the integrated cost including any prologue (e.g. LBE
    lookback).
    """

    start: int
    end: int
    r_trace: List[int]
    cycles: int

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def r0(self) -> int:
        """Flows at the start of enumeration (1 for the concrete segment)."""
        return self.r_trace[0] if self.r_trace else 1

    @property
    def rt(self) -> int:
        """Flows at the end of the segment."""
        return self.r_trace[-1] if self.r_trace else 1


@dataclass
class RunResult:
    """Outcome of one engine run over one input string."""

    engine: str
    n_symbols: int
    final_state: int
    cycles: int
    config: APConfig
    segments: List[SegmentTrace] = field(default_factory=list)
    reexec_segments: int = 0
    reexec_cycles: int = 0
    reports: Optional[List[Tuple[int, int]]] = None
    details: Dict = field(default_factory=dict)

    @property
    def n_segments(self) -> int:
        return max(1, len(self.segments))

    @property
    def baseline_cycles(self) -> int:
        """Cycles a sequential FSM would take (1 symbol/cycle)."""
        return self.n_symbols * self.config.symbol_cycles

    @property
    def speedup(self) -> float:
        """Throughput gain over the sequential baseline."""
        if self.cycles <= 0:
            return float("inf")
        return self.baseline_cycles / self.cycles

    @property
    def ideal_speedup(self) -> float:
        """Upper bound: every segment at 1 symbol/cycle."""
        return float(self.n_segments)

    @property
    def throughput(self) -> float:
        """Symbols per second under the AP clock."""
        return throughput_symbols_per_sec(self.n_symbols, self.cycles, self.config)

    def r0_values(self) -> List[int]:
        """R0 of the *enumerative* segments (all but the first)."""
        return [s.r0 for s in self.segments[1:]] or [1]

    def rt_values(self) -> List[int]:
        """RT of the enumerative segments."""
        return [s.rt for s in self.segments[1:]] or [1]

    @property
    def r0_mean(self) -> float:
        return statistics.fmean(self.r0_values())

    @property
    def rt_mean(self) -> float:
        return statistics.fmean(self.rt_values())


def _instrument_run(run):
    """Wrap an engine's ``run`` with a span + counters when obs is on.

    Applied automatically to every concrete override via
    :meth:`Engine.__init_subclass__`, so individual engines stay
    telemetry-free.  Engines that delegate to an inherited ``run``
    (e.g. adaptive calling ``super().run``) are guarded against double
    counting with a per-instance reentrancy flag.
    """

    @functools.wraps(run)
    def wrapper(self, symbols, start_state=None):
        if not obs.is_enabled() or getattr(self, "_obs_in_run", False):
            return run(self, symbols, start_state)
        self._obs_in_run = True
        wall = time.time()
        begin = time.perf_counter()
        try:
            result = run(self, symbols, start_state)
        finally:
            self._obs_in_run = False
        duration = time.perf_counter() - begin
        name = self.name
        obs.record_span("engine.run", wall, duration, engine=name,
                        n_symbols=result.n_symbols, cycles=result.cycles)
        obs.counter("engine_runs_total", engine=name).inc()
        obs.counter("engine_symbols_total", engine=name).inc(result.n_symbols)
        obs.counter("engine_cycles_total", engine=name).inc(result.cycles)
        obs.counter("engine_reexec_segments_total", engine=name).inc(
            result.reexec_segments
        )
        obs.counter("engine_r0_total", engine=name).inc(
            sum(result.r0_values())
        )
        obs.counter("engine_rt_total", engine=name).inc(
            sum(result.rt_values())
        )
        obs.counter("engine_diverged_segments_total", engine=name).inc(
            sum(1 for s in result.segments[1:] if s.rt > 1)
        )
        obs.histogram("engine_run_seconds", engine=name).observe(duration)
        return result

    wrapper.__obs_wrapped__ = True
    return wrapper


class Engine(abc.ABC):
    """A parallel FSM execution design under the AP cost model.

    Parameters
    ----------
    dfa:
        The machine to execute.
    n_segments:
        Parallel segments the input is cut into (paper: Table I).
    cores_per_segment:
        Half-cores allocated to each segment (Table I's "#Half-Core per
        Segment"); more cores cut the time-multiplexing penalty of high R.
    config:
        AP cost constants.
    """

    #: Table II metadata, overridden per engine.
    building_block = "state FSM"
    static_optimization = "NA"
    dynamic_optimization = "NA"
    #: Display name used in results and figures (paper's design labels).
    display_name: Optional[str] = None

    def __init__(
        self,
        dfa: Dfa,
        n_segments: int = 16,
        cores_per_segment: int = 1,
        config: Optional[APConfig] = None,
    ):
        if n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        if cores_per_segment < 1:
            raise ValueError("cores_per_segment must be >= 1")
        self.dfa = dfa
        self.n_segments = n_segments
        self.cores_per_segment = cores_per_segment
        self.config = config or APConfig()

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        run = cls.__dict__.get("run")
        if run is not None and not getattr(run, "__obs_wrapped__", False):
            cls.run = _instrument_run(run)

    @property
    def name(self) -> str:
        return self.display_name or type(self).__name__.replace("Engine", "")

    @abc.abstractmethod
    def run(self, symbols, start_state: Optional[int] = None) -> RunResult:
        """Execute one input string and return the run record."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _prepare(self, symbols, start_state: Optional[int]):
        syms = as_symbols(symbols)
        if syms.size:
            low, high = int(syms.min()), int(syms.max())
            if low < 0 or high >= self.dfa.alphabet_size:
                raise ValueError(
                    f"input symbols [{low}, {high}] outside the DFA alphabet "
                    f"[0, {self.dfa.alphabet_size})"
                )
        start = self.dfa.start if start_state is None else int(start_state)
        if not (0 <= start < self.dfa.num_states):
            raise ValueError(f"start state {start} out of range")
        return syms, start

    def _finalize(
        self,
        syms: np.ndarray,
        final_state: int,
        segments: List[SegmentTrace],
        serial_tail: int = 0,
        **details,
    ) -> RunResult:
        cycles = parallel_cycles((s.cycles for s in segments), serial_tail)
        return RunResult(
            engine=self.name,
            n_symbols=int(syms.size),
            final_state=int(final_state),
            cycles=int(cycles),
            config=self.config,
            segments=segments,
            reexec_cycles=int(serial_tail),
            details=details,
        )

    def run_many(self, strings: Sequence, start_state: Optional[int] = None) -> List[RunResult]:
        """Run a batch of independent strings (the paper's split inputs)."""
        return [self.run(s, start_state) for s in strings]
