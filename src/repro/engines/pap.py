"""Parallel Automata Processor (PAP, Section II-D).

PAP enumerates with per-state flows but shrinks ``R0`` with four static
optimizations before execution starts:

1. **Range-guided input partition** — segment boundaries are moved (within
   a window) to positions where the preceding symbol has a small *feasible
   range*: after reading symbol ``c`` the machine must be in
   ``image(c) = {delta(q, c) : q}``, so that image is the start set.
   Segments come out uneven — the paper (Section VI-B) blames PAP's small
   residual slowdown vs CSE on exactly this.
2. **Common parent** — if the feasible range one symbol earlier is smaller,
   move the boundary one symbol earlier and enumerate the parents instead.
3. **Active state group** — absorbing states (self-loop on every symbol)
   have identity mappings and are never enumerated.
4. **Connected component analysis** — the start set is split by undirected
   connected components of the transition graph; one state per component is
   packed into a single flow (states cannot collide across disjoint,
   transition-closed components).  The price, which Section VI-C measures:
   packed flows only merge when *every* packed pair converges, so dynamic
   convergence weakens as components multiply.

Dynamic optimizations (convergence + deactivation checks) run during
enumeration, as in the basic enumerative engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.automata import analysis
from repro.automata.dfa import Dfa
from repro.engines.base import Engine, RunResult, SegmentTrace, even_boundaries
from repro.engines.enumerative import absorbing_dead_states
from repro.hardware.cost import segment_cycles

__all__ = ["PapEngine"]


class PapEngine(Engine):
    """Table II "PAP": four static optimizations + dynamic checks."""

    display_name = "PAP"
    building_block = "state FSM"
    static_optimization = "four optimizations in Section II-D"
    dynamic_optimization = "convergence check and deactivation check"

    def __init__(
        self,
        dfa: Dfa,
        n_segments: int = 16,
        cores_per_segment: int = 1,
        config=None,
        boundary_window_frac: float = 0.1,
        use_range_partition: bool = True,
        use_common_parent: bool = True,
        use_active_group: bool = True,
        use_connected_components: bool = True,
    ):
        super().__init__(dfa, n_segments, cores_per_segment, config)
        self.boundary_window_frac = float(boundary_window_frac)
        self.use_range_partition = use_range_partition
        self.use_common_parent = use_common_parent
        self.use_active_group = use_active_group
        self.use_connected_components = use_connected_components
        inactive = absorbing_dead_states(dfa)
        self._inactive_mask = np.zeros(dfa.num_states, dtype=bool)
        if inactive:
            self._inactive_mask[sorted(inactive)] = True
        self._absorbing = frozenset(
            int(q) for q in analysis.always_active_states(dfa)
        )
        self._image_sizes = analysis.symbol_image_sizes(dfa)
        self._images: Dict[int, np.ndarray] = {}
        # Component id per state (computed once; undirected components of
        # the full transition graph are closed under transitions).
        self._component_of = self._label_components()

    # ------------------------------------------------------------------
    # static structure
    # ------------------------------------------------------------------
    def _label_components(self) -> np.ndarray:
        labels = np.full(self.dfa.num_states, -1, dtype=np.int64)
        for idx, members in enumerate(analysis.connected_components(self.dfa)):
            labels[members] = idx
        return labels

    def _image(self, symbol: int) -> np.ndarray:
        symbol = int(symbol)
        if symbol not in self._images:
            self._images[symbol] = analysis.symbol_image(self.dfa, symbol)
        return self._images[symbol]

    def _choose_boundaries(self, syms: np.ndarray) -> List[Tuple[int, int]]:
        """Static boundary placement: range-guided cuts + common parent.

        A cut at position ``p`` means the next segment starts with symbol
        ``p`` and its feasible start set is ``image(syms[p-1])``.
        """
        bounds = even_boundaries(int(syms.size), self.n_segments)
        if len(bounds) < 2 or syms.size < 2:
            return bounds
        cuts = [b for (_, b) in bounds[:-1]]
        if self.use_range_partition:
            seg_len = max(1, syms.size // self.n_segments)
            window = max(1, int(seg_len * self.boundary_window_frac))
            adjusted: List[int] = []
            lo_limit = 1
            for cut in cuts:
                lo = max(lo_limit, cut - window)
                hi = min(int(syms.size) - 1, cut + window)
                if lo > hi:
                    best = min(max(cut, lo_limit), int(syms.size) - 1)
                else:
                    candidates = np.arange(lo, hi + 1)
                    sizes = self._image_sizes[syms[candidates - 1]]
                    best = int(candidates[int(np.argmin(sizes))])
                adjusted.append(best)
                lo_limit = best + 1
            cuts = adjusted
        if self.use_common_parent:
            # Moving a cut one symbol earlier trades one extra enumerated
            # symbol for a smaller start set (Figure 4 (d)).
            shifted: List[int] = []
            prev_edge = 0
            for cut in cuts:
                if (
                    cut >= 2
                    and cut - 1 > prev_edge
                    and self._image_sizes[syms[cut - 2]]
                    < self._image_sizes[syms[cut - 1]]
                ):
                    cut = cut - 1
                shifted.append(cut)
                prev_edge = cut
            cuts = shifted
        edges = [0] + cuts + [int(syms.size)]
        return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]

    # ------------------------------------------------------------------
    # per-segment enumeration
    # ------------------------------------------------------------------
    def _pack_flows(
        self, states: np.ndarray
    ) -> Tuple[np.ndarray, Dict[int, Tuple[int, int]]]:
        """Connected-component packing into a flow matrix.

        Returns ``(matrix, slot_of)`` where ``matrix[j, k]`` is the current
        state of flow ``j`` in component-column ``k`` (-1 = empty) and
        ``slot_of[state] = (j, k)`` locates each start state.
        """
        if self.use_connected_components:
            groups: Dict[int, List[int]] = {}
            for q in states:
                groups.setdefault(int(self._component_of[q]), []).append(int(q))
            columns = sorted(groups.values(), key=len, reverse=True)
        else:
            columns = [[int(q) for q in states]]
        n_flows = max(len(col) for col in columns)
        matrix = np.full((n_flows, len(columns)), -1, dtype=np.int32)
        slot_of: Dict[int, Tuple[int, int]] = {}
        for k, col in enumerate(columns):
            for j, q in enumerate(col):
                matrix[j, k] = q
                slot_of[q] = (j, k)
        return matrix, slot_of

    def _live_flow_count(self, matrix: np.ndarray) -> int:
        """Distinct flow rows, excluding rows fully parked on dead sinks.

        Two packed flows merge only when their entire rows coincide — the
        weakness of component packing the paper highlights.
        """
        rows = np.unique(matrix, axis=0)
        safe = np.where(rows >= 0, rows, 0)
        parked = self._inactive_mask[safe] | (rows < 0)
        return int(np.count_nonzero(~parked.all(axis=1)))

    def _enumerate_segment(
        self, segment: np.ndarray, states: np.ndarray
    ) -> Tuple[Dict[int, int], List[int]]:
        """Run packed-flow enumeration; returns (mapping, r_trace)."""
        if self.use_active_group:
            moving = [int(q) for q in states if int(q) not in self._absorbing]
            parked = [int(q) for q in states if int(q) in self._absorbing]
        else:
            moving = [int(q) for q in states]
            parked = []
        mapping = {q: q for q in parked}  # absorbing: identity, zero flows
        if not moving:
            return mapping, [0] * (int(segment.size) + 1)
        matrix, slot_of = self._pack_flows(np.asarray(moving, dtype=np.int32))
        table = self.dfa.transitions
        r_trace = [self._live_flow_count(matrix)]
        filled = matrix >= 0
        for sym in segment:
            matrix[filled] = table[sym].take(matrix[filled])
            r_trace.append(self._live_flow_count(matrix))
        for q, (j, k) in slot_of.items():
            mapping[q] = int(matrix[j, k])
        return mapping, r_trace

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self, symbols, start_state: Optional[int] = None) -> RunResult:
        syms, start = self._prepare(symbols, start_state)
        bounds = self._choose_boundaries(syms)
        traces: List[SegmentTrace] = []
        mappings: List[Dict[int, int]] = []
        concrete_final = start
        for i, (a, b) in enumerate(bounds):
            segment = syms[a:b]
            if i == 0:
                concrete_final = self.dfa.run(segment, start)
                cycles = int(segment.size) * self.config.symbol_cycles
                traces.append(
                    SegmentTrace(a, b, [1] * (int(segment.size) + 1), cycles)
                )
                continue
            if a >= b:
                traces.append(SegmentTrace(a, b, [0], 0))
                mappings.append({})
                continue
            feasible = self._image(syms[a - 1])
            mapping, r_trace = self._enumerate_segment(segment, feasible)
            cycles = segment_cycles(
                r_trace[:-1], self.cores_per_segment, self.config, checks=True
            )
            traces.append(SegmentTrace(a, b, r_trace, cycles))
            mappings.append(mapping)

        state = int(concrete_final)
        for mapping in mappings:
            if not mapping:
                continue
            if state not in mapping:
                raise AssertionError(
                    "PAP invariant violated: boundary state outside the "
                    "feasible start set"
                )
            state = mapping[state]
        return self._finalize(syms, state, traces)
