"""One callable per paper table / figure.

Every function returns plain data structures (dicts keyed by benchmark
name) so the benchmark harness, the examples and EXPERIMENTS.md generation
all consume the same source of truth.  A paper benchmark is a collection
of FSMs; metrics are averaged over every (FSM, input-string) pair, which
is the paper's "performance number is averaged over all input strings".

Heavyweight intermediates — compiled benchmarks, profiling censuses,
full-suite engine sweeps — are cached in-process because several figures
share them (Figures 12/13/14 are three views of one sweep; Figures 8 and
16/17/18 share the censuses).
"""

from __future__ import annotations

import statistics
from typing import Counter as CounterT, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import EngineStats, summarize_runs
from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.core.profiling import (
    maximum_frequency_partition,
    merge_to_cutoff,
    profile_partitions,
)
from repro.engines.base import Engine, RunResult
from repro.engines.enumerative import EnumerativeEngine
from repro.engines.lbe import LbeEngine
from repro.engines.pap import PapEngine
from repro.engines.sequential import SequentialEngine
from repro.hardware.ap import APConfig
from repro.workloads.suite import (
    BenchmarkInstance,
    BenchmarkUnit,
    benchmark_names,
    get_benchmark,
    load_benchmark,
)

__all__ = [
    "table1",
    "table2",
    "fig8_mfp_frequency",
    "evaluate_suite",
    "fig12_speedup",
    "fig13_r0",
    "fig14_rt",
    "fig15_lbe_lookback",
    "fig16_cse_r0_by_merge",
    "fig17_cse_speedup_by_merge",
    "fig18_reexec_rate_by_merge",
    "MERGE_STRATEGIES",
    "unit_census",
    "cse_partition_for",
]

#: Figure 16/17/18 x-axis: MFP only, merge to 99%, merge to 100%.
MERGE_STRATEGIES: Tuple[str, ...] = ("baseline", "99%", "100%")

_CENSUS_CACHE: Dict[Tuple[str, int, float], CounterT[StatePartition]] = {}
_PARTITION_CACHE: Dict[Tuple[str, int, str, float], StatePartition] = {}
_SUITE_CACHE: Dict[Tuple, Dict[str, Dict[str, EngineStats]]] = {}
_STRATEGY_CACHE: Dict[Tuple[str, float], Dict[str, EngineStats]] = {}


def unit_census(
    name: str, fsm_index: int, scale: float = 1.0
) -> CounterT[StatePartition]:
    """Profiling census for one FSM of a benchmark (cached)."""
    key = (name, fsm_index, scale)
    if key not in _CENSUS_CACHE:
        instance = load_benchmark(name, scale)
        unit = instance.units[fsm_index]
        _CENSUS_CACHE[key] = profile_partitions(
            unit.dfa, instance.spec.profiling_config(fsm_index)
        )
    return _CENSUS_CACHE[key]


def cse_partition_for(
    name: str, fsm_index: int, strategy: str, scale: float = 1.0
) -> StatePartition:
    """The convergence partition a merge strategy yields for one FSM.

    Strategies: ``"baseline"`` (MFP, no merge), ``"99%"``, ``"100%"`` and
    ``"table1"`` (the per-benchmark cut-off the paper selected).
    """
    key = (name, fsm_index, strategy, scale)
    if key in _PARTITION_CACHE:
        return _PARTITION_CACHE[key]
    census = unit_census(name, fsm_index, scale)
    if strategy == "baseline":
        partition = maximum_frequency_partition(census)[0]
    elif strategy == "99%":
        partition = merge_to_cutoff(census, cutoff=0.99).partition
    elif strategy == "100%":
        partition = merge_to_cutoff(census, cutoff=1.0).partition
    elif strategy == "table1":
        cutoff = get_benchmark(name).merge_cutoff
        partition = merge_to_cutoff(census, cutoff=cutoff).partition
    else:
        raise ValueError(f"unknown merge strategy {strategy!r}")
    _PARTITION_CACHE[key] = partition
    return partition


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1(scale: float = 1.0) -> List[Dict]:
    """Table I: benchmark characteristics.

    ``#FSM`` / ``#State`` are this reproduction's scaled-down counts (the
    paper's originals are orders of magnitude larger); L, MFP cut-off and
    the half-core/segment split are the paper's values verbatim.
    """
    rows = []
    for name in benchmark_names():
        spec = get_benchmark(name)
        instance = load_benchmark(name, scale)
        rows.append(
            {
                "Benchmark": name,
                "#FSM": instance.n_fsms,
                "#State": instance.total_states,
                "HalfCores/Segment": f"{spec.cores_per_segment}/{spec.n_segments}",
                "L": spec.lookback,
                "MFP": f"{spec.merge_cutoff:.0%}",
            }
        )
    return rows


def table2() -> List[Dict]:
    """Table II: the design taxonomy, read off the engine classes."""
    rows = []
    for cls, label in (
        (SequentialEngine, "Baseline"),
        (LbeEngine, "LBE"),
        (PapEngine, "PAP"),
        (CseEngine, "CSE"),
    ):
        rows.append(
            {
                "FSM": label,
                "Basic FSM": cls.building_block,
                "Static Optimization": cls.static_optimization,
                "Dynamic Optimization": cls.dynamic_optimization,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 8: MFP frequency after profiling (no merge)
# ----------------------------------------------------------------------
def fig8_mfp_frequency(scale: float = 1.0) -> Dict[str, float]:
    """Per benchmark: frequency of the maximum frequency partition,
    averaged over the benchmark's FSMs."""
    out = {}
    for name in benchmark_names():
        instance = load_benchmark(name, scale)
        freqs = [
            maximum_frequency_partition(unit_census(name, u.fsm_index, scale))[1]
            for u in instance.units
        ]
        out[name] = statistics.fmean(freqs)
    return out


# ----------------------------------------------------------------------
# The main sweep behind Figures 12 / 13 / 14
# ----------------------------------------------------------------------
def _engines_for_unit(
    instance: BenchmarkInstance,
    unit: BenchmarkUnit,
    config: APConfig,
    scale: float,
    include_enumerative: bool,
) -> List[Engine]:
    spec = instance.spec
    common = dict(
        n_segments=spec.n_segments,
        cores_per_segment=spec.cores_per_segment,
        config=config,
    )
    engines: List[Engine] = []
    if include_enumerative:
        engines.append(EnumerativeEngine(unit.dfa, **common))
    engines.append(LbeEngine(unit.dfa, lookback=spec.lookback, **common))
    engines.append(PapEngine(unit.dfa, **common))
    engines.append(
        CseEngine(
            unit.dfa,
            partition=cse_partition_for(spec.name, unit.fsm_index, "table1", scale),
            **common,
        )
    )
    return engines


def evaluate_suite(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    config: Optional[APConfig] = None,
    include_enumerative: bool = False,
) -> Dict[str, Dict[str, EngineStats]]:
    """Run Baseline/LBE/PAP/CSE over the whole suite.

    Returns ``{benchmark: {engine: EngineStats}}``; cached, because
    Figures 12, 13 and 14 are three projections of this one sweep.  Every
    parallel engine is checked against the sequential oracle on every
    (FSM, string) pair.
    """
    names = tuple(names or benchmark_names())
    config = config or APConfig()
    key = (names, scale, config, include_enumerative)
    if key in _SUITE_CACHE:
        return _SUITE_CACHE[key]
    out: Dict[str, Dict[str, EngineStats]] = {}
    for name in names:
        instance = load_benchmark(name, scale)
        runs_by_engine: Dict[str, List[RunResult]] = {}
        for unit in instance.units:
            baseline = SequentialEngine(unit.dfa, config=config)
            base_runs = [baseline.run(s) for s in unit.strings]
            runs_by_engine.setdefault("Baseline", []).extend(base_runs)
            expected = [r.final_state for r in base_runs]
            for engine in _engines_for_unit(
                instance, unit, config, scale, include_enumerative
            ):
                runs = [engine.run(s) for s in unit.strings]
                got = [r.final_state for r in runs]
                if got != expected:
                    raise AssertionError(
                        f"{engine.name} diverged from the sequential oracle "
                        f"on {name} (fsm {unit.fsm_index})"
                    )
                runs_by_engine.setdefault(engine.name, []).extend(runs)
        out[name] = {
            engine: summarize_runs(runs) for engine, runs in runs_by_engine.items()
        }
    _SUITE_CACHE[key] = out
    return out


def fig12_speedup(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Figure 12: speedup over baseline for LBE / PAP / CSE (+ ideal)."""
    sweep = evaluate_suite(scale)
    out: Dict[str, Dict[str, float]] = {}
    for name, stats in sweep.items():
        row = {
            engine: s.speedup
            for engine, s in stats.items()
            if engine != "Baseline"
        }
        row["IDEAL"] = float(get_benchmark(name).n_segments)
        out[name] = row
    return out


def fig13_r0(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Figure 13: initial flow count R0 per design."""
    sweep = evaluate_suite(scale)
    return {
        name: {
            engine: s.r0 for engine, s in stats.items() if engine != "Baseline"
        }
        for name, stats in sweep.items()
    }


def fig14_rt(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Figure 14: final flow count RT per design."""
    sweep = evaluate_suite(scale)
    return {
        name: {
            engine: s.rt for engine, s in stats.items() if engine != "Baseline"
        }
        for name, stats in sweep.items()
    }


# ----------------------------------------------------------------------
# Figure 15: LBE speedup vs lookback length
# ----------------------------------------------------------------------
def fig15_lbe_lookback(
    lengths: Sequence[int] = (10, 20, 30, 100),
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[int, float]]:
    """Figure 15: sweep L for LBE on every benchmark."""
    out: Dict[str, Dict[int, float]] = {}
    for name in names or benchmark_names():
        instance = load_benchmark(name, scale)
        spec = instance.spec
        per_len: Dict[int, float] = {}
        for length in lengths:
            runs: List[RunResult] = []
            for unit in instance.units:
                engine = LbeEngine(
                    unit.dfa,
                    n_segments=spec.n_segments,
                    cores_per_segment=spec.cores_per_segment,
                    lookback=length,
                )
                runs.extend(engine.run(s) for s in unit.strings)
            per_len[length] = summarize_runs(runs).speedup
        out[name] = per_len
    return out


# ----------------------------------------------------------------------
# Figures 16 / 17 / 18: merge strategy ablation
# ----------------------------------------------------------------------
def _strategy_stats(name: str, scale: float) -> Dict[str, EngineStats]:
    key = (name, scale)
    if key in _STRATEGY_CACHE:
        return _STRATEGY_CACHE[key]
    instance = load_benchmark(name, scale)
    spec = instance.spec
    out: Dict[str, EngineStats] = {}
    for strategy in MERGE_STRATEGIES:
        runs: List[RunResult] = []
        for unit in instance.units:
            engine = CseEngine(
                unit.dfa,
                n_segments=spec.n_segments,
                cores_per_segment=spec.cores_per_segment,
                partition=cse_partition_for(name, unit.fsm_index, strategy, scale),
            )
            runs.extend(engine.run(s) for s in unit.strings)
        out[strategy] = summarize_runs(runs)
    _STRATEGY_CACHE[key] = out
    return out


def fig16_cse_r0_by_merge(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Figure 16: number of convergence sets (CSE's R0) per merge strategy,
    averaged over the benchmark's FSMs."""
    out: Dict[str, Dict[str, float]] = {}
    for name in benchmark_names():
        instance = load_benchmark(name, scale)
        out[name] = {
            strategy: statistics.fmean(
                cse_partition_for(name, u.fsm_index, strategy, scale).num_blocks
                for u in instance.units
            )
            for strategy in MERGE_STRATEGIES
        }
    return out


def fig17_cse_speedup_by_merge(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Figure 17: CSE speedup per merge strategy."""
    return {
        name: {s: st.speedup for s, st in _strategy_stats(name, scale).items()}
        for name in benchmark_names()
    }


def fig18_reexec_rate_by_merge(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Figure 18: CSE re-execution rate per merge strategy."""
    return {
        name: {s: st.reexec_rate for s, st in _strategy_stats(name, scale).items()}
        for name in benchmark_names()
    }
