"""Plain-text rendering of experiment results.

The harness prints the same rows/series the paper's tables and figures
report; these helpers keep the formatting in one place (console output,
EXPERIMENTS.md, and the benchmark suite all share them).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["render_table", "render_series", "render_grouped", "render_bars"]


def render_table(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Align a list of dict rows into a text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(columns))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def render_grouped(
    data: Mapping[str, Mapping[str, object]],
    row_label: str = "Benchmark",
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render ``{row: {column: value}}`` (the shape every figure uses)."""
    rows: List[Dict] = []
    for name, values in data.items():
        row: Dict = {row_label: name}
        row.update(values)
        rows.append(row)
    if columns is not None:
        columns = [row_label, *columns]
    return render_table(rows, columns)


def render_series(
    data: Mapping[str, object], name: str = "value", key_label: str = "Benchmark"
) -> str:
    """Render a flat ``{key: value}`` mapping as a two-column table."""
    rows = [{key_label: k, name: v} for k, v in data.items()]
    return render_table(rows, [key_label, name])


def render_bars(
    data: Mapping[str, float],
    width: int = 40,
    max_value: Optional[float] = None,
    fill: str = "#",
) -> str:
    """Horizontal ASCII bar chart for a ``{label: value}`` mapping.

    The paper's figures are bar charts; this renders their closest
    terminal-friendly analogue (used by the CLI's ``figures`` command).
    """
    if not data:
        return "(no data)"
    values = {k: float(v) for k, v in data.items()}
    peak = max_value if max_value is not None else max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for label, value in values.items():
        bar = fill * max(0, int(round(width * value / peak)))
        lines.append(f"{str(label).ljust(label_width)}  {bar} {_fmt(value)}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if 0 < abs(value) < 0.1:
            return f"{value:.4f}"
        return f"{value:.2f}"
    return str(value)
