"""Convergence-dynamics analysis.

Section VI-B explains benchmark behaviour through how fast the flow count
R collapses: most applications reach R = 1 "within less than 10 symbols",
while PowerEN "takes 565 symbols for RT to become stable".  These helpers
quantify that, per FSM and per benchmark, from the set-flow size trace.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.automata.dfa import Dfa
from repro.workloads.suite import BenchmarkInstance, load_benchmark

__all__ = [
    "symbols_to_stabilize",
    "stabilization_stats",
    "StabilizationStats",
    "suite_stabilization",
]


def symbols_to_stabilize(dfa: Dfa, symbols) -> int:
    """Symbols consumed before the all-states set reaches its final size.

    Runs ``set(N) -> set(M)`` from the full state set and returns the
    first position after which the set size never changes again.  0 means
    the machine was "stable" before reading anything (degenerate); a value
    equal to the input length means it never stabilized.
    """
    states = np.arange(dfa.num_states, dtype=np.int32)
    _final, sizes = dfa.set_run(states, symbols, record_sizes=True)
    if not sizes:
        return 0
    final_size = sizes[-1]
    # walk backwards to the last index where the size still differed
    for idx in range(len(sizes) - 1, -1, -1):
        if sizes[idx] != final_size:
            return idx + 1
    return 0


@dataclass(frozen=True)
class StabilizationStats:
    """Aggregate convergence dynamics for one benchmark."""

    benchmark: str
    mean_symbols: float
    max_symbols: int
    #: fraction of (FSM, string) pairs stabilizing within 10 symbols —
    #: the paper's "R0 reduced to 1 dynamically within less than 10
    #: symbols" observation
    within_10: float
    #: final set size averaged over pairs (1.0 = full convergence)
    mean_final_size: float


def stabilization_stats(instance: BenchmarkInstance) -> StabilizationStats:
    """Measure stabilization over every (FSM, string) pair of a benchmark."""
    times: List[int] = []
    finals: List[int] = []
    for unit in instance.units:
        all_states = np.arange(unit.dfa.num_states, dtype=np.int32)
        for string in unit.strings:
            times.append(symbols_to_stabilize(unit.dfa, string))
            finals.append(int(unit.dfa.set_run(all_states, string).size))
    return StabilizationStats(
        benchmark=instance.name,
        mean_symbols=statistics.fmean(times),
        max_symbols=max(times),
        within_10=sum(1 for t in times if t <= 10) / len(times),
        mean_final_size=statistics.fmean(finals),
    )


def suite_stabilization(
    names: Sequence[str] = (), scale: float = 1.0
) -> Dict[str, StabilizationStats]:
    """Stabilization statistics across the (given or full) suite."""
    from repro.workloads.suite import benchmark_names

    out: Dict[str, StabilizationStats] = {}
    for name in names or benchmark_names():
        out[name] = stabilization_stats(load_benchmark(name, scale))
    return out
