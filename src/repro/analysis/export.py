"""Machine-readable export of experiment artifacts.

Text tables are for humans; downstream tooling (plotting, regression
guards, CI dashboards) wants JSON.  :func:`export_all` collects every
deterministic artifact into one dict; :func:`save_results` /
:func:`load_results` persist it.  The golden-file bench
(``benchmarks/test_golden_results.py``) uses this to detect silent drift
in the evaluation pipeline: with all seeds fixed, these numbers are exact
reproducibles, not statistics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.analysis import experiments as exp

__all__ = ["export_all", "save_results", "load_results", "diff_results"]

FORMAT_VERSION = 1


def export_all(scale: float = 1.0) -> Dict:
    """Every deterministic artifact as plain JSON-able data."""
    return {
        "version": FORMAT_VERSION,
        "scale": scale,
        "table1": exp.table1(scale),
        "table2": exp.table2(),
        "fig8_mfp_frequency": exp.fig8_mfp_frequency(scale),
        "fig12_speedup": exp.fig12_speedup(scale),
        "fig13_r0": exp.fig13_r0(scale),
        "fig14_rt": exp.fig14_rt(scale),
        "fig16_cse_r0_by_merge": exp.fig16_cse_r0_by_merge(scale),
        "fig17_cse_speedup_by_merge": exp.fig17_cse_speedup_by_merge(scale),
        "fig18_reexec_rate_by_merge": exp.fig18_reexec_rate_by_merge(scale),
    }


def save_results(results: Dict, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(results, indent=1, sort_keys=True))


def load_results(path: Union[str, Path]) -> Dict:
    data = json.loads(Path(path).read_text())
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {data.get('version')!r}"
        )
    return data


def diff_results(
    expected: Dict,
    actual: Dict,
    rel_tolerance: float = 0.02,
) -> Dict[str, str]:
    """Compare two result exports; return {location: description} of drifts.

    Numeric leaves compare with a relative tolerance (cycle accounting is
    deterministic, but a small band keeps the guard robust to benign
    refactors like reordered float summation); everything else compares
    exactly.
    """
    drifts: Dict[str, str] = {}

    def walk(path: str, a, b) -> None:
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                if key not in a:
                    drifts[f"{path}.{key}"] = "missing in expected"
                elif key not in b:
                    drifts[f"{path}.{key}"] = "missing in actual"
                else:
                    walk(f"{path}.{key}", a[key], b[key])
        elif isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                drifts[path] = f"length {len(a)} vs {len(b)}"
                return
            for i, (x, y) in enumerate(zip(a, b)):
                walk(f"{path}[{i}]", x, y)
        elif isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                and not isinstance(a, bool) and not isinstance(b, bool):
            scale = max(abs(a), abs(b), 1e-12)
            if abs(a - b) / scale > rel_tolerance:
                drifts[path] = f"{a} vs {b}"
        elif a != b:
            drifts[path] = f"{a!r} vs {b!r}"

    walk("results", expected, actual)
    return drifts
