"""Analytic performance model for CSE.

The simulator integrates measured flow traces; this model predicts the
same speedup from three *summary statistics* — a closed form useful for
capacity planning (how many segments? which partition?) without running
the engine:

- ``r0`` — the number of convergence sets (known from the partition);
- ``t_stabilize`` — expected symbols until the flows stop merging
  (measured once per workload with
  :func:`repro.analysis.convergence.symbols_to_stabilize`);
- ``r_floor`` — the flow count after stabilization (1 when everything
  converges; >1 for permanent basins like PowerEN's strides).

Per enumerative segment of length ``L`` (with ``c`` half-cores)::

    cycles ≈  t_s * ceil((r0+r_floor)/2 / c)      (pre-stabilization ramp,
                                                   flows decay ~linearly)
            + (L - t_s) * ceil(r_floor / c)       (steady state)
            + chunk overheads                      (switches + checks)

and the run's speedup is ``L_total / (max segment cycles + repair)``.
The model-validation bench (``benchmarks/test_model_validation.py``)
checks the prediction against the simulator across the suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.hardware.ap import APConfig

__all__ = ["SegmentModel", "predict_segment_cycles", "predict_speedup"]


@dataclass(frozen=True)
class SegmentModel:
    """Summary statistics describing one workload's convergence behaviour."""

    r0: float
    t_stabilize: float
    r_floor: float = 1.0

    def __post_init__(self):
        if self.r0 < 1 or self.r_floor < 0 or self.t_stabilize < 0:
            raise ValueError("model parameters must be non-negative (r0 >= 1)")


def _per_symbol(flows: float, cores: int, config: APConfig) -> float:
    return math.ceil(max(flows, 0.0) / cores) * config.symbol_cycles


def predict_segment_cycles(
    model: SegmentModel,
    segment_len: int,
    cores: int = 1,
    config: Optional[APConfig] = None,
) -> float:
    """Expected cycles for one enumerative segment."""
    config = config or APConfig()
    t_s = min(model.t_stabilize, segment_len)
    ramp_flows = (model.r0 + model.r_floor) / 2.0
    cycles = t_s * _per_symbol(ramp_flows, cores, config)
    cycles += (segment_len - t_s) * _per_symbol(model.r_floor, cores, config)
    # chunk overheads: charged while more than one flow is live
    multiplexed = t_s if model.r_floor <= 1 else segment_len
    chunks = multiplexed / config.check_interval
    mean_flows = ramp_flows if model.r_floor <= 1 else model.r_floor
    per_core = math.ceil(mean_flows / cores)
    cycles += chunks * (
        config.context_switch_cycles * max(0, per_core - 1)
        + config.convergence_check_cycles_per_pair * (mean_flows // 2)
    )
    return cycles


def predict_speedup(
    model: SegmentModel,
    input_len: int,
    n_segments: int,
    cores_per_segment: int = 1,
    config: Optional[APConfig] = None,
    reexec_rate: float = 0.0,
) -> float:
    """Expected end-to-end speedup over the sequential baseline.

    ``reexec_rate`` is the expected fraction of segments re-executed
    (Figure 18's metric); each re-execution serializes one segment length.
    """
    config = config or APConfig()
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    segment_len = input_len / n_segments
    enum_cycles = predict_segment_cycles(
        model, int(round(segment_len)), cores_per_segment, config
    )
    # segment 1 is concrete: 1 cycle/symbol; the critical path is the max
    critical = max(segment_len * config.symbol_cycles, enum_cycles)
    critical += reexec_rate * (n_segments - 1) * segment_len
    if critical <= 0:
        return float(n_segments)
    return (input_len * config.symbol_cycles) / critical
