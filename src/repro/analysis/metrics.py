"""Aggregation of engine run results into the paper's reported metrics."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.engines.base import RunResult

__all__ = ["EngineStats", "summarize_runs", "reexecution_rate"]


@dataclass(frozen=True)
class EngineStats:
    """Averages over a batch of independent input strings.

    These are exactly the quantities the paper plots: speedup over the
    sequential baseline (Figure 12), initial and final flow counts R0 / RT
    (Figures 13, 14) and the re-execution rate (Figure 18).
    """

    engine: str
    n_runs: int
    speedup: float
    r0: float
    rt: float
    reexec_rate: float
    throughput: float
    ideal_speedup: float

    def __str__(self) -> str:
        return (
            f"{self.engine}: speedup {self.speedup:.2f}x (ideal "
            f"{self.ideal_speedup:.0f}x), R0 {self.r0:.2f}, RT {self.rt:.2f}, "
            f"re-exec {self.reexec_rate:.2%}"
        )


def reexecution_rate(results: Sequence[RunResult]) -> float:
    """Fraction of enumerative segments that had to be re-executed."""
    segments = sum(max(0, r.n_segments - 1) for r in results)
    if segments == 0:
        return 0.0
    reexecuted = sum(r.reexec_segments for r in results)
    return reexecuted / segments


def summarize_runs(results: Sequence[RunResult]) -> EngineStats:
    """Average a batch of runs of one engine (paper: "averaged over all
    input strings")."""
    if not results:
        raise ValueError("no runs to summarize")
    return EngineStats(
        engine=results[0].engine,
        n_runs=len(results),
        speedup=statistics.fmean(r.speedup for r in results),
        r0=statistics.fmean(r.r0_mean for r in results),
        rt=statistics.fmean(r.rt_mean for r in results),
        reexec_rate=reexecution_rate(results),
        throughput=statistics.fmean(r.throughput for r in results),
        ideal_speedup=statistics.fmean(r.ideal_speedup for r in results),
    )
