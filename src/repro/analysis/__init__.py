"""Experiment harness: regenerates every table and figure of the paper.

:mod:`metrics` aggregates engine run results; :mod:`experiments` has one
callable per paper artifact (``table1``, ``fig12_speedup``, ...);
:mod:`report` renders the results as aligned text tables for the console
and EXPERIMENTS.md.
"""

from repro.analysis.metrics import EngineStats, summarize_runs, reexecution_rate
from repro.analysis.experiments import (
    table1,
    table2,
    fig8_mfp_frequency,
    evaluate_suite,
    fig12_speedup,
    fig13_r0,
    fig14_rt,
    fig15_lbe_lookback,
    fig16_cse_r0_by_merge,
    fig17_cse_speedup_by_merge,
    fig18_reexec_rate_by_merge,
    MERGE_STRATEGIES,
)
from repro.analysis.report import render_table, render_series, render_grouped, render_bars

__all__ = [
    "EngineStats",
    "summarize_runs",
    "reexecution_rate",
    "table1",
    "table2",
    "fig8_mfp_frequency",
    "evaluate_suite",
    "fig12_speedup",
    "fig13_r0",
    "fig14_rt",
    "fig15_lbe_lookback",
    "fig16_cse_r0_by_merge",
    "fig17_cse_speedup_by_merge",
    "fig18_reexec_rate_by_merge",
    "MERGE_STRATEGIES",
    "render_table",
    "render_series",
    "render_grouped",
    "render_bars",
]
