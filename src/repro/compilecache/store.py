"""On-disk artifact store: atomic writes, validated loads.

One artifact per file, named by its content-addressed key.  Writes go to
a temporary sibling and ``os.replace`` into place, so a reader never sees
a torn file and concurrent writers of the same key are harmless (last one
wins with identical content).  Loads re-validate the format version, the
key and the DFA fingerprint before the artifact is trusted — a stale or
foreign file is reported as :class:`ArtifactValidationError` and treated
by the cache as a miss, never served.

The payload is a pickle of plain fields (numpy arrays, partitions,
dataclasses); the format version guards against silent drift the same way
:mod:`repro.core.store` guards its JSON formats.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.compilecache.artifact import CompiledDfa
from repro.kernels.dense import dense_state_dtype
from repro.kernels.prefilter import derive_prefilter

__all__ = [
    "FORMAT_VERSION",
    "ArtifactValidationError",
    "artifact_path",
    "save_artifact",
    "load_artifact",
]

# version 2: the envelope records ``dense_dtype`` — the state dtype the
# dense-frontier kernel narrows to for this machine — so a loader can
# cross-check any stored DenseTables against the DFA's state count
# without unpickling them first
# version 3: the envelope records ``prefilter`` — the literal-skip
# certificate summary (home state, skip width, anchor count + digest), or
# ``None`` for uncertifiable machines — cross-checked on load against a
# fresh derivation from the stored transition table, so a stale or
# tampered certificate can never steer a scan into skipping live bytes
FORMAT_VERSION = 3
_SUFFIX = ".cdfa"


class ArtifactValidationError(ValueError):
    """A stored artifact failed version/key/fingerprint validation."""


def artifact_path(cache_dir: Union[str, Path], key: str) -> Path:
    return Path(cache_dir) / f"{key}{_SUFFIX}"


def save_artifact(compiled: CompiledDfa, cache_dir: Union[str, Path]) -> Path:
    """Persist an artifact atomically; returns the final path."""
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = artifact_path(cache_dir, compiled.key)
    prefilter = compiled.prefilter_tables()
    payload = {
        "format_version": FORMAT_VERSION,
        "key": compiled.key,
        "fingerprint": compiled.fingerprint,
        "dense_dtype": str(dense_state_dtype(compiled.dfa.num_states)),
        "prefilter": None if prefilter is None else prefilter.summary(),
        "artifact": compiled,
    }
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{compiled.key[:16]}.", suffix=".tmp", dir=cache_dir
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_artifact(
    cache_dir: Union[str, Path],
    key: str,
    expected_fingerprint: Optional[Tuple] = None,
) -> Optional[CompiledDfa]:
    """Load and validate an artifact; ``None`` when the file is absent.

    Raises :class:`ArtifactValidationError` when a file exists but its
    version, key or fingerprint disagree with what the caller expects.
    """
    path = artifact_path(cache_dir, key)
    if not path.exists():
        return None
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise ArtifactValidationError(f"unreadable artifact {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactValidationError(f"malformed artifact {path}")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ArtifactValidationError(
            f"artifact {path} has format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    if payload.get("key") != key:
        raise ArtifactValidationError(f"artifact {path} stored under a foreign key")
    compiled = payload.get("artifact")
    if not isinstance(compiled, CompiledDfa):
        raise ArtifactValidationError(f"artifact {path} payload is not a CompiledDfa")
    fingerprint = payload.get("fingerprint")
    # recompute from the loaded table (drop the memoized value that rode
    # along in the pickle) so corrupted content cannot self-certify
    compiled.dfa._fingerprint = None
    if fingerprint != compiled.dfa.fingerprint or fingerprint != compiled.fingerprint:
        raise ArtifactValidationError(f"artifact {path} content does not match its header")
    if expected_fingerprint is not None and fingerprint != expected_fingerprint:
        raise ArtifactValidationError(
            f"artifact {path} fingerprint does not match the requesting DFA"
        )
    expected_dtype = str(dense_state_dtype(compiled.dfa.num_states))
    if payload.get("dense_dtype") != expected_dtype:
        raise ArtifactValidationError(
            f"artifact {path} declares dense dtype "
            f"{payload.get('dense_dtype')!r} but the stored DFA narrows to "
            f"{expected_dtype!r}"
        )
    # the prefilter certificate decides which input bytes a scan may skip;
    # re-derive from the stored table and demand envelope agreement
    fresh = derive_prefilter(compiled.dfa)
    expected_summary = None if fresh is None else fresh.summary()
    if payload.get("prefilter") != expected_summary:
        raise ArtifactValidationError(
            f"artifact {path} declares prefilter certificate "
            f"{payload.get('prefilter')!r} but the stored table derives "
            f"{expected_summary!r}"
        )
    # checksums only prove the header matches the payload; a corrupted-
    # but-self-consistent pickle (table mutated, fingerprint re-derived)
    # still needs its structural invariants re-checked
    try:
        compiled.dfa.validate()
    except ValueError as exc:
        raise ArtifactValidationError(
            f"artifact {path} holds a structurally invalid DFA: {exc}"
        ) from exc
    from repro.check import has_errors, verify_partition

    partition_diags = verify_partition(
        compiled.partition, compiled.dfa.num_states
    )
    if has_errors(partition_diags):
        raise ArtifactValidationError(
            f"artifact {path} holds an unsound convergence partition: "
            + "; ".join(f"{d.code}: {d.message}" for d in partition_diags
                        if d.severity == "error")
        )
    return compiled
