"""Compile-once / scan-many: the content-addressed compilation cache.

:class:`CompileCache` serves :class:`~repro.compilecache.artifact.CompiledDfa`
artifacts from a thread-safe in-process LRU, optionally backed by an
on-disk store (``cache_dir``) so a serving process restart keeps its warm
set.  Lookup order is memory → disk → build; every tier is instrumented
through :mod:`repro.obs` (``compilecache_hits_total{tier=...}``,
``compilecache_misses_total``, ``compilecache_build_seconds``), so a
serving loop's hit ratio is visible in any metrics snapshot.

:func:`scan_with_cache` is the deployment entry point: resolve (or build)
the artifact for a DFA + parameters, then run
:func:`repro.software.software_cse_scan` against it — a warm call does no
profiling, no table builds, and (on a fingerprint-matched process pool
with shared memory) no per-segment input pickling.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Union

from repro import obs
from repro.automata.dfa import Dfa
from repro.compilecache.artifact import CompiledDfa, cache_key, compile_dfa
from repro.compilecache.store import (
    ArtifactValidationError,
    load_artifact,
    save_artifact,
)
from repro.core.profiling import ProfilingConfig

__all__ = ["CompileCache", "scan_with_cache"]


class CompileCache:
    """Thread-safe LRU of compiled DFA artifacts, keyed by content.

    Parameters
    ----------
    capacity:
        In-memory artifact budget; least-recently-used entries are evicted
        first (they remain on disk when a ``cache_dir`` is configured).
    cache_dir:
        Optional persistent store.  Artifacts are written atomically after
        a build and validated (format version, key, fingerprint) before a
        load is trusted; invalid files are ignored, not served.
    """

    def __init__(
        self,
        capacity: int = 8,
        cache_dir: Optional[Union[str, "object"]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.cache_dir = cache_dir
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CompiledDfa]" = OrderedDict()
        self._stats: Dict[str, int] = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "builds": 0,
            "evictions": 0,
            "invalid_disk_entries": 0,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """A point-in-time copy of the hit/miss/build counters."""
        with self._lock:
            return dict(self._stats)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._stats["memory_hits"] + self._stats["disk_hits"]

    @property
    def misses(self) -> int:
        with self._lock:
            return self._stats["misses"]

    def clear_memory(self) -> None:
        """Drop the in-process tier (the disk tier is untouched)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get_or_compile(
        self,
        dfa: Dfa,
        profiling: Optional[ProfilingConfig] = None,
        cutoff: float = 0.99,
        max_blocks: Optional[int] = None,
        backend: str = "auto",
        n_segments: int = 16,
    ) -> CompiledDfa:
        """Serve the artifact for ``dfa`` + parameters, building on miss.

        The whole lookup runs under one lock: concurrent requests for the
        same key build exactly once and every other thread gets the cached
        artifact.  (Builds are profiling-bound — fractions of a second —
        so serializing them is the simple *and* cheaper choice versus
        racing duplicate profiling runs.)
        """
        profiling = profiling or ProfilingConfig()
        requested = "auto" if backend in (None, "auto") else str(backend)
        key = cache_key(
            dfa.fingerprint, profiling, cutoff, max_blocks, requested, n_segments
        )
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._entries.move_to_end(key)
                self._stats["memory_hits"] += 1
                obs.counter("compilecache_hits_total", tier="memory").inc()
                return compiled
            compiled = self._load_from_disk(key, dfa)
            if compiled is not None:
                self._stats["disk_hits"] += 1
                obs.counter("compilecache_hits_total", tier="disk").inc()
                self._insert(key, compiled)
                return compiled
            self._stats["misses"] += 1
            obs.counter("compilecache_misses_total").inc()
            with obs.span("compilecache.build", states=dfa.num_states,
                          n_segments=n_segments):
                compiled = compile_dfa(
                    dfa,
                    profiling=profiling,
                    cutoff=cutoff,
                    max_blocks=max_blocks,
                    backend=requested,
                    n_segments=n_segments,
                )
            self._stats["builds"] += 1
            obs.counter("compilecache_builds_total").inc()
            obs.histogram("compilecache_build_seconds").observe(
                compiled.build_seconds
            )
            if self.cache_dir is not None:
                save_artifact(compiled, self.cache_dir)
            self._insert(key, compiled)
            return compiled

    # ------------------------------------------------------------------
    # internals (caller holds the lock)
    # ------------------------------------------------------------------
    def _insert(self, key: str, compiled: CompiledDfa) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._stats["evictions"] += 1
            obs.counter("compilecache_evictions_total").inc()

    def _load_from_disk(self, key: str, dfa: Dfa) -> Optional[CompiledDfa]:
        if self.cache_dir is None:
            return None
        try:
            return load_artifact(self.cache_dir, key, dfa.fingerprint)
        except ArtifactValidationError:
            self._stats["invalid_disk_entries"] += 1
            obs.counter("compilecache_invalid_disk_entries_total").inc()
            return None


def scan_with_cache(
    dfa: Dfa,
    symbols,
    cache: Optional[CompileCache] = None,
    n_segments: int = 16,
    executor=None,
    policy: str = "opportunistic",
    backend: str = "auto",
    start_state: Optional[int] = None,
    verify: bool = True,
    profiling: Optional[ProfilingConfig] = None,
    cutoff: float = 0.99,
    max_blocks: Optional[int] = None,
    use_shared_memory: Optional[bool] = None,
):
    """Profile-if-needed + scan, through the compilation cache.

    With a ``cache``, a warm call reuses the artifact's partition and
    kernel tables outright; with ``cache=None`` the artifact is built
    fresh, which is exactly the un-cached pipeline (profile, merge,
    scan) — same values, same outcome.  Returns a
    :class:`repro.software.SoftwareRun`.
    """
    from repro.software import software_cse_scan

    if cache is not None:
        compiled = cache.get_or_compile(
            dfa,
            profiling=profiling,
            cutoff=cutoff,
            max_blocks=max_blocks,
            backend=backend,
            n_segments=n_segments,
        )
    else:
        compiled = compile_dfa(
            dfa,
            profiling=profiling,
            cutoff=cutoff,
            max_blocks=max_blocks,
            backend=backend,
            n_segments=n_segments,
        )
    return software_cse_scan(
        compiled.dfa,
        symbols,
        compiled.partition,
        n_segments=n_segments,
        executor=executor,
        policy=policy,
        backend=compiled.backend,
        start_state=start_state,
        verify=verify,
        compiled=compiled,
        use_shared_memory=use_shared_memory,
    )
