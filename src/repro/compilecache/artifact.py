"""The compile-once artifact: everything a scan otherwise rebuilds.

A :class:`CompiledDfa` bundles the products of the paper's *offline* phase
(random-input profiling census + merged convergence partition) together
with every per-scan table the software path derives from the transition
matrix:

- the scalar table rows the interpreted walk indexes
  (``repro.software._table_rows``),
- the int64-raveled transition matrix the lockstep kernel gathers from,
- the bitset backend's per-symbol predecessor bit-matrices
  (:class:`repro.kernels.BitsetTables`, built lazily — they are the one
  table whose footprint grows with ``alphabet * states^2 / 64``),
- the dense kernel's dtype-narrowed table + per-symbol column offsets
  (:class:`repro.kernels.DenseTables`, built eagerly when the resolved
  backend is ``"dense"``, lazily otherwise),
- the literal-prefilter certificate — anchor LUT, home state and proven
  skip width (:class:`repro.kernels.PrefilterTables`, built eagerly when
  the resolved backend is ``"prefilter"``; ``None`` when the machine is
  not literal-certifiable),
- the resolved kernel backend hint for the artifact's segment count.

Content addressing lives in :func:`cache_key`: the key is a digest of the
DFA fingerprint (table bytes + dtype + shape + start + accepting) and of
every parameter that can change the artifact — the profiling knobs, the
merge cutoff/budget, and the kernel parameters (requested backend,
segment count).  Two calls agreeing on all of those may share an artifact;
any disagreement derives a different key.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import astuple, dataclass, field
from typing import Counter as CounterT, List, Optional, Tuple

import numpy as np

from repro.core.partition import StatePartition
from repro.core.profiling import (
    MergeResult,
    ProfilingConfig,
    merge_to_cutoff,
    profile_partitions,
)
from repro.automata.dfa import Dfa
from repro.kernels import (
    BitsetTables,
    DenseTables,
    PrefilterTables,
    certify_prefilter,
    resolve_backend,
)

__all__ = ["CompiledDfa", "cache_key", "compile_dfa"]


def cache_key(
    fingerprint: Tuple,
    profiling: ProfilingConfig,
    cutoff: float,
    max_blocks: Optional[int],
    backend: str,
    n_segments: int,
) -> str:
    """Content address of a compilation: hex digest of every input knob."""
    payload = repr((
        fingerprint,
        astuple(profiling),
        float(cutoff),
        max_blocks,
        str(backend),
        int(n_segments),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CompiledDfa:
    """A compile-once, scan-many execution plan for one DFA."""

    dfa: Dfa
    fingerprint: Tuple
    key: str
    #: scalar table rows (nested lists), the interpreted walk's format
    rows: List[List[int]]
    #: int64-raveled transition matrix, the lockstep kernel's format
    flat_table: np.ndarray
    #: profiling census the partition was merged from
    census: CounterT[StatePartition]
    #: merge outcome; ``merge.partition`` is the scan partition
    merge: MergeResult
    profiling: ProfilingConfig
    merge_cutoff: float
    max_blocks: Optional[int]
    #: backend the compiler was asked for (may be ``"auto"``)
    requested_backend: str
    #: backend :func:`repro.kernels.resolve_backend` settled on
    backend: str
    n_segments: int
    build_seconds: float = 0.0
    _bitset: Optional[BitsetTables] = field(default=None, repr=False)
    _dense: Optional[DenseTables] = field(default=None, repr=False)
    _prefilter: Optional[PrefilterTables] = field(default=None, repr=False)
    #: whether the prefilter certificate has been derived yet (it is
    #: legitimately ``None`` for uncertifiable machines, so presence
    #: cannot double as the built flag)
    _prefilter_built: bool = field(default=False, repr=False)

    @property
    def partition(self) -> StatePartition:
        """The merged convergence partition scans speculate on."""
        return self.merge.partition

    @property
    def num_convergence_sets(self) -> int:
        return self.partition.num_blocks

    def bitset_tables(self) -> BitsetTables:
        """Per-symbol predecessor bit-matrices, built on first use."""
        if self._bitset is None:
            self._bitset = BitsetTables(self.dfa)
        return self._bitset

    def dense_tables(self) -> DenseTables:
        """Dtype-narrowed dense table + column offsets, built on first use."""
        if self._dense is None:
            self._dense = DenseTables(self.dfa)
        return self._dense

    def prefilter_tables(self) -> Optional[PrefilterTables]:
        """Literal-skip certificate, derived on first use.

        ``None`` means the machine is not literal-certifiable — scans
        requesting ``backend="prefilter"`` degrade to the dense kernel.
        """
        if not self._prefilter_built:
            self._prefilter = certify_prefilter(self.dfa)
            self._prefilter_built = True
        return self._prefilter

    @property
    def nbytes(self) -> int:
        """Approximate artifact footprint (tables only)."""
        total = int(self.flat_table.nbytes) + int(self.dfa.transitions.nbytes)
        if self._bitset is not None:
            total += self._bitset.nbytes
        if self._dense is not None:
            total += self._dense.nbytes
        if self._prefilter is not None:
            total += self._prefilter.nbytes
        return total


def compile_dfa(
    dfa: Dfa,
    profiling: Optional[ProfilingConfig] = None,
    cutoff: float = 0.99,
    max_blocks: Optional[int] = None,
    backend: str = "auto",
    n_segments: int = 16,
) -> CompiledDfa:
    """Run the offline phase once and bundle every scan-time table.

    Profiling runs through the vectorized lockstep profiler
    (:func:`repro.core.profiling.profile_partitions`), reusing the same
    flat transition matrix the artifact ships to the kernels.  The census
    and merged partition are exactly what the un-cached pipeline computes
    for the same :class:`ProfilingConfig` — caching changes *when* the
    work happens, never its value.
    """
    profiling = profiling or ProfilingConfig()
    begin = time.perf_counter()
    flat_table = dfa.transitions.astype(np.int64).ravel()
    census = profile_partitions(dfa, profiling, flat_table=flat_table)
    merge = merge_to_cutoff(census, cutoff=cutoff, max_blocks=max_blocks)
    requested = "auto" if backend in (None, "auto") else str(backend)
    resolved = resolve_backend(dfa, backend, merge.partition, n_segments)
    compiled = CompiledDfa(
        dfa=dfa,
        fingerprint=dfa.fingerprint,
        key=cache_key(
            dfa.fingerprint, profiling, cutoff, max_blocks, requested, n_segments
        ),
        rows=[row.tolist() for row in dfa.transitions],
        flat_table=flat_table,
        census=census,
        merge=merge,
        profiling=profiling,
        merge_cutoff=float(cutoff),
        max_blocks=max_blocks,
        requested_backend=requested,
        backend=resolved,
        n_segments=int(n_segments),
    )
    if resolved == "bitset":
        compiled.bitset_tables()
    elif resolved in ("dense", "native"):
        # the native tier reads the dense tables as-is: one artifact
        # serves both, and a toolchain-less load still scans with dense
        compiled.dense_tables()
    elif resolved == "prefilter":
        compiled.prefilter_tables()
    compiled.build_seconds = time.perf_counter() - begin
    return compiled
