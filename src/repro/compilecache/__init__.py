"""Compile-once, scan-many: content-addressed compilation caching.

The CSE pipeline is two-phase — an offline phase (random-input profiling,
partition-refinement merge) and an online scan — but without this package
the software path pays the offline phase on every run, plus per-scan
rebuilds of every kernel table.  Here the offline products become a
content-addressed artifact served from a cache:

- :class:`CompiledDfa` — the artifact: profiling census, merged
  convergence partition, scalar table rows, the lockstep kernel's flat
  int64 transition matrix, the bitset backend's predecessor bit-matrices
  (lazy), and the resolved backend hint.
- :func:`cache_key` / :func:`compile_dfa` — content addressing and the
  one-shot build.
- :class:`CompileCache` — thread-safe in-process LRU with an optional
  validated on-disk store; instrumented via :mod:`repro.obs`.
- :func:`scan_with_cache` — the serving entry point: artifact lookup +
  :func:`repro.software.software_cse_scan` against it.

A warm serving loop (same ruleset, stream of inputs) does no profiling,
no table builds, and — on a fingerprint-matched process pool with shared
memory — no per-segment input pickling.
"""

from repro.compilecache.artifact import CompiledDfa, cache_key, compile_dfa
from repro.compilecache.cache import CompileCache, scan_with_cache
from repro.compilecache.store import (
    FORMAT_VERSION,
    ArtifactValidationError,
    artifact_path,
    load_artifact,
    save_artifact,
)

__all__ = [
    "CompiledDfa",
    "cache_key",
    "compile_dfa",
    "CompileCache",
    "scan_with_cache",
    "FORMAT_VERSION",
    "ArtifactValidationError",
    "artifact_path",
    "load_artifact",
    "save_artifact",
]
