"""Persistence of profiling results and convergence partitions.

The paper's workflow profiles *offline* ("less than 5 minutes ... on one
PC") and ships the predicted convergence sets to the hardware.  This
module is that hand-off: partitions, censuses and merge results serialize
to plain JSON so a deployment can profile once and load forever.

Format notes: JSON keys are strings, so censuses are stored as a list of
``{"blocks": [[...]], "count": n}`` records; a version field guards
against silent format drift.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Counter as CounterT, Dict, Union

from repro.core.partition import StatePartition
from repro.core.profiling import MergeResult

__all__ = [
    "partition_to_dict",
    "partition_from_dict",
    "save_partition",
    "load_partition",
    "census_to_dict",
    "census_from_dict",
    "save_census",
    "load_census",
    "save_merge_result",
    "load_merge_result",
]

FORMAT_VERSION = 1


def partition_to_dict(partition: StatePartition) -> Dict:
    """JSON-ready representation of a partition."""
    return {
        "version": FORMAT_VERSION,
        "num_states": partition.num_states,
        "blocks": [sorted(block) for block in partition.blocks],
    }


def partition_from_dict(data: Dict) -> StatePartition:
    """Inverse of :func:`partition_to_dict` (validates coverage)."""
    _check_version(data)
    return StatePartition(data["blocks"], data["num_states"])


def save_partition(partition: StatePartition, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(partition_to_dict(partition)))


def load_partition(path: Union[str, Path]) -> StatePartition:
    return partition_from_dict(json.loads(Path(path).read_text()))


def census_to_dict(census: CounterT[StatePartition]) -> Dict:
    """JSON-ready representation of a profiling census."""
    if not census:
        raise ValueError("refusing to store an empty census")
    num_states = next(iter(census)).num_states
    return {
        "version": FORMAT_VERSION,
        "num_states": num_states,
        "entries": [
            {"blocks": [sorted(b) for b in partition.blocks], "count": count}
            for partition, count in census.most_common()
        ],
    }


def census_from_dict(data: Dict) -> CounterT[StatePartition]:
    _check_version(data)
    census: CounterT[StatePartition] = Counter()
    for entry in data["entries"]:
        partition = StatePartition(entry["blocks"], data["num_states"])
        census[partition] += int(entry["count"])
    return census


def save_census(census: CounterT[StatePartition], path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(census_to_dict(census)))


def load_census(path: Union[str, Path]) -> CounterT[StatePartition]:
    return census_from_dict(json.loads(Path(path).read_text()))


def save_merge_result(result: MergeResult, path: Union[str, Path]) -> None:
    payload = {
        "version": FORMAT_VERSION,
        "partition": partition_to_dict(result.partition),
        "covered": result.covered,
        "merged_count": result.merged_count,
    }
    Path(path).write_text(json.dumps(payload))


def load_merge_result(path: Union[str, Path]) -> MergeResult:
    data = json.loads(Path(path).read_text())
    _check_version(data)
    return MergeResult(
        partition=partition_from_dict(data["partition"]),
        covered=float(data["covered"]),
        merged_count=int(data["merged_count"]),
    )


def _check_version(data: Dict) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported store format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
