"""State partitions and the partition refinement algorithm (Figure 10).

A *convergence partition* splits the DFA's state set into disjoint blocks
(convergence sets).  An input string ``w`` "converges under" a partition
when every block collapses to a single state after running ``w`` — the
speculation CSE bets on.  Two facts drive the prediction machinery:

- each profiling input induces a partition (group states by their final
  state after running the input);
- the *common refinement* of two partitions converges whenever either
  original does, so merging partitions trades block count for coverage.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["StatePartition"]


class StatePartition:
    """An immutable partition of ``{0..num_states-1}`` into blocks.

    Canonical form: blocks are frozensets ordered by their smallest
    element, which makes equality, hashing and census counting exact.
    """

    __slots__ = ("blocks", "num_states", "_block_of")

    def __init__(self, blocks: Iterable[Iterable[int]], num_states: int):
        normalized: List[FrozenSet[int]] = [
            frozenset(int(q) for q in block) for block in blocks
        ]
        normalized = [b for b in normalized if b]
        normalized.sort(key=min)
        seen: set = set()
        for block in normalized:
            if block & seen:
                raise ValueError("blocks overlap")
            seen |= block
        if seen != set(range(num_states)):
            missing = sorted(set(range(num_states)) - seen)[:5]
            raise ValueError(f"partition does not cover all states (missing {missing}...)")
        self.blocks: Tuple[FrozenSet[int], ...] = tuple(normalized)
        self.num_states = int(num_states)
        self._block_of: Dict[int, int] = {}
        for idx, block in enumerate(self.blocks):
            for q in block:
                self._block_of[q] = idx

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def trivial(cls, num_states: int) -> "StatePartition":
        """The single-block partition {all states}."""
        return cls([range(num_states)], num_states)

    @classmethod
    def discrete(cls, num_states: int) -> "StatePartition":
        """The all-singletons partition (plain enumerative FSM)."""
        return cls([[q] for q in range(num_states)], num_states)

    @classmethod
    def from_final_states(cls, finals: np.ndarray) -> "StatePartition":
        """Partition induced by one profiling input.

        ``finals[q]`` is the state reached from ``q``; states sharing a
        final state *converged* on this input and land in one block.
        """
        finals = np.asarray(finals)
        groups: Dict[int, List[int]] = {}
        for q, f in enumerate(finals.tolist()):
            groups.setdefault(int(f), []).append(q)
        return cls(groups.values(), int(finals.size))

    @classmethod
    def from_labels(cls, labels: Sequence[int]) -> "StatePartition":
        """Partition grouping states by an arbitrary label array."""
        groups: Dict[int, List[int]] = {}
        for q, lab in enumerate(labels):
            groups.setdefault(int(lab), []).append(q)
        return cls(groups.values(), len(labels))

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_of(self, state: int) -> int:
        """Index of the block containing ``state``."""
        return self._block_of[int(state)]

    def block_arrays(self) -> List[np.ndarray]:
        """Blocks as sorted int64 arrays (the engines' working format).

        int64 is the one state dtype of the execution layer: every
        ``CsOutcome.states`` array descends from these blocks, so keeping
        them int64 means :meth:`SegmentFunction.apply` never re-casts and
        flow-pool ``tobytes()`` keys are comparable across producers.
        """
        return [np.asarray(sorted(b), dtype=np.int64) for b in self.blocks]

    def labels(self) -> np.ndarray:
        """Block index per state, as an array of length ``num_states``."""
        out = np.empty(self.num_states, dtype=np.int64)
        for q, idx in self._block_of.items():
            out[q] = idx
        return out

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __eq__(self, other) -> bool:
        if not isinstance(other, StatePartition):
            return NotImplemented
        return self.num_states == other.num_states and self.blocks == other.blocks

    def __hash__(self) -> int:
        return hash((self.num_states, self.blocks))

    def __repr__(self) -> str:
        return f"StatePartition(blocks={self.num_blocks}, states={self.num_states})"

    # ------------------------------------------------------------------
    # refinement algebra
    # ------------------------------------------------------------------
    def refine(self, other: "StatePartition") -> "StatePartition":
        """Common refinement — the paper's Figure 10, a.k.a. the merge.

        Every block of the result is the intersection of a block of
        ``self`` with a block of ``other``; consequently the result
        *covers* both inputs (see :meth:`refines`) and an input string that
        converges under either converges under the result.  The operation
        is commutative and idempotent.
        """
        if self.num_states != other.num_states:
            raise ValueError("partitions are over different state counts")
        pieces: Dict[Tuple[int, int], List[int]] = {}
        other_of = other._block_of
        for q, mine in self._block_of.items():
            pieces.setdefault((mine, other_of[q]), []).append(q)
        return StatePartition(pieces.values(), self.num_states)

    def refines(self, other: "StatePartition") -> bool:
        """True when every block of ``self`` fits inside a block of ``other``.

        In the paper's vocabulary ``self`` *covers* ``other``: whenever an
        input converges under ``other`` it also converges under ``self``
        (smaller blocks can only be easier to collapse).
        """
        if self.num_states != other.num_states:
            raise ValueError("partitions are over different state counts")
        other_of = other._block_of
        for block in self.blocks:
            it = iter(block)
            target = other_of[next(it)]
            if any(other_of[q] != target for q in it):
                return False
        return True

    def converges_on(self, finals: np.ndarray) -> bool:
        """Whether an input with all-state outcome ``finals`` converges.

        True when every block maps to a single final state — the success
        condition of CSE's speculation for that input.
        """
        finals = np.asarray(finals)
        for block in self.blocks:
            members = np.fromiter(block, dtype=np.int64, count=len(block))
            if np.unique(finals[members]).size > 1:
                return False
        return True
