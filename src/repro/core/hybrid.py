"""CSE + lookback hybrid (an extension combining Sections II-C and IV).

CSE and LBE both build on the set-FSM primitive but use it differently:
LBE shrinks the *start set* with a lookback pass; CSE partitions it into
convergence sets.  The two compose naturally — and the paper's own
Section III-B observation ("the most natural application [of
set(N)->set(M)] is to compute the lookback") invites it:

1. run LBE's lookback over the previous segment's suffix (one set-flow,
   ``L`` cycles) to get the feasible boundary set ``F``;
2. start each convergence set's flow from ``CS ∩ F`` instead of ``CS``.

Benefits over plain CSE:

- convergence sets with no feasible member are *pruned* — zero flows,
  zero cycles (plain CSE runs them to cover states that provably cannot
  occur);
- the surviving sets start smaller, so they converge no later and
  sometimes strictly earlier (a set that diverges from all of CS may
  converge from CS ∩ F — fewer re-executions).

Soundness: the true boundary state of every segment lies in ``F`` (it is
the image of the previous segment's suffix), and composition values only
ever contain reachable boundary states, so restricting each set to its
feasible members never discards a state the composition can ask about.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.core.engine import CseEngine
from repro.core.reexec import compose_and_fix
from repro.core.transition import SegmentFunction, execute_segment
from repro.engines.base import RunResult, SegmentTrace, even_boundaries
from repro.hardware.cost import segment_cycles

__all__ = ["HybridCseEngine"]


class HybridCseEngine(CseEngine):
    """CSE with a lookback-pruned start set per segment.

    Parameters beyond :class:`CseEngine`:

    lookback:
        Suffix length of the lookback pass (LBE's ``L``).  The pass costs
        ``L`` cycles of prologue per segment and is itself one set-flow.
    """

    display_name = "HybridCSE"
    building_block = "set FSM"
    static_optimization = "convergence set prediction + lookback pruning"
    dynamic_optimization = "convergence check and deactivation check"

    def __init__(self, dfa: Dfa, lookback: int = 20, **kwargs):
        super().__init__(dfa, **kwargs)
        if lookback < 0:
            raise ValueError("lookback must be >= 0")
        self.lookback = lookback

    def run(self, symbols, start_state: Optional[int] = None) -> RunResult:
        syms, start = self._prepare(symbols, start_state)
        bounds = even_boundaries(int(syms.size), self.n_segments)
        traces: List[SegmentTrace] = []
        functions: List[SegmentFunction] = []
        enum_bounds: List[Tuple[int, int]] = []
        first_final = start
        pruned_sets = 0
        all_states = np.arange(self.dfa.num_states, dtype=np.int32)
        base_blocks = self.partition.block_arrays()
        for i, (a, b) in enumerate(bounds):
            segment = syms[a:b]
            if i == 0:
                first_final = self.dfa.run(segment, start)
                cycles = int(segment.size) * self.config.symbol_cycles
                traces.append(
                    SegmentTrace(a, b, [1] * (int(segment.size) + 1), cycles)
                )
                continue
            # lookback pass: one set-flow over the previous suffix
            prev_start = bounds[i - 1][0]
            lb_from = max(prev_start, a - self.lookback)
            suffix = syms[lb_from:a]
            feasible = self.dfa.set_run(all_states, suffix)
            lookback_cycles = int(suffix.size) * self.config.symbol_cycles
            # prune each convergence set to its feasible members
            restricted = [
                np.intersect1d(block, feasible, assume_unique=True)
                for block in base_blocks
            ]
            pruned_sets += sum(1 for r in restricted if r.size == 0)
            function, r_trace = execute_segment(
                self.dfa,
                self.partition,
                segment,
                inactive_mask=self._inactive_mask,
                track_reports=self.track_reports,
                blocks=restricted,
            )
            cycles = segment_cycles(
                r_trace[:-1],
                self.cores_per_segment,
                self.config,
                checks=True,
                prologue_cycles=lookback_cycles,
            )
            traces.append(SegmentTrace(a, b, r_trace, cycles))
            functions.append(function)
            enum_bounds.append((a, b))

        final, stats = compose_and_fix(
            self.dfa,
            syms,
            enum_bounds,
            functions,
            int(first_final),
            policy=self.policy,
            config=self.config,
        )
        result = self._finalize(
            syms,
            final,
            traces,
            serial_tail=stats.extra_cycles,
            policy=self.policy,
            diverged_segments=stats.diverged_segments,
            reeval_passes=stats.reeval_passes,
            pruned_sets=pruned_sets,
            lookback=self.lookback,
            num_convergence_sets=self.num_convergence_sets,
        )
        result.reexec_segments = len(stats.reexecuted_segments)
        self._last_functions = functions
        self._last_bounds = bounds
        return result
