"""Convergence set prediction (Section IV-B).

The pipeline:

1. :func:`profile_partitions` — run ``n_inputs`` random strings (length and
   symbol range mimic the real workload, Section IV-B1) through the DFA's
   all-state oracle; each input induces one convergence partition; count
   distinct partitions.
2. :func:`maximum_frequency_partition` — the MFP alone is often weak
   (Figure 8: e.g. ClamAV 61%).
3. :func:`merge_to_cutoff` — refine the MFP with further partitions, in
   frequency order, until the merged partition *covers* at least the
   cut-off fraction of profiled inputs (Section IV-B2, Figures 9/16).

:func:`predict_convergence_sets` bundles the three for the engine.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Counter as CounterT, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.core.partition import StatePartition

__all__ = [
    "ProfilingConfig",
    "profile_inputs",
    "profile_finals",
    "profile_partitions",
    "maximum_frequency_partition",
    "covered_fraction",
    "merge_to_cutoff",
    "MergeResult",
    "predict_convergence_sets",
]


@dataclass(frozen=True)
class ProfilingConfig:
    """Random-input profiling knobs.

    ``symbol_low``/``symbol_high`` bound the sampled symbol range — the
    paper samples "a subset of ASCII" when the FSM only accepts visible
    characters.  ``input_len`` should match the segment lengths the engine
    will run (real applications split input into similar-length pieces).
    """

    n_inputs: int = 1000
    input_len: int = 200
    symbol_low: int = 0
    symbol_high: int = 255
    seed: int = 20180623  # MICRO 2018 submission-ish; any fixed seed works

    def __post_init__(self):
        if self.n_inputs < 1:
            raise ValueError("n_inputs must be >= 1")
        if self.input_len < 1:
            raise ValueError("input_len must be >= 1")
        if not (0 <= self.symbol_low <= self.symbol_high):
            raise ValueError("bad symbol range")

    def random_input(self, rng: np.random.Generator, alphabet_size: int) -> np.ndarray:
        high = min(self.symbol_high, alphabet_size - 1)
        low = min(self.symbol_low, high)
        return rng.integers(low, high + 1, size=self.input_len, dtype=np.int64)


def profile_inputs(dfa: Dfa, config: ProfilingConfig) -> np.ndarray:
    """The ``(n_inputs, input_len)`` profiling words, in generation order.

    Words are drawn one at a time from a generator seeded with
    ``config.seed`` — the exact RNG consumption of the original
    interpreted loop, so both profiler paths see identical inputs.
    """
    rng = np.random.default_rng(config.seed)
    return np.stack(
        [config.random_input(rng, dfa.alphabet_size) for _ in range(config.n_inputs)]
    )


def profile_finals(
    dfa: Dfa,
    config: Optional[ProfilingConfig] = None,
    vectorized: bool = True,
    flat_table: Optional[np.ndarray] = None,
) -> np.ndarray:
    """All-state endpoints of every profiling input: ``(n_inputs, n_states)``.

    Row ``i`` is ``dfa.run_all_states(word_i)``.  The vectorized path
    advances every state of every profiling input in lockstep — one flat
    gather per symbol position instead of ``n_inputs * input_len``
    interpreted ``take`` calls — and is bit-identical to the interpreted
    loop (``vectorized=False``, kept as the differential baseline).

    ``flat_table`` optionally reuses a raveled transition matrix the
    caller already built (the compilation cache shares one with the
    lockstep kernel); any integer dtype is accepted — the gather runs in
    int32, where every index fits (``alphabet_size * num_states`` is
    bounded by the int32 table the :class:`Dfa` stores).
    """
    config = config or ProfilingConfig()
    words = profile_inputs(dfa, config)
    if not vectorized:
        return np.stack([dfa.run_all_states(word) for word in words])
    n_states = dfa.num_states
    if flat_table is None:
        flat = dfa.transitions.ravel()
    else:
        flat = flat_table.astype(np.int32, copy=False)
    # offsets[i, t] = symbol_of(input i, position t) * n_states, so one
    # fancy-indexed gather advances all n_inputs * n_states flows at once;
    # int32 throughout halves the memory traffic of the hot loop
    offsets = (words * n_states).astype(np.int32)
    cur = np.tile(np.arange(n_states, dtype=np.int32), (config.n_inputs, 1))
    idx = np.empty_like(cur)
    for t in range(config.input_len):
        np.add(offsets[:, t, None], cur, out=idx)
        np.take(flat, idx, out=cur)
    return cur


def profile_partitions(
    dfa: Dfa,
    config: Optional[ProfilingConfig] = None,
    vectorized: bool = True,
    flat_table: Optional[np.ndarray] = None,
) -> CounterT[StatePartition]:
    """Census of convergence partitions over random profiling inputs.

    The census is an exact value regardless of ``vectorized``: the batched
    profiler sees the same words (same seed, same RNG consumption) and the
    same endpoints, and :class:`Counter` equality ignores insertion order.
    The vectorized path additionally deduplicates identical endpoint rows
    before building partitions, so the Python-level partition construction
    is paid once per *distinct* outcome instead of once per input.
    """
    config = config or ProfilingConfig()
    census: CounterT[StatePartition] = Counter()
    if not vectorized:
        rng = np.random.default_rng(config.seed)
        for _ in range(config.n_inputs):
            word = config.random_input(rng, dfa.alphabet_size)
            finals = dfa.run_all_states(word)
            census[StatePartition.from_final_states(finals)] += 1
        return census
    finals = profile_finals(dfa, config, flat_table=flat_table)
    rows, counts = np.unique(finals, axis=0, return_counts=True)
    for row, count in zip(rows, counts.tolist()):
        census[StatePartition.from_final_states(row)] += int(count)
    return census


def maximum_frequency_partition(
    census: CounterT[StatePartition],
) -> Tuple[StatePartition, float]:
    """The MFP and its frequency as a fraction of profiled inputs."""
    if not census:
        raise ValueError("empty census")
    total = sum(census.values())
    partition, count = census.most_common(1)[0]
    return partition, count / total


def covered_fraction(partition: StatePartition, census: CounterT[StatePartition]) -> float:
    """Fraction of profiled inputs whose partition is covered.

    ``partition`` covers a census entry ``Q`` when it refines ``Q``; inputs
    that produced ``Q`` then provably converge under ``partition`` too.
    """
    total = sum(census.values())
    if total == 0:
        raise ValueError("empty census")
    covered = sum(
        count for entry, count in census.items() if partition.refines(entry)
    )
    return covered / total


@dataclass(frozen=True)
class MergeResult:
    """Outcome of the merge strategy."""

    partition: StatePartition
    covered: float
    merged_count: int

    @property
    def num_convergence_sets(self) -> int:
        """R0 of a CSE run using this partition."""
        return self.partition.num_blocks


def merge_to_cutoff(
    census: CounterT[StatePartition],
    cutoff: float = 0.99,
    max_blocks: Optional[int] = None,
) -> MergeResult:
    """The paper's heuristic merge strategy.

    - start from the MFP;
    - fold in further partitions from higher frequency to lower (each fold
      is a Figure-10 refinement; partitions already covered cost nothing —
      the "compatible check");
    - stop once the covered fraction reaches ``cutoff`` (or the census is
      exhausted, which is the "merge to 100%" strategy).

    ``max_blocks`` optionally aborts folds that would exceed a block
    budget — the guard the paper wants for Protomata, whose 100% merge
    explodes to 61 subsets.
    """
    if not (0.0 < cutoff <= 1.0):
        raise ValueError("cutoff must be in (0, 1]")
    ordered = [p for p, _ in census.most_common()]
    if not ordered:
        raise ValueError("empty census")
    merged = ordered[0]
    covered = covered_fraction(merged, census)
    merges = 0
    for candidate in ordered[1:]:
        if covered >= cutoff:
            break
        if merged.refines(candidate):
            continue  # already covered; frequency was already counted
        refined = merged.refine(candidate)
        if max_blocks is not None and refined.num_blocks > max_blocks:
            continue
        merged = refined
        merges += 1
        covered = covered_fraction(merged, census)
    return MergeResult(merged, covered, merges)


def predict_convergence_sets(
    dfa: Dfa,
    config: Optional[ProfilingConfig] = None,
    cutoff: float = 0.99,
    max_blocks: Optional[int] = None,
) -> MergeResult:
    """Profile + merge in one call — what :class:`CseEngine` does by default."""
    census = profile_partitions(dfa, config)
    return merge_to_cutoff(census, cutoff=cutoff, max_blocks=max_blocks)
