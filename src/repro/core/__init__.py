"""CSE — Convergence Set Enumeration (the paper's contribution).

The pieces, mirroring Section IV of the paper:

- :mod:`~repro.core.setfsm` — the ``set(N) -> set(M)`` computation
  primitive (Section III).
- :mod:`~repro.core.partition` — state-set partitions and the partition
  refinement algorithm (Figure 10).
- :mod:`~repro.core.profiling` — convergence set *prediction*: random-input
  profiling, the maximum-frequency partition (Figure 8), and the merge
  strategy with cut-off coverage (Section IV-B2).
- :mod:`~repro.core.transition` — per-segment transition functions
  ``T: ST -> ST`` and their execution with set-flows (Section IV-C
  formalization).
- :mod:`~repro.core.reexec` — the global re-execution algorithm: basic,
  last-concrete, and opportunistic re-evaluation policies.
- :mod:`~repro.core.engine` — :class:`CseEngine`, tying it all together
  under the common :class:`~repro.engines.base.Engine` interface.
"""

from repro.core.partition import StatePartition
from repro.core.profiling import (
    ProfilingConfig,
    profile_partitions,
    maximum_frequency_partition,
    covered_fraction,
    merge_to_cutoff,
    MergeResult,
    predict_convergence_sets,
)
from repro.core.setfsm import SetFsm
from repro.core.transition import CsOutcome, SegmentFunction, execute_segment
from repro.core.reexec import ReexecutionStats, compose_and_fix
from repro.core.engine import CseEngine
from repro.core.adaptive import AdaptiveCseEngine
from repro.core.hybrid import HybridCseEngine
from repro.core.recovery import RecoveredRun, recover_reports
from repro.core import store

__all__ = [
    "StatePartition",
    "ProfilingConfig",
    "profile_partitions",
    "maximum_frequency_partition",
    "covered_fraction",
    "merge_to_cutoff",
    "MergeResult",
    "predict_convergence_sets",
    "SetFsm",
    "CsOutcome",
    "SegmentFunction",
    "execute_segment",
    "ReexecutionStats",
    "compose_and_fix",
    "CseEngine",
    "AdaptiveCseEngine",
    "HybridCseEngine",
    "RecoveredRun",
    "recover_reports",
    "store",
]
