"""Online refinement of convergence sets (an extension beyond the paper).

The paper predicts convergence sets *offline* from random profiling and
never revisits them.  When the deployed input distribution drifts away
from the profiling distribution, mispredicted sets keep diverging and
every divergence pays a re-execution.  This module closes that loop:
:class:`AdaptiveCseEngine` watches its own runs and refines the partition
with the divergence patterns it actually observes, so a systematically
diverging convergence set is split once and stops costing re-executions.

The update rule is conservative and sound: an observed divergence of block
``B`` into final-state groups ``B1..Bk`` is itself a partition of ``B``;
refining the current partition with it (the paper's own Figure-10
operation) yields a partition under which that input would have converged.
Soundness of execution is untouched — the partition is only ever refined
between runs, and any partition is valid for CSE.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.automata.dfa import Dfa
from repro.core.engine import CseEngine
from repro.core.partition import StatePartition

__all__ = ["AdaptiveCseEngine"]


class AdaptiveCseEngine(CseEngine):
    """CSE that learns from its own divergences.

    Parameters beyond :class:`CseEngine`:

    min_divergences:
        Refine only after a block has diverged this many times (hysteresis
        so one-off straddles don't inflate the partition).
    max_blocks:
        Hard cap on partition growth; refinements that would exceed it are
        skipped (mirrors the paper's concern about Protomata's 61-subset
        blow-up).
    """

    def __init__(
        self,
        dfa: Dfa,
        min_divergences: int = 2,
        max_blocks: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(dfa, **kwargs)
        if min_divergences < 1:
            raise ValueError("min_divergences must be >= 1")
        self.min_divergences = min_divergences
        self.max_blocks = max_blocks
        #: observed divergence patterns awaiting promotion:
        #: canonical split partition -> occurrence count
        self._pending: Dict[StatePartition, int] = {}
        self.refinements_applied = 0

    def run(self, symbols, start_state=None):
        result = super().run(symbols, start_state)
        self._learn_from_run()
        return result

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def _learn_from_run(self) -> None:
        """Harvest divergence patterns from the segments just executed."""
        for function in self._last_functions:
            for cs_index, outcome in enumerate(function.outcomes):
                if outcome.converged:
                    continue
                split = self._split_partition(cs_index, outcome.states)
                if split is None:
                    continue
                count = self._pending.get(split, 0) + 1
                self._pending[split] = count
                if count >= self.min_divergences:
                    self._apply(split)

    def _split_partition(
        self, cs_index: int, final_states: np.ndarray
    ) -> Optional[StatePartition]:
        """The partition expressing "split this block by its outcome".

        The diverged block's members are regrouped by which final state
        their own ``state -> state`` path reached.  That per-member
        information is not retained by set flows, so we recover it with a
        targeted replay of the block — an offline-side cost, mirroring how
        a deployment would learn from logged divergences, never on the
        latency-critical path.
        """
        block = sorted(self.partition.blocks[cs_index])
        if len(block) < 2:
            return None
        segment = self._last_divergent_segment(cs_index)
        if segment is None:
            return None
        finals = {q: int(self.dfa.run(segment, state=q)) for q in block}
        groups: Dict[int, List[int]] = {}
        for q, f in finals.items():
            groups.setdefault(f, []).append(q)
        if len(groups) < 2:
            return None
        # extend the block split to a full-state partition by leaving every
        # other current block intact
        blocks = [
            sorted(b) for i, b in enumerate(self.partition.blocks)
            if i != cs_index
        ]
        blocks.extend(groups.values())
        return StatePartition(blocks, self.dfa.num_states)

    def _last_divergent_segment(self, cs_index: int) -> Optional[np.ndarray]:
        """Find one segment of the last run where this set diverged."""
        if not hasattr(self, "_last_syms"):
            return None
        for function, (a, b) in zip(self._last_functions, self._last_bounds[1:]):
            if not function.outcomes[cs_index].converged:
                return self._last_syms[a:b]
        return None

    def _apply(self, split: StatePartition) -> None:
        refined = self.partition.refine(split)
        if refined == self.partition:
            return
        if self.max_blocks is not None and refined.num_blocks > self.max_blocks:
            return
        self.partition = refined
        self.refinements_applied += 1
        self._pending.clear()  # block indices changed; restart observation

    # retain the symbols of the last run for replay
    def _prepare(self, symbols, start_state):
        syms, start = super()._prepare(symbols, start_state)
        self._last_syms = syms
        return syms, start
