"""Report and state-path recovery (Section IV-A).

``set(N) -> set(M)`` deliberately discards per-state paths, so a CSE run
yields the final state but not the intermediate report stream.  The paper:
"we can still recover such path information with another sequential
execution ... computing the terminal state is latency sensitive while
state transition path is not."

:func:`recover_reports` implements that second pass: once composition has
fixed the concrete start state of every segment, each segment can be
re-scanned *independently and in parallel* from its known start state to
emit the exact ``(offset, state)`` report events.  The recovery therefore
costs one more parallel pass (not a sequential one over the whole input),
and only for the segments that can produce reports at all — segments whose
convergence-set flow never touched an accepting state are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import Dfa, as_symbols
from repro.engines.base import even_boundaries

__all__ = ["RecoveredRun", "recover_reports", "segment_start_states"]


@dataclass
class RecoveredRun:
    """Outcome of a recovery pass."""

    final_state: int
    reports: List[Tuple[int, int]]
    #: concrete state entering each segment (index 0 = overall start state)
    boundary_states: List[int]
    #: segments that were actually re-scanned (had report potential)
    scanned_segments: List[int]
    #: extra cycles of the recovery pass on the parallel cost model
    recovery_cycles: int


def segment_start_states(
    dfa: Dfa, syms: np.ndarray, n_segments: int, start_state: Optional[int] = None
) -> List[int]:
    """Concrete state entering each segment (plus the final state last).

    Runs sequentially; used as the oracle for recovery tests and as the
    fallback when no engine run is available.
    """
    bounds = even_boundaries(int(syms.size), n_segments)
    state = dfa.start if start_state is None else int(start_state)
    states = [state]
    for a, b in bounds:
        state = dfa.run(syms[a:b], state)
        states.append(state)
    return states


def recover_reports(
    dfa: Dfa,
    symbols,
    n_segments: int,
    start_state: Optional[int] = None,
    boundary_states: Optional[Sequence[int]] = None,
    skip_reportless: bool = True,
) -> RecoveredRun:
    """Second-pass recovery of the exact report stream.

    Parameters
    ----------
    boundary_states:
        Concrete per-segment entry states, e.g. assembled from a CSE run's
        composition.  When omitted they are recomputed (sequentially) —
        callers holding a finished CSE run should pass them in to keep the
        pass embarrassingly parallel.
    skip_reportless:
        Skip segments whose entry state is *dead* (no accepting state
        reachable): they provably produce no report, so the rescan is
        unnecessary.  Results are identical either way.
    """
    syms = as_symbols(symbols)
    bounds = even_boundaries(int(syms.size), n_segments)
    if boundary_states is None:
        boundary_states = segment_start_states(dfa, syms, n_segments, start_state)
    if len(boundary_states) != len(bounds) + 1:
        raise ValueError(
            f"need {len(bounds) + 1} boundary states, got {len(boundary_states)}"
        )

    from repro.automata.analysis import dead_states  # local: avoids cycle

    dead = dead_states(dfa) if skip_reportless else None
    acc = dfa.accepting_mask
    reports: List[Tuple[int, int]] = []
    scanned: List[int] = []
    max_segment_cycles = 0
    for i, (a, b) in enumerate(bounds):
        entry = int(boundary_states[i])
        segment = syms[a:b]
        if dead is not None and dead[entry]:
            continue
        scanned.append(i)
        max_segment_cycles = max(max_segment_cycles, int(segment.size))
        state = entry
        table = dfa.transitions
        for offset, sym in enumerate(segment):
            state = int(table[sym, state])
            if acc[state]:
                reports.append((a + offset, state))
        if state != int(boundary_states[i + 1]):
            raise AssertionError(
                "boundary states inconsistent with the input — recovery "
                "needs the states produced by the same run"
            )
    return RecoveredRun(
        final_state=int(boundary_states[-1]),
        reports=reports,
        boundary_states=[int(s) for s in boundary_states],
        scanned_segments=scanned,
        recovery_cycles=max_segment_cycles,
    )
