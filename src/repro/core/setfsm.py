"""The ``set(N) -> set(M)`` computation primitive (Section III).

On one-hot hardware, stepping an active mask with many bits set costs the
same as stepping a single state — but the per-state ``state -> state``
mapping is lost: from ``{S0, S1} -> {S2, S3}`` nobody can tell which source
produced which target.  The primitive becomes *useful* exactly when the
output collapses to a single state (M = 1): then every input state provably
mapped to that state, and N enumeration paths were computed for the price
of one.

:class:`SetFsm` wraps a DFA with this set-level stepping plus the two
convenience passes the engines need: a full segment run with size tracing,
and a lookback pass (LBE's use of the primitive, Section III-B).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.automata.dfa import Dfa, as_symbols

__all__ = ["SetFsm"]


class SetFsm:
    """Set-transition view of a DFA.

    State sets are represented as sorted, duplicate-free ``np.int32``
    arrays — the software analogue of a one-hot active mask.
    """

    def __init__(self, dfa: Dfa):
        self.dfa = dfa

    @property
    def num_states(self) -> int:
        return self.dfa.num_states

    def full_set(self) -> np.ndarray:
        """The set of all states (the start of a lookback pass)."""
        return np.arange(self.dfa.num_states, dtype=np.int32)

    def make_set(self, states: Iterable[int]) -> np.ndarray:
        """Normalize an iterable of state ids into set representation."""
        return np.unique(np.asarray(list(states), dtype=np.int32))

    def step(self, states: np.ndarray, symbol: int) -> np.ndarray:
        """One ``set(N) -> set(M)`` transition.  Guarantees ``M <= N``.

        The shrink is the paper's convergence property: a deterministic
        transition function can only merge states, never split them.
        """
        return np.unique(self.dfa.transitions[symbol].take(states))

    def run(
        self,
        states: np.ndarray,
        symbols,
        record_sizes: bool = False,
    ):
        """Run a whole symbol sequence.

        Returns the final set, or ``(final_set, sizes)`` when
        ``record_sizes`` is true (``sizes[t]`` is ``M`` after symbol ``t``).
        """
        cur = self.make_set(states)
        table = self.dfa.transitions
        sizes: List[int] = []
        for sym in as_symbols(symbols):
            cur = np.unique(table[sym].take(cur))
            if record_sizes:
                sizes.append(int(cur.size))
        if record_sizes:
            return cur, sizes
        return cur

    def converged(self, states: np.ndarray) -> bool:
        """True when the set has collapsed to a single state (M = 1)."""
        return states.size == 1

    def lookback(self, suffix) -> np.ndarray:
        """LBE's application: reduce all N states through a suffix.

        One set-flow over ``suffix`` yields every state the machine can
        possibly be in at the segment boundary — with the cost of a single
        enumeration path instead of N.
        """
        return self.run(self.full_set(), suffix)

    def run_with_reports(
        self, states: np.ndarray, symbols
    ) -> Tuple[np.ndarray, List[int], bool]:
        """Segment run that also watches accepting-state occupancy.

        Returns ``(final_set, sizes, report_ambiguous)`` where
        ``report_ambiguous`` is true if at any step the active set contained
        two or more accepting states — the footnote condition of Section
        IV-A: such a convergence set cannot attribute its reports to a
        single path and must be treated as divergent when exact report
        streams are required.
        """
        cur = self.make_set(states)
        table = self.dfa.transitions
        acc = self.dfa.accepting_mask
        sizes: List[int] = []
        ambiguous = False
        for sym in as_symbols(symbols):
            cur = np.unique(table[sym].take(cur))
            sizes.append(int(cur.size))
            if not ambiguous and int(np.count_nonzero(acc[cur])) > 1:
                ambiguous = True
        return cur, sizes, ambiguous
