"""Segment transition functions ``T: ST -> ST`` (Section IV-C).

Executing one enumerative segment under CSE means running one set-flow per
convergence set.  The result is the segment's *transition function*: each
convergence set either converged (maps to a concrete state — all its
enumeration paths are now known) or diverged (maps to a set of possible
states).  :func:`execute_segment` produces that function together with the
flow-count trace the cost model integrates.

Set-flows are dynamically merged when their current state sets become
identical (two convergence sets that have collapsed onto the same states
evolve identically forever) and a flow parked on an absorbing dead sink is
free — these are the convergence/deactivation checks at set granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.core.partition import StatePartition

__all__ = ["CsOutcome", "SegmentFunction", "execute_segment"]


@dataclass(frozen=True)
class CsOutcome:
    """Where one convergence set ended up after a segment.

    ``converged`` means the set collapsed to the single ``state`` — the
    paper's M = 1 case, in which every member's enumeration path is known.
    Otherwise ``states`` holds the diverged final set.
    ``report_ambiguous`` marks the footnote condition: the set touched two
    or more accepting states at once, so its report stream cannot be
    attributed to a single path even if the final states converged.
    """

    converged: bool
    state: Optional[int]
    states: np.ndarray
    report_ambiguous: bool = False


@dataclass
class SegmentFunction:
    """The transition function of one executed segment.

    ``outcomes[i]`` is the result for convergence set ``i``;
    ``cs_of_state[q]`` locates the convergence set of any state, so the
    function can be applied to arbitrary state-set values during
    composition and opportunistic re-evaluation.
    """

    outcomes: List[CsOutcome]
    cs_of_state: np.ndarray

    def apply(self, value: np.ndarray) -> np.ndarray:
        """Apply ``T`` to a possible-state set (the composition rules).

        For a concrete value ``{q}`` this is exactly the paper's selection:
        look up q's convergence set; a converged set yields its concrete
        state.  For a wider value the result is the union of the outcomes
        of every convergence set the value touches — a sound
        over-approximation that always contains the true state (rule (1)
        and (2) of Section IV-C).
        """
        value = np.asarray(value, dtype=np.int64)
        touched = np.unique(self.cs_of_state[value])
        parts: List[np.ndarray] = []
        for cs in touched.tolist():
            outcome = self.outcomes[cs]
            if outcome.converged:
                parts.append(np.asarray([outcome.state], dtype=np.int64))
            elif outcome.states.size:
                # outcome arrays are int64 end-to-end; this is a no-op view
                parts.append(outcome.states.astype(np.int64, copy=False))
            # empty outcome: the set was proven infeasible (hybrid pruning)
        if not parts:
            raise AssertionError(
                "transition function applied to a provably infeasible value"
            )
        return np.unique(np.concatenate(parts))

    def concrete_for(self, state: int) -> Optional[int]:
        """The concrete image of ``state`` if its convergence set converged."""
        outcome = self.outcomes[int(self.cs_of_state[int(state)])]
        return outcome.state if outcome.converged else None

    @property
    def all_converged(self) -> bool:
        return all(o.converged for o in self.outcomes)


def _flow_key(states: np.ndarray) -> bytes:
    return states.tobytes()


def execute_segment(
    dfa: Dfa,
    partition: StatePartition,
    segment: np.ndarray,
    inactive_mask: Optional[np.ndarray] = None,
    track_reports: bool = False,
    blocks: Optional[List[np.ndarray]] = None,
) -> Tuple[SegmentFunction, List[int]]:
    """Run one enumerative segment with one set-flow per convergence set.

    Returns ``(function, r_trace)``.  ``r_trace`` has one entry per symbol
    plus a trailing entry: the number of *chargeable* flows entering each
    symbol (merged flows counted once, flows fully parked on absorbing dead
    sinks counted zero) and the final RT.

    ``blocks`` optionally overrides the starting set of each convergence
    set (one array per partition block, aligned by index; empty arrays
    allowed) — the hook the CSE+lookback hybrid uses to start each set
    from only its *feasible* members.  The resulting function still
    answers for every state via the full partition's labels; a block
    emptied by the override yields an empty divergent outcome, which
    :meth:`SegmentFunction.apply` skips.
    """
    if blocks is None:
        blocks = partition.block_arrays()
    elif len(blocks) != partition.num_blocks:
        raise ValueError("need exactly one block override per partition block")
    blocks = [np.asarray(b, dtype=np.int64) for b in blocks]
    acc = dfa.accepting_mask
    # flow pool: distinct current sets; each CS points at a flow
    flow_sets: List[np.ndarray] = []
    flow_of_cs: List[int] = []
    pool: Dict[bytes, int] = {}
    for block in blocks:
        key = _flow_key(block)
        if key not in pool:
            pool[key] = len(flow_sets)
            flow_sets.append(block)
        flow_of_cs.append(pool[key])
    ambiguous = [False] * len(blocks)

    def live_count() -> int:
        live = 0
        for states in flow_sets:
            if states.size == 0:
                continue  # pruned-empty set: no flow to run
            if (
                inactive_mask is not None
                and states.size == 1
                and inactive_mask[int(states[0])]
            ):
                continue
            live += 1
        return live

    # int64 table keeps stepped sets int64 end-to-end (pool keys comparable)
    table = dfa.transitions.astype(np.int64)
    r_trace: List[int] = [live_count()]
    for sym in segment:
        new_sets: List[np.ndarray] = []
        new_pool: Dict[bytes, int] = {}
        remap: List[int] = []
        for states in flow_sets:
            stepped = np.unique(table[sym].take(states))
            key = _flow_key(stepped)
            if key not in new_pool:
                new_pool[key] = len(new_sets)
                new_sets.append(stepped)
            remap.append(new_pool[key])
        flow_of_cs = [remap[f] for f in flow_of_cs]
        flow_sets = new_sets
        if track_reports:
            for cs, flow in enumerate(flow_of_cs):
                if not ambiguous[cs]:
                    states = flow_sets[flow]
                    if int(np.count_nonzero(acc[states])) > 1:
                        ambiguous[cs] = True
        r_trace.append(live_count())

    outcomes: List[CsOutcome] = []
    for cs, flow in enumerate(flow_of_cs):
        states = flow_sets[flow]
        if states.size == 1:
            outcomes.append(
                CsOutcome(True, int(states[0]), states, ambiguous[cs])
            )
        else:
            outcomes.append(CsOutcome(False, None, states, ambiguous[cs]))
    return SegmentFunction(outcomes, partition.labels()), r_trace
