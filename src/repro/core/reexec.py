"""Global re-execution (Section IV-C): correctness when speculation fails.

After all segments execute in parallel, the per-segment transition
functions are composed left to right.  If the composition ends concrete the
speculation succeeded.  Otherwise one of three policies repairs the run:

- ``basic`` — re-execute segments 2..m sequentially from the concrete
  state (approach (1) in the paper);
- ``last_concrete`` — find the latest segment whose composed output was a
  single state and re-execute only what follows (approach (2));
- ``opportunistic`` — re-execute one segment, then cheaply *re-evaluate*
  the already-computed transition functions of its successors; repeat only
  if the chain still fails to go concrete (approach (3), the design the
  paper's hardware implements).

Every policy yields exactly the sequential machine's final state; they
differ only in how many serial cycles the repair costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import Dfa
from repro.core.transition import SegmentFunction
from repro.hardware.ap import APConfig

__all__ = ["ReexecutionStats", "compose_and_fix", "POLICIES"]

POLICIES = ("basic", "last_concrete", "opportunistic")


@dataclass
class ReexecutionStats:
    """Bookkeeping of a composition + repair pass."""

    reexecuted_segments: List[int] = field(default_factory=list)
    reeval_passes: int = 0
    extra_cycles: int = 0
    diverged_segments: int = 0

    @property
    def needed_reexecution(self) -> bool:
        return bool(self.reexecuted_segments)


def _compose(
    first_final: int,
    functions: Sequence[SegmentFunction],
) -> Tuple[List[np.ndarray], int]:
    """Left-to-right composition of the segment transition functions.

    Returns per-boundary possible-state sets (``values[i]`` is the value
    after enumerative segment ``i``) and the index of the last concrete
    point (-1 means only the first segment's output is concrete).
    """
    values: List[np.ndarray] = []
    current = np.asarray([first_final], dtype=np.int64)
    last_concrete = -1
    for i, fn in enumerate(functions):
        current = fn.apply(current)
        values.append(current)
        if current.size == 1:
            last_concrete = i
    return values, last_concrete


def compose_and_fix(
    dfa: Dfa,
    syms: np.ndarray,
    enum_bounds: Sequence[Tuple[int, int]],
    functions: Sequence[SegmentFunction],
    first_final: int,
    policy: str = "opportunistic",
    config: Optional[APConfig] = None,
) -> Tuple[int, ReexecutionStats]:
    """Compose segment functions; repair with the selected policy.

    Parameters
    ----------
    enum_bounds:
        ``(start, end)`` offsets of each *enumerative* segment (aligned
        with ``functions``).
    first_final:
        Concrete output state of segment 1.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; pick one of {POLICIES}")
    config = config or APConfig()
    stats = ReexecutionStats()
    stats.diverged_segments = sum(1 for fn in functions if not fn.all_converged)
    if not functions:
        return int(first_final), stats

    values, _ = _compose(first_final, functions)
    if values[-1].size == 1:
        return int(values[-1][0]), stats

    if policy == "basic":
        # Serially re-execute every enumerative segment.
        state = int(first_final)
        for i, (a, b) in enumerate(enum_bounds):
            state = dfa.run(syms[a:b], state)
            stats.reexecuted_segments.append(i)
            stats.extra_cycles += (b - a) * config.symbol_cycles
        return state, stats

    if policy == "last_concrete":
        # Backward search for the last concrete point, then serial re-run.
        r = -1
        for i in range(len(functions) - 1, -1, -1):
            if values[i].size == 1:
                r = i
                break
        state = int(values[r][0]) if r >= 0 else int(first_final)
        for i in range(r + 1, len(functions)):
            a, b = enum_bounds[i]
            state = dfa.run(syms[a:b], state)
            stats.reexecuted_segments.append(i)
            stats.extra_cycles += (b - a) * config.symbol_cycles
        return state, stats

    # opportunistic: re-execute one segment, re-evaluate the rest, repeat.
    while values[-1].size != 1:
        r = -1
        for i in range(len(functions) - 1, -1, -1):
            if values[i].size == 1:
                r = i
                break
        state = int(values[r][0]) if r >= 0 else int(first_final)
        target = r + 1
        a, b = enum_bounds[target]
        state = dfa.run(syms[a:b], state)
        stats.reexecuted_segments.append(target)
        stats.extra_cycles += (b - a) * config.symbol_cycles
        values[target] = np.asarray([state], dtype=np.int64)
        # Function re-evaluation: propagate the now-concrete value through
        # the precomputed transition functions — cycles proportional to the
        # number of convergence sets touched, not to input length.
        current = values[target]
        for i in range(target + 1, len(functions)):
            current = functions[i].apply(current)
            values[i] = current
            stats.extra_cycles += (
                config.reeval_cycles_per_cs * len(functions[i].outcomes)
            )
        stats.reeval_passes += 1
    return int(values[-1][0]), stats
