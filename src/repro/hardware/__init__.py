"""Automata Processor (AP) hardware cost model.

The paper evaluates all designs analytically on Micron's AP: one rank of 16
half-cores, 7.5 ns cycles, one symbol per cycle per flow, 3-cycle context
switches between time-multiplexed flows, and 1-cycle pairwise convergence
checks.  :class:`APConfig` captures those constants; :mod:`cost` integrates
per-symbol flow counts (``R`` traces) into cycle totals.
"""

from repro.hardware.ap import APConfig
from repro.hardware.cost import (
    flow_step_cycles,
    segment_cycles,
    chunk_overhead_cycles,
    parallel_cycles,
    throughput_symbols_per_sec,
)

__all__ = [
    "APConfig",
    "flow_step_cycles",
    "segment_cycles",
    "chunk_overhead_cycles",
    "parallel_cycles",
    "throughput_symbols_per_sec",
]
