"""AP configuration constants (Section V-C of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["APConfig"]


@dataclass(frozen=True)
class APConfig:
    """Cost constants of the Automata Processor evaluation model.

    Defaults reproduce the paper's setup: one AP rank (16 half-cores),
    7.5 ns per cycle, 1 symbol/cycle for a sequential FSM, 3 cycles per
    context switch between time-multiplexed flows, and 1 cycle to
    convergence-check every two flows.

    ``check_interval`` is the granularity of time multiplexing: a flow runs
    a chunk of this many symbols before the half-core switches to the next
    flow and (for engines with dynamic optimization) performs convergence /
    deactivation checks.  Per-chunk accounting keeps the 3-cycle switch cost
    from being charged on every symbol, which matches the paper's observed
    "RT flows => ~RT cycles per symbol" behaviour (e.g. LBE at RT ~= 1.9
    runs at about half the ideal throughput).
    """

    cycle_ns: float = 7.5
    total_half_cores: int = 16
    symbol_cycles: int = 1
    context_switch_cycles: int = 3
    convergence_check_cycles_per_pair: int = 1
    check_interval: int = 16
    #: cycles to re-evaluate one convergence set's transition vector during
    #: opportunistic re-evaluation (Section IV-C (3))
    reeval_cycles_per_cs: int = 1

    def __post_init__(self):
        if self.cycle_ns <= 0:
            raise ValueError("cycle_ns must be positive")
        for name in (
            "total_half_cores",
            "symbol_cycles",
            "check_interval",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in (
            "context_switch_cycles",
            "convergence_check_cycles_per_pair",
            "reeval_cycles_per_cs",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
