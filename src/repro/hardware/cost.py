"""Cycle accounting for enumerative FSM engines.

Engines record an ``R`` trace — the number of live flows before each input
symbol of a segment.  These functions integrate such traces into cycle
counts under an :class:`~repro.hardware.ap.APConfig`:

- every live flow spends ``symbol_cycles`` per symbol (flows are
  time-multiplexed on the segment's half-cores, so per-symbol cost is the
  per-core flow load);
- once per ``check_interval`` symbols the half-core cycles through its
  flows: a context switch per extra flow plus a pairwise convergence check.

The total for a parallel run is the maximum over segments (they execute
concurrently) plus any serial tail (re-execution, composition).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.hardware.ap import APConfig

__all__ = [
    "flow_step_cycles",
    "chunk_overhead_cycles",
    "segment_cycles",
    "parallel_cycles",
    "throughput_symbols_per_sec",
]


def flow_step_cycles(flows: int, cores: int, config: APConfig) -> int:
    """Cycles to advance all flows of a segment by one symbol.

    Flows are spread across ``cores`` half-cores; each core serially feeds
    the symbol to its share of flows.
    """
    if flows <= 0:
        return 0
    if cores < 1:
        raise ValueError("cores must be >= 1")
    per_core = math.ceil(flows / cores)
    return per_core * config.symbol_cycles


def chunk_overhead_cycles(flows: int, cores: int, config: APConfig, checks: bool) -> int:
    """Per-chunk cost: context switches between flows plus optional checks."""
    if flows <= 1:
        return 0
    per_core = math.ceil(flows / cores)
    cycles = config.context_switch_cycles * max(0, per_core - 1)
    if checks:
        cycles += config.convergence_check_cycles_per_pair * (flows // 2)
    return cycles


def segment_cycles(
    r_trace: Sequence[int],
    cores: int,
    config: APConfig,
    checks: bool = True,
    prologue_cycles: int = 0,
) -> int:
    """Integrate a per-symbol flow-count trace into total segment cycles.

    ``prologue_cycles`` charges fixed work done before enumeration starts
    (e.g. LBE's lookback pass).
    """
    total = int(prologue_cycles)
    for t, flows in enumerate(r_trace):
        total += flow_step_cycles(int(flows), cores, config)
        if t % config.check_interval == 0:
            total += chunk_overhead_cycles(int(flows), cores, config, checks)
    return total


def parallel_cycles(per_segment_cycles: Iterable[int], serial_tail: int = 0) -> int:
    """Critical-path cycles: parallel max over segments plus a serial tail."""
    segments: List[int] = [int(c) for c in per_segment_cycles]
    if not segments:
        return int(serial_tail)
    return max(segments) + int(serial_tail)


def throughput_symbols_per_sec(n_symbols: int, cycles: int, config: APConfig) -> float:
    """Sustained symbols/second at the configured cycle time."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return n_symbols / (cycles * config.cycle_ns * 1e-9)
