"""Half-core allocation planning (auto-Table-I).

The paper hand-assigns each benchmark a ``(half-cores per segment,
segments)`` split of the AP rank (Table I: 1/16, 2/8, 3/5), driven by
capacity and by how much time-multiplexing each workload's flow count
causes.  Given the closed-form model of
:mod:`repro.analysis.model`, that decision can be *derived*: enumerate
the feasible splits of the rank and pick the one with the best predicted
speedup.

This is a planning utility, not a paper artifact — but the validation
bench shows it recovers the paper's qualitative choices (easy benchmarks
take many thin segments; flow-heavy benchmarks trade segments for cores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.model import SegmentModel, predict_speedup
from repro.hardware.ap import APConfig

__all__ = ["AllocationPlan", "feasible_splits", "plan_allocation"]


@dataclass(frozen=True)
class AllocationPlan:
    """A chosen split of the rank plus its predicted performance."""

    cores_per_segment: int
    n_segments: int
    predicted_speedup: float

    @property
    def half_cores_used(self) -> int:
        return self.cores_per_segment * self.n_segments


def feasible_splits(
    total_half_cores: int = 16,
    min_segments: int = 1,
) -> List[Tuple[int, int]]:
    """All ``(cores_per_segment, n_segments)`` pairs fitting the rank.

    Segments must each get the same whole number of half-cores (the AP's
    placement granularity); leftovers idle.
    """
    splits = []
    for cores in range(1, total_half_cores + 1):
        n_segments = total_half_cores // cores
        if n_segments >= min_segments:
            splits.append((cores, n_segments))
    return sorted(set(splits))


def plan_allocation(
    model: SegmentModel,
    input_len: int,
    config: Optional[APConfig] = None,
    min_segments: int = 1,
    min_cores_per_segment: int = 1,
    reexec_rate: float = 0.0,
) -> AllocationPlan:
    """Pick the rank split with the best predicted speedup.

    ``min_cores_per_segment`` encodes the AP *capacity* constraint: a
    densely connected FSM that does not fit one half-core must span
    several (this — not throughput — is why the paper's Table I assigns
    2/8 and 3/5 to the large ANMLZoo machines).  Ties break toward more
    segments (shorter per-segment latency).
    """
    config = config or APConfig()
    best: Optional[AllocationPlan] = None
    for cores, n_segments in feasible_splits(config.total_half_cores,
                                             min_segments):
        if cores < min_cores_per_segment:
            continue
        predicted = predict_speedup(
            model,
            input_len=input_len,
            n_segments=n_segments,
            cores_per_segment=cores,
            config=config,
            reexec_rate=reexec_rate,
        )
        candidate = AllocationPlan(cores, n_segments, predicted)
        if (
            best is None
            or candidate.predicted_speedup > best.predicted_speedup + 1e-9
            or (
                abs(candidate.predicted_speedup - best.predicted_speedup) <= 1e-9
                and candidate.n_segments > best.n_segments
            )
        ):
            best = candidate
    assert best is not None
    return best
