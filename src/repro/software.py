"""A software-only CSE prototype with *measured* (wall-clock) work.

The AP cost model answers "how fast would this be on the paper's
hardware".  This module answers the complementary question a software
adopter asks: does convergence-set enumeration pay off on a *CPU*, where
the set(N)->set(M) step is no longer free?

The design mirrors the hardware engine but measures real seconds:

- the sequential baseline is a tight table-walk loop (Python lists beat
  numpy scalar indexing ~5x for this access pattern);
- each segment runs one set-flow per convergence set; while a set has
  more than one member the step is a vectorized gather+unique, and the
  moment it collapses the flow *degrades to the scalar table-walk* — the
  software analogue of "M = 1 computes all paths at the cost of one";
- composition and re-execution reuse the exact machinery of
  :mod:`repro.core.reexec`.

Per-segment wall times are measured individually, so the result reports
both the *work speedup* (total sequential seconds / critical-path
seconds, what a perfectly parallel machine would achieve) and, when an
executor with real parallelism is supplied, the elapsed speedup.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import Dfa, as_symbols
from repro.core.partition import StatePartition
from repro.core.reexec import ReexecutionStats, compose_and_fix
from repro.core.transition import CsOutcome, SegmentFunction
from repro.engines.base import even_boundaries

__all__ = ["SoftwareRun", "scan_sequential", "run_segment", "software_cse_scan"]


def _table_rows(dfa: Dfa) -> List[List[int]]:
    """Transition table as nested lists (fast scalar indexing)."""
    return [row.tolist() for row in dfa.transitions]


def scan_sequential(dfa: Dfa, symbols, start_state: Optional[int] = None
                    ) -> Tuple[int, float]:
    """Tight sequential scan; returns ``(final_state, seconds)``."""
    syms = as_symbols(symbols).tolist()
    rows = _table_rows(dfa)
    state = dfa.start if start_state is None else int(start_state)
    begin = time.perf_counter()
    for sym in syms:
        state = rows[sym][state]
    elapsed = time.perf_counter() - begin
    return int(state), elapsed


def run_segment(
    dfa: Dfa,
    partition: StatePartition,
    segment: np.ndarray,
) -> Tuple[SegmentFunction, float]:
    """One segment's set-flows, with the converged-flow fast path.

    Returns the segment transition function and the measured seconds.
    """
    rows = _table_rows(dfa)
    table = dfa.transitions
    blocks = partition.block_arrays()
    segment_list = segment.tolist()
    begin = time.perf_counter()
    outcomes: List[CsOutcome] = []
    for block in blocks:
        current = block
        scalar: Optional[int] = int(current[0]) if current.size == 1 else None
        for idx, sym in enumerate(segment_list):
            if scalar is not None:
                # degraded to a single path: same cost as sequential
                scalar = rows[sym][scalar]
                continue
            current = np.unique(table[sym].take(current))
            if current.size == 1:
                scalar = int(current[0])
                # walk the remaining symbols scalar-fashion
                for tail_sym in segment_list[idx + 1:]:
                    scalar = rows[tail_sym][scalar]
                break
        if scalar is not None:
            outcomes.append(
                CsOutcome(True, int(scalar),
                          np.asarray([scalar], dtype=np.int32))
            )
        else:
            outcomes.append(CsOutcome(False, None, current))
    elapsed = time.perf_counter() - begin
    return SegmentFunction(outcomes, partition.labels()), elapsed


@dataclass
class SoftwareRun:
    """Measured outcome of a software CSE scan."""

    final_state: int
    n_symbols: int
    n_segments: int
    sequential_seconds: float
    segment_seconds: List[float]
    repair_seconds: float
    elapsed_seconds: float
    reexec_segments: int

    @property
    def critical_path_seconds(self) -> float:
        """Max segment time + serial repair: the parallel-machine latency."""
        peak = max(self.segment_seconds) if self.segment_seconds else 0.0
        return peak + self.repair_seconds

    @property
    def work_speedup(self) -> float:
        """Speedup a machine with one core per segment would achieve."""
        if self.critical_path_seconds <= 0:
            return float("inf")
        return self.sequential_seconds / self.critical_path_seconds

    @property
    def work_efficiency(self) -> float:
        """work_speedup / n_segments: 1.0 means CSE added zero overhead."""
        return self.work_speedup / self.n_segments


def software_cse_scan(
    dfa: Dfa,
    symbols,
    partition: StatePartition,
    n_segments: int = 16,
    executor: Optional[Executor] = None,
    policy: str = "opportunistic",
) -> SoftwareRun:
    """Scan an input with software CSE; verify against the tight loop.

    ``executor`` (e.g. a ``ProcessPoolExecutor``) runs segments truly in
    parallel when cores exist; without one, segments run serially but are
    timed individually, so :attr:`SoftwareRun.work_speedup` still reports
    the parallel-machine number faithfully.
    """
    syms = as_symbols(symbols)
    bounds = even_boundaries(int(syms.size), n_segments)
    begin_all = time.perf_counter()

    # segment 1: concrete scan
    first_final, first_seconds = scan_sequential(
        dfa, syms[bounds[0][0]:bounds[0][1]]
    )

    enum_bounds = bounds[1:]
    if executor is not None:
        futures = [
            executor.submit(run_segment, dfa, partition, syms[a:b])
            for a, b in enum_bounds
        ]
        timed = [f.result() for f in futures]
    else:
        timed = [run_segment(dfa, partition, syms[a:b]) for a, b in enum_bounds]
    functions = [fn for fn, _sec in timed]
    segment_seconds = [first_seconds] + [sec for _fn, sec in timed]

    repair_begin = time.perf_counter()
    final, stats = compose_and_fix(
        dfa, syms, enum_bounds, functions, first_final, policy=policy
    )
    repair_seconds = time.perf_counter() - repair_begin
    elapsed = time.perf_counter() - begin_all

    oracle, sequential_seconds = scan_sequential(dfa, syms)
    if final != oracle:
        raise AssertionError("software CSE diverged from the tight loop")
    return SoftwareRun(
        final_state=int(final),
        n_symbols=int(syms.size),
        n_segments=n_segments,
        sequential_seconds=sequential_seconds,
        segment_seconds=segment_seconds,
        repair_seconds=repair_seconds,
        elapsed_seconds=elapsed,
        reexec_segments=len(stats.reexecuted_segments),
    )
