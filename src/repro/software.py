"""A software-only CSE prototype with *measured* (wall-clock) work.

The AP cost model answers "how fast would this be on the paper's
hardware".  This module answers the complementary question a software
adopter asks: does convergence-set enumeration pay off on a *CPU*, where
the set(N)->set(M) step is no longer free?

The design mirrors the hardware engine but measures real seconds:

- the sequential baseline is a tight table-walk loop (Python lists beat
  numpy scalar indexing ~5x for this access pattern);
- each segment runs one set-flow per convergence set; while a set has
  more than one member the step is a vectorized gather+unique, and the
  moment it collapses the flow *degrades to the scalar table-walk* — the
  software analogue of "M = 1 computes all paths at the cost of one";
- composition and re-execution reuse the exact machinery of
  :mod:`repro.core.reexec`.

Three execution backends are available (``backend=``):

- ``"python"`` — the per-segment interpreted reference path above;
- ``"lockstep"`` — all enumerative segments stacked into one symbol
  matrix and every scalar flow of every segment advanced with a single
  fancy-indexed gather per symbol position (:mod:`repro.kernels`);
- ``"bitset"`` — diverged sets stepped as uint64-packed active masks
  (the software realization of the AP's one-hot step), degrading to the
  lockstep scalar pool on collapse;
- ``"dense"`` — every segment keeps one dense frontier of all N states
  and advances it with exactly one flat gather per symbol position
  (dtype-narrowed table, strided collapse checks); the small-N fast path
  (:mod:`repro.kernels.dense`).
- ``"native"`` — the compiled set-flow tier: the dense frontier advanced
  over the whole symbol buffer in one C call (:mod:`repro.kernels.native`);
  degrades to ``"dense"`` when no compiled library is loadable.
- ``"prefilter"`` — the literal-prefilter fast path for certified
  literal-heavy machines: a vectorized anchor sweep plus an interpreted
  walk of only the tail after the last proven reset run
  (:mod:`repro.kernels.prefilter`); degrades to ``"dense"`` when the DFA
  is not literal-certifiable.

``backend="auto"`` picks via :func:`repro.kernels.resolve_backend`, the
same helper the streaming layer uses.

Input may be ``bytes``, a numpy symbol array, or a zero-copy
:class:`repro.ingest.InputView` (e.g. from :func:`repro.ingest.open_input`
— an mmap of the file).  File-backed views submitted to a
fingerprint-matched process pool ship as ``(path, offset, length)`` mmap
coordinates: workers map the file themselves and nothing but the
coordinates crosses the process boundary.

Per-segment wall times are measured individually, so the result reports
both the *work speedup* (total sequential seconds / critical-path
seconds, what a perfectly parallel machine would achieve) and, when an
executor with real parallelism is supplied, the elapsed speedup.  For
process pools, :func:`segment_pool` builds an executor whose workers
receive the transition table **once** via the pool initializer instead of
re-pickling the :class:`Dfa` into every submitted segment.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.automata.dfa import Dfa, as_symbols
from repro.core.partition import StatePartition
from repro.core.reexec import ReexecutionStats, compose_and_fix
from repro.core.transition import CsOutcome, SegmentFunction
from repro.engines.base import even_boundaries
from repro.ingest import InputView, byte_view
from repro.kernels import (
    BACKENDS,
    certify_prefilter,
    native_available,
    prefilter_scan_scalar,
    resolve_backend,
    run_segments_batch,
)

__all__ = [
    "SoftwareRun",
    "scan_sequential",
    "run_segment",
    "software_cse_scan",
    "segment_pool",
    "dfa_fingerprint",
]


def _table_rows(dfa: Dfa) -> List[List[int]]:
    """Transition table as nested lists (fast scalar indexing)."""
    return [row.tolist() for row in dfa.transitions]


def scan_sequential(
    dfa: Dfa,
    symbols,
    start_state: Optional[int] = None,
    rows: Optional[List[List[int]]] = None,
    symbol_list: Optional[List[int]] = None,
) -> Tuple[int, float]:
    """Tight sequential scan; returns ``(final_state, seconds)``.

    ``rows`` / ``symbol_list`` optionally reuse conversions the caller
    already paid for (:func:`software_cse_scan` converts once per scan and
    passes them down to every pass, including the oracle).
    """
    syms = symbol_list if symbol_list is not None else as_symbols(symbols).tolist()
    if rows is None:
        rows = _table_rows(dfa)
    state = dfa.start if start_state is None else int(start_state)
    begin = time.perf_counter()
    for sym in syms:
        state = rows[sym][state]
    elapsed = time.perf_counter() - begin
    return int(state), elapsed


def run_segment(
    dfa: Dfa,
    partition: StatePartition,
    segment: np.ndarray,
    backend: str = "python",
    rows: Optional[List[List[int]]] = None,
    segment_list: Optional[List[int]] = None,
) -> Tuple[SegmentFunction, float]:
    """One segment's set-flows, with the converged-flow fast path.

    Returns the segment transition function and the measured seconds.
    ``backend`` selects the interpreted reference path (``"python"``) or a
    vectorized kernel (``"lockstep"`` / ``"bitset"`` / ``"dense"``) —
    results are bit-identical.
    """
    if backend != "python":
        if backend != "prefilter" or not isinstance(segment, np.ndarray):
            # prefilter keeps byte-width views as-is (zero-copy sweep)
            segment = as_symbols(segment)
        begin = time.perf_counter()
        functions = run_segments_batch(dfa, partition, [segment], backend=backend)
        return functions[0], time.perf_counter() - begin
    if rows is None:
        rows = _table_rows(dfa)
    table = dfa.transitions.astype(np.int64)
    blocks = partition.block_arrays()
    if segment_list is None:
        segment_list = as_symbols(segment).tolist()
    begin = time.perf_counter()
    outcomes: List[CsOutcome] = []
    for block in blocks:
        current = block
        scalar: Optional[int] = int(current[0]) if current.size == 1 else None
        for idx, sym in enumerate(segment_list):
            if scalar is not None:
                # degraded to a single path: same cost as sequential
                scalar = rows[sym][scalar]
                continue
            current = np.unique(table[sym].take(current))
            if current.size == 1:
                scalar = int(current[0])
                # walk the remaining symbols scalar-fashion
                for tail_sym in segment_list[idx + 1:]:
                    scalar = rows[tail_sym][scalar]
                break
        if scalar is not None:
            outcomes.append(
                CsOutcome(True, int(scalar),
                          np.asarray([scalar], dtype=np.int64))
            )
        else:
            outcomes.append(CsOutcome(False, None, current))
    elapsed = time.perf_counter() - begin
    if obs.is_enabled():
        collapses = sum(
            1 for blk, out in zip(blocks, outcomes)
            if blk.size > 1 and out.converged
        )
        obs.counter("kernels_collapses_total", backend="python").inc(collapses)
        obs.counter("kernels_positions_total", backend="python").inc(
            len(segment_list)
        )
    return SegmentFunction(outcomes, partition.labels()), elapsed


# ----------------------------------------------------------------------
# process-pool support: ship the transition table once per worker
# ----------------------------------------------------------------------

_WORKER_DFA: Optional[Dfa] = None
#: the one shared-memory segment a worker keeps attached (name, handle);
#: replaced (old handle closed) when a scan ships a new segment name
_WORKER_SHM: Optional[Tuple[str, "object"]] = None


def dfa_fingerprint(dfa: Dfa) -> Tuple:
    """A stable identity for a DFA (used to match pools to machines).

    Delegates to the memoized :attr:`repro.automata.dfa.Dfa.fingerprint`
    (table bytes + dtype + shape + start + accepting) — the same value the
    compilation cache addresses artifacts with, computed once per machine
    instead of re-hashed per scan.
    """
    return dfa.fingerprint


def _pool_init(table_bytes, shape, start, accepting) -> None:
    global _WORKER_DFA
    table = np.frombuffer(table_bytes, dtype=np.int32).reshape(shape)
    _WORKER_DFA = Dfa(table, start, accepting)


def _pool_run_segment(partition, segment, backend, collect=False,
                      seg_index=None, trace_id=None):
    """Worker-side segment execution, optionally with local telemetry.

    With ``collect=True`` the worker records into a registry of its own
    and returns its snapshot alongside the result; the parent merges it
    (:meth:`repro.obs.MetricRegistry.merge`), which is how counters and
    spans cross the process boundary exactly.  ``trace_id`` is the
    parent scan's trace context: every span the worker records carries
    it, so the merged timeline reassembles into one Chrome trace.
    """
    if _WORKER_DFA is None:
        raise RuntimeError("worker missing its DFA; build the pool "
                           "with repro.software.segment_pool")
    if not collect:
        return run_segment(_WORKER_DFA, partition, segment, backend=backend)
    with obs.using() as registry:
        with obs.trace(trace_id):
            with obs.span("software.segment", segment=seg_index,
                          backend=backend, worker=True):
                function, seconds = run_segment(
                    _WORKER_DFA, partition, segment, backend=backend
                )
            obs.counter("software_worker_segments_total").inc()
            obs.counter("software_worker_symbols_total").inc(int(len(segment)))
    return function, seconds, registry.snapshot()


# ----------------------------------------------------------------------
# zero-copy input dispatch: one shared-memory segment per scan
# ----------------------------------------------------------------------


def _share_symbols(syms: np.ndarray):
    """Place the scan's symbol array into shared memory once.

    Returns the :class:`~multiprocessing.shared_memory.SharedMemory`
    handle, or ``None`` when shared memory is unavailable on this
    platform — callers fall back to pickling segment slices, the
    pre-shared-memory behavior.  The populate is one dtype-preserving
    ndarray write: uint8 byte views (memoryview/mmap-backed input) land in
    shared memory at byte width without an intermediate ``bytes()`` copy
    or int64 widening.
    """
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(1, syms.nbytes))
    except (ImportError, OSError, PermissionError):
        obs.counter("software_shm_fallbacks_total").inc()
        return None
    try:
        view = np.frombuffer(shm.buf, dtype=syms.dtype, count=syms.size)
        view[:] = syms
        del view
        obs.counter("software_shm_scans_total").inc()
        obs.counter("software_shm_bytes_total").inc(int(syms.nbytes))
    except BaseException:
        # the segment exists but was never handed out: close and unlink
        # here or it outlives the scan as a stray /dev/shm file
        shm.close()
        shm.unlink()
        raise
    return shm


def _release_shared(shm) -> None:
    """Close + unlink the parent's handle; errors are non-fatal."""
    for call in (shm.close, shm.unlink):
        try:
            call()
        except (OSError, FileNotFoundError, BufferError):
            pass


def _attach_worker_shm(name: str):
    """Attach (and cache) the scan's shared-memory segment in a worker.

    Workers hold exactly one attachment: a new segment name closes the
    previous one, so a long-lived pool never accumulates mappings.
    Attaches with ``track=False`` where available (3.13+); on older
    Pythons the worker's register collapses into the process-tree-shared
    resource tracker's name set, and the parent's ``unlink`` performs the
    single balanced unregister — so no extra bookkeeping is needed.
    """
    global _WORKER_SHM
    if _WORKER_SHM is not None and _WORKER_SHM[0] == name:
        return _WORKER_SHM[1]
    from multiprocessing import shared_memory

    if _WORKER_SHM is not None:
        try:
            _WORKER_SHM[1].close()
        except (OSError, BufferError):
            pass
        _WORKER_SHM = None
    # attach-side handles are cached for the pool's lifetime on purpose:
    # the parent's _release_shared performs the one balanced unlink
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)  # repro: noqa(R102)
    except TypeError:  # Python < 3.13: no track flag
        shm = shared_memory.SharedMemory(name=name)  # repro: noqa(R102)
    _WORKER_SHM = (name, shm)
    return shm


def _pool_run_segment_shm(
    partition, shm_name, start, stop, backend, dtype="int64", collect=False,
    seg_index=None, trace_id=None,
):
    """Worker-side execution of a ``(shm_name, offset, length)`` segment.

    The symbol data is read directly out of the scan's shared-memory
    segment — nothing but the coordinates (and the dtype, so uint8 byte
    views round-trip at byte width) crosses the process boundary.
    """
    shm = _attach_worker_shm(shm_name)
    symbols = np.frombuffer(shm.buf, dtype=np.dtype(dtype), count=stop)[start:stop]
    return _pool_run_segment(partition, symbols, backend, collect, seg_index,
                             trace_id)


# ----------------------------------------------------------------------
# mmap input dispatch: workers map the input file themselves
# ----------------------------------------------------------------------

#: the one mapped input file a worker keeps open ``(path, mmap, file)``;
#: replaced (old mapping closed) when a scan ships a new path
_WORKER_MMAP: Optional[Tuple[str, "object", "object"]] = None


def _attach_worker_mmap(path: str):
    """Map (and cache) the scan's input file in a worker.

    The worker-side twin of :func:`_attach_worker_shm` for file-backed
    :class:`repro.ingest.InputView` inputs: one mapping per worker,
    swapped when a scan names a different file.
    """
    global _WORKER_MMAP
    if _WORKER_MMAP is not None and _WORKER_MMAP[0] == path:
        return _WORKER_MMAP[1]
    import mmap

    if _WORKER_MMAP is not None:
        for handle in (_WORKER_MMAP[1], _WORKER_MMAP[2]):
            try:
                handle.close()
            except (OSError, BufferError):
                pass
        _WORKER_MMAP = None
    f = open(path, "rb")
    try:
        mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    except BaseException:
        # the map failing (file truncated to empty between dispatch and
        # attach) must not strand the descriptor in the worker
        f.close()
        raise
    _WORKER_MMAP = (path, mapped, f)
    return mapped


def _pool_run_segment_mmap(
    partition, path, start, stop, backend, collect=False, seg_index=None,
    trace_id=None,
):
    """Worker-side execution of a ``(path, offset, length)`` mmap segment.

    ``start``/``stop`` are absolute byte offsets into the file.  The
    worker maps the file once (page-cache shared with the parent) and
    aliases the segment as a uint8 view — zero copies anywhere: nothing
    but the coordinates crosses the process boundary, and no populate
    step exists at all, unlike the shared-memory path.
    """
    mapped = _attach_worker_mmap(path)
    symbols = np.frombuffer(
        mapped, dtype=np.uint8, count=stop - start, offset=start
    )
    return _pool_run_segment(partition, symbols, backend, collect, seg_index,
                             trace_id)


def segment_pool(dfa: Dfa, max_workers: Optional[int] = None) -> ProcessPoolExecutor:
    """A :class:`ProcessPoolExecutor` pre-loaded with ``dfa``.

    The transition table is shipped to each worker exactly once through
    the pool initializer; :func:`software_cse_scan` recognizes such pools
    (by fingerprint) and submits segments *without* pickling the
    :class:`Dfa` into every task.
    """
    pool = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_pool_init,
        initargs=(
            dfa.transitions.tobytes(),
            dfa.transitions.shape,
            dfa.start,
            tuple(sorted(dfa.accepting)),
        ),
    )
    pool._repro_dfa_fingerprint = dfa_fingerprint(dfa)
    return pool


@dataclass
class SoftwareRun:
    """Measured outcome of a software CSE scan."""

    final_state: int
    n_symbols: int
    n_segments: int
    sequential_seconds: float
    segment_seconds: List[float]
    repair_seconds: float
    elapsed_seconds: float
    reexec_segments: int
    backend: str = "python"
    #: the backend the caller asked for ("auto"/None resolve to
    #: :attr:`backend`); keeps the resolve_backend decision recoverable
    requested_backend: str = "python"

    @property
    def critical_path_seconds(self) -> float:
        """Max segment time + serial repair: the parallel-machine latency."""
        peak = max(self.segment_seconds) if self.segment_seconds else 0.0
        return peak + self.repair_seconds

    @property
    def work_speedup(self) -> float:
        """Speedup a machine with one core per segment would achieve."""
        if self.critical_path_seconds <= 0:
            return float("inf")
        return self.sequential_seconds / self.critical_path_seconds

    @property
    def work_efficiency(self) -> float:
        """work_speedup / n_segments: 1.0 means CSE added zero overhead."""
        return self.work_speedup / self.n_segments


def software_cse_scan(
    dfa: Dfa,
    symbols,
    partition: StatePartition,
    n_segments: int = 16,
    executor: Optional[Executor] = None,
    policy: str = "opportunistic",
    backend: str = "python",
    start_state: Optional[int] = None,
    verify: bool = True,
    compiled=None,
    use_shared_memory: Optional[bool] = None,
) -> SoftwareRun:
    """Scan an input with software CSE; verify against the tight loop.

    ``executor`` (e.g. a pool from :func:`segment_pool`) runs segments
    truly in parallel when cores exist; without one, segments run serially
    but are timed individually, so :attr:`SoftwareRun.work_speedup` still
    reports the parallel-machine number faithfully.  With a kernel
    ``backend`` and no executor, all enumerative segments execute in one
    batched pass (:func:`repro.kernels.run_segments_batch`); its elapsed
    time is attributed evenly across segments, which is the honest
    amortized figure for a SIMD realization of the parallel machine.

    ``verify=False`` skips the sequential oracle pass (the composed result
    is exact by construction — re-execution repairs any failed
    speculation); callers on the hot path (streaming) use it, at the price
    of ``sequential_seconds`` reading 0.

    ``compiled`` optionally supplies a
    :class:`repro.compilecache.CompiledDfa` artifact whose prebuilt tables
    (scalar rows, flat kernel matrix, bitset matrices, dense table) are
    reused instead
    of being derived per scan; results are bit-identical with or without
    it.  ``use_shared_memory`` controls how segments reach a
    fingerprint-matched process pool: ``None`` (auto) and ``True`` place
    the symbol array in one :mod:`multiprocessing.shared_memory` segment
    and ship ``(name, offset, length)`` coordinates, falling back to
    pickled slices when shared memory is unavailable; ``False`` forces the
    pickle path.

    With observability enabled, the whole scan runs inside one
    :func:`repro.obs.trace` scope (joining an ambient trace when the
    caller — a stream or fleet scan — already opened one): every span,
    including those recorded in pool workers, carries the scan's
    ``trace_id``, and a per-scan summary lands in the flight recorder
    when one is armed.
    """
    if not obs.is_enabled():
        return _software_cse_scan(
            dfa, symbols, partition, n_segments, executor, policy, backend,
            start_state, verify, compiled, use_shared_memory,
        )
    with obs.trace() as trace_id:
        run = _software_cse_scan(
            dfa, symbols, partition, n_segments, executor, policy, backend,
            start_state, verify, compiled, use_shared_memory,
        )
    obs.record_scan(
        kind="software",
        trace_id=trace_id,
        backend=run.backend,
        n_segments=run.n_segments,
        n_symbols=run.n_symbols,
        reexec_segments=run.reexec_segments,
        speculation_hits=max(0, run.n_segments - 1 - run.reexec_segments),
        elapsed_seconds=run.elapsed_seconds,
    )
    return run


def _software_cse_scan(
    dfa: Dfa,
    symbols,
    partition: StatePartition,
    n_segments: int = 16,
    executor: Optional[Executor] = None,
    policy: str = "opportunistic",
    backend: str = "python",
    start_state: Optional[int] = None,
    verify: bool = True,
    compiled=None,
    use_shared_memory: Optional[bool] = None,
) -> SoftwareRun:
    """The scan body; trace scoping/flight summary live in the wrapper."""
    if compiled is not None:
        requested = compiled.requested_backend
        backend = compiled.backend if backend in (None, "auto") else backend
        backend = resolve_backend(dfa, backend, partition, n_segments)
        rows = compiled.rows
    else:
        requested = "auto" if backend in (None, "auto") else str(backend)
        backend = resolve_backend(dfa, backend, partition, n_segments)
        rows = _table_rows(dfa)
    pf_tables = None
    if backend == "prefilter":
        pf_tables = (
            compiled.prefilter_tables() if compiled is not None
            else certify_prefilter(dfa)
        )
        if pf_tables is None:
            # explicit request on an uncertifiable machine: the scan must
            # still be exact, so degrade to the dense frontier (the
            # resolve_backend auto path never lands here — it only picks
            # prefilter when certification succeeded)
            obs.counter("kernels_prefilter_fallbacks_total").inc()
            backend = "native" if native_available() else "dense"
    if backend == "prefilter":
        # keep byte-width input at byte width: the anchor sweep reads the
        # uint8 view directly, skipped bytes are never widened to int64
        view8 = byte_view(symbols)
        syms = view8 if view8 is not None else as_symbols(symbols)
    else:
        syms = as_symbols(symbols)
    bounds = even_boundaries(int(syms.size), n_segments)
    syms_list: Optional[List[int]] = (
        syms.tolist() if executor is None and backend != "prefilter" else None
    )
    collect = obs.is_enabled()
    trace_id = obs.current_trace_id() if collect else None
    scan_wall = time.time()
    begin_all = time.perf_counter()

    # segment 1: concrete scan
    a0, b0 = bounds[0]
    if backend == "prefilter":
        begin0 = time.perf_counter()
        first_final, _walked = prefilter_scan_scalar(
            dfa, pf_tables, syms[a0:b0], start_state=start_state, rows=rows
        )
        first_seconds = time.perf_counter() - begin0
    else:
        first_final, first_seconds = scan_sequential(
            dfa,
            syms[a0:b0],
            start_state=start_state,
            rows=rows,
            symbol_list=None if syms_list is None else syms_list[a0:b0],
        )
    if collect:
        obs.record_span("software.segment", scan_wall, first_seconds,
                        segment=0, kind="concrete")
        if backend == "prefilter":
            obs.counter("kernels_prefilter_skipped_bytes_total").inc(
                max(0, (b0 - a0) - _walked)
            )

    enum_bounds = bounds[1:]
    if executor is not None:
        fingerprint = (
            compiled.fingerprint if compiled is not None else dfa.fingerprint
        )
        pooled = (
            getattr(executor, "_repro_dfa_fingerprint", None) == fingerprint
        )
        coords = symbols.coords() if isinstance(symbols, InputView) else None
        shm = None
        if (
            pooled and coords is not None and use_shared_memory is not False
            and enum_bounds
        ):
            # file-backed input: workers mmap the file themselves; only
            # (path, offset, length) coordinates cross the boundary and
            # there is no populate step at all
            path, base, _length = coords
            if collect:
                obs.counter("software_mmap_scans_total").inc()
                obs.counter("software_mmap_bytes_total").inc(int(syms.nbytes))
            futures = [
                executor.submit(_pool_run_segment_mmap, partition, path,
                                base + a, base + b, backend, collect, i + 1,
                                trace_id)
                for i, (a, b) in enumerate(enum_bounds)
            ]
            timed = [f.result() for f in futures]
        else:
            if pooled and use_shared_memory is not False and enum_bounds:
                shm = _share_symbols(syms)
            try:
                if shm is not None:
                    futures = [
                        executor.submit(_pool_run_segment_shm, partition,
                                        shm.name, a, b, backend,
                                        str(syms.dtype), collect, i + 1,
                                        trace_id)
                        for i, (a, b) in enumerate(enum_bounds)
                    ]
                elif pooled:
                    futures = [
                        executor.submit(_pool_run_segment, partition,
                                        syms[a:b], backend, collect, i + 1,
                                        trace_id)
                        for i, (a, b) in enumerate(enum_bounds)
                    ]
                else:
                    futures = [
                        executor.submit(run_segment, dfa, partition,
                                        syms[a:b], backend)
                        for a, b in enum_bounds
                    ]
                timed = [f.result() for f in futures]
            finally:
                if shm is not None:
                    _release_shared(shm)
        functions = [entry[0] for entry in timed]
        enum_seconds = [entry[1] for entry in timed]
        if collect and pooled:
            registry = obs.active()
            for entry in timed:
                registry.merge(entry[2])
        elif collect:
            wall = time.time()
            for i, sec in enumerate(enum_seconds):
                obs.record_span("software.segment", wall - sec, sec,
                                segment=i + 1, backend=backend)
    elif backend != "python":
        kernel_wall = time.time()
        kernel_begin = time.perf_counter()
        functions = run_segments_batch(
            dfa, partition, [syms[a:b] for a, b in enum_bounds], backend=backend,
            tables=(
                compiled.bitset_tables()
                if compiled is not None and backend == "bitset"
                else None
            ),
            flat=compiled.flat_table if compiled is not None else None,
            dense=(
                compiled.dense_tables()
                if compiled is not None and backend in ("dense", "native")
                else None
            ),
            prefilter=pf_tables,
        )
        kernel_elapsed = time.perf_counter() - kernel_begin
        enum_seconds = [kernel_elapsed / max(1, len(enum_bounds))] * len(enum_bounds)
        if collect:
            # the batched kernel runs all segments in one pass; attribute
            # an even share to each so the trace still shows one span per
            # segment (flagged as attributed, not individually measured)
            for i, sec in enumerate(enum_seconds):
                obs.record_span("software.segment", kernel_wall, sec,
                                segment=i + 1, backend=backend,
                                attributed=True)
    else:
        timed = []
        for i, (a, b) in enumerate(enum_bounds):
            seg_wall = time.time()
            function, sec = run_segment(
                dfa,
                partition,
                syms[a:b],
                rows=rows,
                segment_list=syms_list[a:b],
            )
            timed.append((function, sec))
            if collect:
                obs.record_span("software.segment", seg_wall, sec,
                                segment=i + 1, backend=backend)
        functions = [fn for fn, _sec in timed]
        enum_seconds = [sec for _fn, sec in timed]
    segment_seconds = [first_seconds] + enum_seconds

    repair_wall = time.time()
    repair_begin = time.perf_counter()
    final, stats = compose_and_fix(
        dfa, syms, enum_bounds, functions, first_final, policy=policy
    )
    repair_seconds = time.perf_counter() - repair_begin
    elapsed = time.perf_counter() - begin_all

    if collect:
        obs.record_span("software.repair", repair_wall, repair_seconds,
                        policy=policy,
                        reexecuted=len(stats.reexecuted_segments))
        obs.record_span("software.scan", scan_wall, elapsed,
                        backend=backend, n_segments=n_segments,
                        n_symbols=int(syms.size))
        obs.counter("software_scans_total", backend=backend).inc()
        obs.counter("software_symbols_total").inc(int(syms.size))
        # pre-create one re-exec counter per enumerative segment so a
        # clean scan still exports the full per-segment series at 0
        for i in range(len(enum_bounds)):
            obs.counter("software_segment_reexec_total", segment=i + 1)
        for i in stats.reexecuted_segments:
            obs.counter("software_segment_reexec_total", segment=i + 1).inc()
        reexecuted = set(stats.reexecuted_segments)
        obs.counter("software_reexec_segments_total").inc(len(reexecuted))
        obs.counter("software_speculation_hits_total").inc(
            len(enum_bounds) - len(reexecuted)
        )
        obs.counter("software_speculation_misses_total").inc(len(reexecuted))
        obs.counter("software_reeval_passes_total").inc(stats.reeval_passes)
        obs.counter("software_diverged_segments_total").inc(
            stats.diverged_segments
        )
        obs.histogram("software_scan_seconds", backend=backend).observe(elapsed)

    sequential_seconds = 0.0
    if verify:
        oracle, sequential_seconds = scan_sequential(
            dfa, syms, start_state=start_state, rows=rows, symbol_list=syms_list
        )
        if final != oracle:
            raise AssertionError("software CSE diverged from the tight loop")
    return SoftwareRun(
        final_state=int(final),
        n_symbols=int(syms.size),
        n_segments=n_segments,
        sequential_seconds=sequential_seconds,
        segment_seconds=segment_seconds,
        repair_seconds=repair_seconds,
        elapsed_seconds=elapsed,
        reexec_segments=len(stats.reexecuted_segments),
        backend=backend,
        requested_backend=requested,
    )
