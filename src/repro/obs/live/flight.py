"""Bounded flight recorder: the last N span events + scan summaries.

A postmortem needs the *recent past*, not the whole run: when a scan
raises at hour six, the question is "what were the last few hundred
segments doing".  The flight recorder keeps two bounded ring buffers —

- recent :class:`~repro.obs.registry.SpanEvent` records (it subscribes
  to the active registry's span stream, including spans merged in from
  pool workers), and
- per-scan summary records (backend, shard, collapse / re-exec
  counters, wall-clock) that the scanning layers append at scan end —

and can dump both to JSON at any time (``repro obs tail`` reads the
dump, the live endpoint serves it at ``/flight.json``).
:func:`install_excepthook` arms automatic dump-on-exception so an
uncaught crash leaves a ``repro-flight-<pid>.json`` postmortem behind.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.recorder import active
from repro.obs.registry import MetricRegistry, SpanEvent

__all__ = [
    "FlightRecorder",
    "enable_flight",
    "disable_flight",
    "active_flight",
    "record_scan",
    "install_excepthook",
]

#: default ring capacities — small enough to stay resident forever,
#: large enough to cover the recent past of a busy fleet
DEFAULT_MAX_SPANS = 2048
DEFAULT_MAX_SCANS = 256


class FlightRecorder:
    """Two bounded rings: recent spans and recent scan summaries."""

    def __init__(
        self,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_scans: int = DEFAULT_MAX_SCANS,
    ):
        self.max_spans = int(max_spans)
        self.max_scans = int(max_scans)
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=self.max_spans)
        self._scans: deque = deque(maxlen=self.max_scans)
        self._dropped_spans = 0
        self._attached: Optional[MetricRegistry] = None

    # ------------------------------------------------------------------
    # feeding the rings
    # ------------------------------------------------------------------
    def record_span(self, event: SpanEvent) -> None:
        """Registry span-observer entry point (also callable directly)."""
        with self._lock:
            if len(self._spans) == self.max_spans:
                self._dropped_spans += 1
            self._spans.append(event.to_dict())

    def record_scan(self, **fields) -> None:
        """Append one scan summary (backend, counters, wallclock, ...)."""
        record = {"wall_ts": time.time(), **fields}
        with self._lock:
            self._scans.append(record)

    # ------------------------------------------------------------------
    # attachment to a registry's span stream
    # ------------------------------------------------------------------
    def attach(self, registry: MetricRegistry) -> "FlightRecorder":
        if self._attached is not None:
            self.detach()
        registry.add_span_observer(self.record_span)
        self._attached = registry
        return self

    def detach(self) -> None:
        if self._attached is not None:
            self._attached.remove_span_observer(self.record_span)
            self._attached = None

    # ------------------------------------------------------------------
    # reading back
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "pid": os.getpid(),
                "max_spans": self.max_spans,
                "max_scans": self.max_scans,
                "dropped_spans": self._dropped_spans,
                "spans": list(self._spans),
                "scans": list(self._scans),
            }

    def dump(self, path, reason: Optional[str] = None) -> Path:
        """Write the ring contents as indented JSON; returns the path."""
        payload = self.snapshot()
        payload["dumped_at"] = time.time()
        if reason is not None:
            payload["reason"] = reason
        path = Path(path)
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        return path

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_flight: Optional[FlightRecorder] = None


def enable_flight(
    max_spans: int = DEFAULT_MAX_SPANS,
    max_scans: int = DEFAULT_MAX_SCANS,
    registry: Optional[MetricRegistry] = None,
) -> FlightRecorder:
    """Install a process-wide flight recorder attached to ``registry``
    (default: the active obs registry, which must be enabled first)."""
    global _flight
    target = registry if registry is not None else active()
    if target is None:
        raise RuntimeError(
            "no active obs registry; call obs.enable() before enable_flight()"
        )
    if _flight is not None:
        _flight.detach()
    _flight = FlightRecorder(max_spans=max_spans, max_scans=max_scans)
    _flight.attach(target)
    return _flight


def disable_flight() -> None:
    global _flight
    if _flight is not None:
        _flight.detach()
        _flight = None


def active_flight() -> Optional[FlightRecorder]:
    return _flight


def record_scan(**fields) -> None:
    """Append a scan summary to the flight ring; no-op when disarmed."""
    recorder = _flight
    if recorder is not None:
        recorder.record_scan(**fields)


def install_excepthook(path=None):
    """Arm dump-on-exception: an uncaught exception dumps the flight ring.

    The dump lands at ``path`` (default ``repro-flight-<pid>.json`` in
    the working directory), then the previous excepthook runs.  Returns
    the previous hook so callers/tests can restore it.
    """
    previous = sys.excepthook

    def hook(exc_type, exc, tb):
        recorder = _flight
        if recorder is not None:
            target = path or f"repro-flight-{os.getpid()}.json"
            try:
                recorder.dump(target, reason=f"{exc_type.__name__}: {exc}")
            except OSError:
                pass  # postmortem write failure must not mask the crash
        previous(exc_type, exc, tb)

    sys.excepthook = hook
    return previous


def format_tail(snapshot: Dict, n: int = 20) -> str:
    """Human-readable tail of a flight snapshot (``repro obs tail``)."""
    lines: List[str] = []
    scans = snapshot.get("scans", [])[-n:]
    if scans:
        lines.append(f"recent scans ({len(scans)}):")
        for rec in scans:
            when = time.strftime(
                "%H:%M:%S", time.localtime(rec.get("wall_ts", 0))
            )
            detail = " ".join(
                f"{k}={v}" for k, v in rec.items() if k != "wall_ts"
            )
            lines.append(f"  {when}  {detail}")
    spans = snapshot.get("spans", [])[-n:]
    if spans:
        lines.append(f"recent spans ({len(spans)}):")
        for rec in spans:
            when = time.strftime(
                "%H:%M:%S", time.localtime(rec.get("ts", 0))
            )
            ms = rec.get("duration", 0.0) * 1e3
            trace = rec.get("trace_id")
            suffix = f" trace={trace}" if trace else ""
            args = " ".join(
                f"{k}={v}" for k, v in rec.get("args", {}).items()
            )
            lines.append(
                f"  {when}  {rec.get('name', '?'):<24} {ms:9.3f} ms  "
                f"pid={rec.get('pid')}{suffix}  {args}".rstrip()
            )
    dropped = snapshot.get("dropped_spans", 0)
    if dropped:
        lines.append(f"({dropped} older spans dropped from the ring)")
    if not lines:
        lines.append("flight ring is empty")
    return "\n".join(lines)
