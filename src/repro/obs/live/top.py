"""`repro top`: a curses-free live terminal view of a running scan.

Polls a snapshot source — the live endpoint's ``/snapshot.json`` URL or
a ``--metrics-out`` file being rewritten — and renders the *deltas*
between consecutive snapshots: live throughput, chunk-latency
percentiles (estimated from the histogram's cumulative buckets),
per-backend position counts, and fleet shard gauges.  Rendering is
plain text plus one ANSI home/clear escape, so it works in any
terminal, in CI logs, and under ``watch``.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.exporters import load_snapshot
from repro.obs.registry import label_key

__all__ = ["snapshot_source", "top", "render_top", "histogram_quantile"]

Snapshot = Dict
MetricKey = Tuple[str, tuple]

#: ANSI: cursor home + clear to end of screen (less flickery than 2J)
_CLEAR = "\x1b[H\x1b[J"


def snapshot_source(source: str) -> Callable[[], Snapshot]:
    """A zero-arg callable producing snapshots from a URL or file path."""
    if source.startswith(("http://", "https://")):
        url = source
        if not urlsplit_path(url):
            url = url.rstrip("/") + "/snapshot.json"

        def fetch() -> Snapshot:
            with urllib.request.urlopen(url, timeout=5) as response:
                return json.loads(response.read().decode("utf-8"))

        return fetch

    path = Path(source)

    def read() -> Snapshot:
        return load_snapshot(path)

    return read


def urlsplit_path(url: str) -> str:
    """The path component of a URL, '' for a bare host:port."""
    from urllib.parse import urlsplit

    return urlsplit(url).path.strip("/")


def _index(snap: Snapshot) -> Dict[MetricKey, Dict]:
    return {
        (m["name"], label_key(m.get("labels", {}))): m
        for m in snap.get("metrics", [])
    }


def _value(index: Dict[MetricKey, Dict], name: str, **labels) -> float:
    m = index.get((name, label_key(labels)))
    return float(m["value"]) if m else 0.0


def _sum_family(index: Dict[MetricKey, Dict], name: str) -> float:
    return sum(
        float(m["value"]) for (n, _), m in index.items()
        if n == name and "value" in m
    )


def histogram_quantile(metric: Dict, q: float) -> Optional[float]:
    """Estimate quantile ``q`` from a snapshot histogram's buckets.

    Returns the upper bound of the first cumulative bucket covering the
    target rank (the standard Prometheus estimation, minus
    interpolation); ``max`` for ranks landing in the +Inf bucket.
    """
    count = int(metric.get("count", 0))
    if count == 0:
        return None
    target = q * count
    cumulative = 0
    for bound, bucket in zip(metric["buckets"], metric["bucket_counts"]):
        cumulative += int(bucket)
        if cumulative >= target:
            return float(bound)
    return metric.get("max")


def _fmt_rate(value: float) -> str:
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {suffix}"
    return f"{value:.0f} "


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def render_top(
    previous: Optional[Snapshot],
    current: Snapshot,
    dt: float,
    source: str = "",
    tick: int = 0,
) -> str:
    """One frame of the top view from two consecutive snapshots."""
    now = _index(current)
    before = _index(previous) if previous is not None else {}
    dt = max(dt, 1e-9)

    def rate(name: str, **labels) -> float:
        return (_value(now, name, **labels) - _value(before, name, **labels)) / dt

    lines: List[str] = []
    lines.append(
        f"repro top — {source or 'snapshot'}  "
        f"(tick {tick}, dt {dt:.1f}s, {len(current.get('metrics', []))} "
        f"series, {len(current.get('spans', []))} spans)"
    )

    symbols = rate("software_symbols_total") + rate("stream_symbols_total")
    scans = rate("software_scans_total") + rate("fleet_scans_total")
    lines.append(
        f"throughput   {_fmt_rate(symbols)}sym/s    "
        f"scans {_fmt_rate(scans)}/s    "
        f"chunks {_fmt_rate(rate('stream_chunks_total'))}/s"
    )

    reexec = rate("software_reexec_segments_total")
    hits = rate("software_speculation_hits_total")
    misses = rate("software_speculation_misses_total")
    total_spec = hits + misses
    hit_pct = 100.0 * hits / total_spec if total_spec else 100.0
    lines.append(
        f"speculation  {hit_pct:5.1f}% hit    "
        f"re-exec {_fmt_rate(reexec)}seg/s"
    )

    chunk = now.get(("stream_chunk_seconds", label_key({})))
    if chunk is not None and chunk.get("count"):
        lines.append(
            "chunk latency  "
            f"p50 {_fmt_seconds(histogram_quantile(chunk, 0.50))}  "
            f"p90 {_fmt_seconds(histogram_quantile(chunk, 0.90))}  "
            f"p99 {_fmt_seconds(histogram_quantile(chunk, 0.99))}  "
            f"(n={chunk['count']})"
        )

    backends = sorted(
        {
            dict(key[1]).get("backend")
            for key in now
            if key[0] == "kernels_positions_total"
        } - {None}
    )
    if backends:
        lines.append("positions by backend:")
        for backend in backends:
            total = _value(now, "kernels_positions_total", backend=backend)
            per_sec = rate("kernels_positions_total", backend=backend)
            lines.append(
                f"  {backend:<10} {total:>14,.0f}  "
                f"(+{_fmt_rate(per_sec)}pos/s)"
            )

    decisions = sorted(
        (dict(key[1]).get("requested", "?"),
         dict(key[1]).get("backend", "?"),
         dict(key[1]).get("reason", "?"),
         int(m["value"]))
        for key, m in now.items()
        if key[0] == "kernels_backend_resolved_total" and "value" in m
    )
    if decisions:
        lines.append("backend decisions:")
        for requested, backend, reason, count in decisions:
            lines.append(
                f"  resolve {requested}->{backend:<10} x{count:<6} ({reason})"
            )

    native_pos = _value(now, "kernels_native_positions_total")
    native_fb = _value(now, "kernels_native_fallbacks_total")
    if native_pos or native_fb:
        lines.append(
            "native        "
            f"frontier {_fmt_rate(rate('kernels_native_positions_total'))}pos/s  "
            f"scalar {_fmt_rate(rate('kernels_native_scalar_positions_total'))}pos/s  "
            f"fallbacks {native_fb:.0f}"
        )

    pf_skipped = _value(now, "kernels_prefilter_skipped_bytes_total")
    if pf_skipped:
        lines.append(
            "prefilter     "
            f"skipped {_fmt_rate(rate('kernels_prefilter_skipped_bytes_total'))}B/s  "
            f"windows {_fmt_rate(rate('kernels_prefilter_windows_total'))}/s  "
            f"fallbacks {_value(now, 'kernels_prefilter_fallbacks_total'):.0f}"
        )

    shard_gauges = sorted(
        (int(dict(key[1]).get("shard", dict(key[1]).get("fsm", 0))),
         float(m["value"]))
        for key, m in now.items()
        if key[0] in ("fleet_shard_throughput",
                      "fleet_shard_wallclock_throughput")
    )
    if shard_gauges:
        lines.append("fleet shards:")
        for shard, value in shard_gauges[:16]:
            lines.append(
                f"  shard {shard:<3} {_fmt_rate(value)}sym/s"
            )
        if len(shard_gauges) > 16:
            lines.append(f"  ... {len(shard_gauges) - 16} more shards")
    return "\n".join(lines) + "\n"


def top(
    source: Union[str, Callable[[], Snapshot]],
    interval: float = 1.0,
    iterations: Optional[int] = None,
    out=None,
    clear: bool = True,
) -> int:
    """Poll ``source`` and render the live view until interrupted.

    ``iterations`` bounds the number of frames (``None`` = run until
    Ctrl-C); returns the number of frames rendered.  ``source`` is a
    URL, a snapshot file path, or (for tests) a zero-arg callable.
    """
    fetch = source if callable(source) else snapshot_source(source)
    label = "" if callable(source) else str(source)
    stream = out if out is not None else sys.stdout
    previous: Optional[Snapshot] = None
    last_time = time.time()
    tick = 0
    try:
        while iterations is None or tick < iterations:
            if tick:
                time.sleep(interval)
            current = fetch()
            now = time.time()
            frame = render_top(
                previous, current, dt=now - last_time if tick else interval,
                source=label, tick=tick,
            )
            if clear:
                stream.write(_CLEAR)
            stream.write(frame)
            stream.flush()
            previous, last_time = current, now
            tick += 1
    except KeyboardInterrupt:
        pass
    return tick
