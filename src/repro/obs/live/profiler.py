"""Opt-in sampling wall-clock profiler (folded stacks / flamegraphs).

A daemon thread wakes every ``interval`` seconds, grabs
``sys._current_frames()``, and folds the target threads' stacks into
``outer;inner;leaf count`` lines — the folded-stack format flamegraph
tooling (``flamegraph.pl``, speedscope, Perfetto) consumes directly.

Sampling is wall-clock and thread-based (no signals), so it is safe
inside pool workers, library code, and non-main threads, and it sees
time spent inside numpy kernels (the sampler thread keeps running while
the GIL is held by C code, attributing those samples to the Python frame
that called into the kernel — exactly the attribution a hot-loop hunt
wants).  Overhead is one frame walk per interval: at the default 5 ms
that is well under 1% on the bench config.

Use::

    with obs.profile(interval=0.005) as prof:
        software_cse_scan(...)
    Path("scan.folded").write_text(prof.folded())

or from the CLI: ``repro software ... --profile-out scan.folded``.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, Iterable, Optional

from repro.obs import recorder

__all__ = ["SamplingProfiler", "profile"]


class SamplingProfiler:
    """Thread-based sampling profiler producing folded-stack text.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5 ms).
    all_threads:
        Sample every thread in the process instead of only the thread
        that called :meth:`start` (the sampler thread itself is always
        excluded).
    """

    def __init__(self, interval: float = 0.005, all_threads: bool = False):
        self.interval = float(interval)
        self.all_threads = bool(all_threads)
        self.samples: Dict[str, int] = {}
        self.n_samples = 0
        self._targets: set = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._targets = {threading.get_ident()}
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        reg = recorder.active()
        if reg is not None:
            reg.counter("obs_profiler_samples_total").inc(self.n_samples)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            for tid, frame in frames.items():
                if tid == own:
                    continue
                if not self.all_threads and tid not in self._targets:
                    continue
                stack = []
                while frame is not None:
                    code = frame.f_code
                    stack.append(
                        f"{os.path.basename(code.co_filename)}:"
                        f"{code.co_name}"
                    )
                    frame = frame.f_back
                key = ";".join(reversed(stack))
                self.samples[key] = self.samples.get(key, 0) + 1
                self.n_samples += 1

    # ------------------------------------------------------------------
    def folded(self) -> str:
        """Folded-stack text, heaviest stacks first."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                self.samples.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def hotspots(self, n: int = 10) -> Iterable:
        """The ``n`` heaviest leaf frames as ``(frame, samples)`` pairs."""
        leaves: Dict[str, int] = {}
        for stack, count in self.samples.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        return sorted(leaves.items(), key=lambda kv: -kv[1])[:n]


def profile(
    interval: float = 0.005, all_threads: bool = False
) -> SamplingProfiler:
    """A started-on-enter :class:`SamplingProfiler` context manager."""
    return SamplingProfiler(interval=interval, all_threads=all_threads)
