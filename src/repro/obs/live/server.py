"""Dependency-free live metrics endpoint (`/metrics`, `/snapshot.json`).

A :class:`ObsServer` wraps a stdlib ``ThreadingHTTPServer`` on a daemon
thread, serving the *currently active* registry (or an explicitly bound
one) at request time:

- ``/metrics``        — Prometheus text exposition (scrape target);
- ``/snapshot.json``  — the full metric + span snapshot (``repro top``
  polls this for deltas);
- ``/trace.json``     — Chrome trace-event JSON of the span buffer;
- ``/flight.json``    — the flight-recorder rings, when armed;
- ``/healthz``        — liveness JSON (uptime, pid, series count).

Start in-process with ``obs.serve(port=...)`` or from the long-running
CLIs via ``--metrics-port``.  ``port=0`` binds an ephemeral port; the
resolved address is on :attr:`ObsServer.url`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import urlsplit

from repro.obs import recorder
from repro.obs.exporters import chrome_trace, prometheus_text, to_json
from repro.obs.live.flight import active_flight
from repro.obs.registry import MetricRegistry

__all__ = ["ObsServer", "serve"]

_EMPTY_SNAPSHOT = {"metrics": [], "spans": []}


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    obs_server: "ObsServer"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrape traffic must not spam the CLI's stdout/stderr

    def _respond(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        owner: ObsServer = self.server.obs_server
        path = urlsplit(self.path).path
        try:
            if path == "/metrics":
                body = prometheus_text(owner.snapshot())
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path in ("/snapshot.json", "/snapshot"):
                body = to_json(owner.snapshot())
                ctype = "application/json"
            elif path in ("/trace.json", "/trace"):
                body = json.dumps(chrome_trace(owner.snapshot())) + "\n"
                ctype = "application/json"
            elif path in ("/flight.json", "/flight"):
                flight = active_flight()
                if flight is None:
                    self._respond(
                        404,
                        '{"error": "flight recorder not armed"}\n',
                        "application/json",
                    )
                    owner.count_request(path)
                    return
                body = json.dumps(flight.snapshot(), default=str) + "\n"
                ctype = "application/json"
            elif path == "/healthz":
                body = json.dumps(owner.health()) + "\n"
                ctype = "application/json"
            else:
                self._respond(404, '{"error": "not found"}\n',
                              "application/json")
                return
        except Exception as err:  # repro: noqa(R106) — must answer 500
            self._respond(500, json.dumps({"error": str(err)}) + "\n",
                          "application/json")
            return
        self._respond(200, body, ctype)
        owner.count_request(path)


class ObsServer:
    """Threaded HTTP exporter of the obs registry; near-zero when idle.

    With ``registry=None`` the server reads whatever registry is active
    (:func:`repro.obs.active`) at each request, so it keeps serving
    across ``obs.using`` scopes; binding an explicit registry pins it.
    """

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._registry = registry
        self.host = host
        self.requested_port = int(port)
        self._httpd: Optional[_ObsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    def snapshot(self):
        registry = self._registry if self._registry is not None \
            else recorder.active()
        return registry.snapshot() if registry is not None \
            else dict(_EMPTY_SNAPSHOT)

    def health(self) -> dict:
        registry = self._registry if self._registry is not None \
            else recorder.active()
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_seconds": (
                0.0 if self._started_at is None
                else time.time() - self._started_at
            ),
            "recording": registry is not None,
            "series": 0 if registry is None else len(registry),
            "flight": active_flight() is not None,
        }

    def count_request(self, path: str) -> None:
        registry = self._registry if self._registry is not None \
            else recorder.active()
        if registry is not None:
            registry.counter("obs_live_requests_total", path=path).inc()

    # ------------------------------------------------------------------
    def start(self) -> "ObsServer":
        if self._httpd is not None:
            return self
        httpd = _ObsHTTPServer((self.host, self.requested_port), _Handler)
        httpd.obs_server = self
        self._httpd = httpd
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            return self.requested_port
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def serve(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[MetricRegistry] = None,
) -> ObsServer:
    """Start a live metrics endpoint; returns the running server.

    When observability is off and no registry is passed, a fresh
    registry is enabled process-wide first, so ``obs.serve(port=9099)``
    is a one-call opt-in to the live plane.
    """
    if registry is None and not recorder.is_enabled():
        recorder.enable()
    return ObsServer(registry=registry, host=host, port=port).start()
