"""The live observability plane: endpoint, flight recorder, profiler, top.

Built on the passive registry/recorder layer (:mod:`repro.obs`), this
subpackage keeps the telemetry *always on* for long-running deployments:

- :mod:`repro.obs.live.server` — in-process HTTP endpoint
  (``/metrics`` Prometheus text, ``/snapshot.json``, ``/trace.json``,
  ``/flight.json``, ``/healthz``);
- :mod:`repro.obs.live.flight` — bounded ring buffers of recent spans
  and scan summaries, with dump-on-exception postmortems;
- :mod:`repro.obs.live.profiler` — opt-in sampling wall-clock profiler
  emitting folded-stack flamegraph text;
- :mod:`repro.obs.live.top` — the ``repro top`` terminal view polling
  snapshot deltas.
"""

from repro.obs.live.flight import (
    FlightRecorder,
    active_flight,
    disable_flight,
    enable_flight,
    format_tail,
    install_excepthook,
    record_scan,
)
from repro.obs.live.profiler import SamplingProfiler, profile
from repro.obs.live.server import ObsServer, serve
from repro.obs.live.top import render_top, snapshot_source, top

__all__ = [
    "FlightRecorder",
    "ObsServer",
    "SamplingProfiler",
    "active_flight",
    "disable_flight",
    "enable_flight",
    "format_tail",
    "install_excepthook",
    "profile",
    "record_scan",
    "render_top",
    "serve",
    "snapshot_source",
    "top",
]
