"""The process-global recorder: enabled registry or near-free no-ops.

Instrumented call sites always go through the module-level helpers
(:func:`counter`, :func:`gauge`, :func:`histogram`, :func:`span`,
:func:`record_span`).  When no registry is installed — the default —
every helper returns a shared no-op singleton whose methods are empty:
the cost of a disabled instrument is one global load, one ``is None``
test, and one empty method call, with **zero** allocation.  Hot paths
that would pay even that per inner-loop iteration should guard whole
blocks with :func:`is_enabled` instead (all in-tree call sites
instrument at per-segment / per-chunk granularity, well off the
per-symbol inner loops).

:func:`enable` installs a registry process-wide; :func:`using` installs
one for a scope (worker tasks, tests) and restores the previous recorder
on exit.

Trace context: :func:`trace` establishes a ``trace_id`` for a scope (one
logical scan); every span recorded inside it — in this thread, in nested
calls, and in pool workers the id is shipped to — carries the id, so the
exporters can reassemble one coherent timeline from many processes.
"""

from __future__ import annotations

import contextvars
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Union

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry

__all__ = [
    "enable",
    "disable",
    "active",
    "is_enabled",
    "using",
    "counter",
    "gauge",
    "histogram",
    "span",
    "record_span",
    "new_trace_id",
    "current_trace_id",
    "trace",
    "NOOP_METRIC",
    "NOOP_SPAN",
]

_active: Optional[MetricRegistry] = None

#: ambient trace id of the current logical scan (contextvars: inherited
#: by nested calls in this thread, isolated between threads)
_trace: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, collision-safe per fleet)."""
    return os.urandom(8).hex()


def current_trace_id() -> Optional[str]:
    """The ambient trace id, or ``None`` outside any :func:`trace` scope."""
    return _trace.get()


@contextmanager
def trace(
    trace_id: Optional[str] = None, inherit: bool = True
) -> Iterator[str]:
    """Establish a trace id for a scope; yields the effective id.

    ``trace_id=None`` reuses the ambient id when one is set (so a scan
    nested under a fleet scan joins the fleet's trace) unless
    ``inherit=False``, and mints a fresh id otherwise.
    """
    tid = trace_id
    if tid is None and inherit:
        tid = _trace.get()
    if tid is None:
        tid = new_trace_id()
    token = _trace.set(tid)
    try:
        yield tid
    finally:
        _trace.reset(token)


def enable(registry: Optional[MetricRegistry] = None) -> MetricRegistry:
    """Install ``registry`` (or a fresh one) as the process recorder."""
    global _active
    _active = registry if registry is not None else MetricRegistry()
    return _active


def disable() -> None:
    """Remove the process recorder; instrumentation becomes no-op."""
    global _active
    _active = None


def active() -> Optional[MetricRegistry]:
    """The installed registry, or ``None`` when observability is off."""
    return _active


def is_enabled() -> bool:
    return _active is not None


@contextmanager
def using(registry: Optional[MetricRegistry] = None) -> Iterator[MetricRegistry]:
    """Scoped :func:`enable`; restores the previous recorder on exit."""
    previous = _active
    installed = enable(registry)
    try:
        yield installed
    finally:
        enable(previous) if previous is not None else disable()


class _NoopMetric:
    """Counter/Gauge/Histogram stand-in whose every method is empty."""

    __slots__ = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass


NOOP_METRIC = _NoopMetric()


def counter(name: str, **labels) -> Union[Counter, _NoopMetric]:
    reg = _active
    return NOOP_METRIC if reg is None else reg.counter(name, **labels)


def gauge(name: str, **labels) -> Union[Gauge, _NoopMetric]:
    reg = _active
    return NOOP_METRIC if reg is None else reg.gauge(name, **labels)


def histogram(
    name: str, buckets: Optional[Sequence[float]] = None, **labels
) -> Union[Histogram, _NoopMetric]:
    reg = _active
    return NOOP_METRIC if reg is None else reg.histogram(name, buckets, **labels)


class _NoopSpan:
    """Reusable disabled-span singleton (no state, safe to share)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _Span:
    """Context manager that records one :class:`SpanEvent` on exit."""

    __slots__ = ("registry", "name", "args", "_wall", "_begin")

    def __init__(self, registry: MetricRegistry, name: str, args: Dict):
        self.registry = registry
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self._wall = time.time()
        self._begin = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.registry.record_span(
            self.name,
            self._wall,
            time.perf_counter() - self._begin,
            trace_id=_trace.get(),
            **self.args,
        )
        return False


def span(name: str, **args) -> Union[_Span, _NoopSpan]:
    """Timing scope: ``with obs.span("engine.run", engine=name): ...``.

    Wall-clock start comes from ``time.time()`` (comparable across the
    processes of a pool), duration from the monotonic ``perf_counter``.
    """
    reg = _active
    return NOOP_SPAN if reg is None else _Span(reg, name, args)


def record_span(name: str, ts: float, duration: float, **args) -> None:
    """Record an already-measured span (attributed/batched timings).

    The span is tagged with the ambient trace id (:func:`trace` scope),
    if any.
    """
    reg = _active
    if reg is not None:
        reg.record_span(name, ts, duration, trace_id=_trace.get(), **args)
