"""Runtime observability: counters, histograms, spans, exporters.

A dependency-free telemetry layer for the scanning runtime.  Call sites
instrument through the module facade::

    from repro import obs

    obs.counter("software_scans_total", backend="lockstep").inc()
    with obs.span("engine.run", engine="CSE"):
        ...

By default nothing is recorded: every helper degrades to a shared no-op
singleton (one global load + one ``is None`` test), so instrumented code
is near-free until someone opts in with :func:`enable` (or scoped
:func:`using`).  Enabled, events land in a :class:`MetricRegistry` whose
plain-dict :meth:`~MetricRegistry.snapshot` crosses process boundaries
and merges exactly (:meth:`~MetricRegistry.merge`) — this is how
``segment_pool`` workers report back to the parent.

Exporters (:mod:`repro.obs.exporters`) render a snapshot as JSON,
JSON-lines, Prometheus text, or Chrome trace-event JSON (Perfetto).

The live plane (:mod:`repro.obs.live`) keeps the registry observable
while a deployment runs: :func:`serve` exposes ``/metrics`` +
``/snapshot.json`` over HTTP, :func:`enable_flight` arms a bounded
flight recorder with dump-on-exception postmortems, :func:`profile`
samples wall-clock folded stacks, and ``repro top`` renders snapshot
deltas live.  :func:`trace` scopes a ``trace_id`` over one logical scan
so spans from every pool worker reassemble into one Chrome trace.
"""

from repro.obs.exporters import (
    METRIC_HELP,
    chrome_trace,
    load_snapshot,
    prometheus_text,
    to_json,
    to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.live import (
    FlightRecorder,
    ObsServer,
    SamplingProfiler,
    active_flight,
    disable_flight,
    enable_flight,
    format_tail,
    install_excepthook,
    profile,
    record_scan,
    serve,
    top,
)
from repro.obs.recorder import (
    NOOP_METRIC,
    NOOP_SPAN,
    active,
    counter,
    current_trace_id,
    disable,
    enable,
    gauge,
    histogram,
    is_enabled,
    new_trace_id,
    record_span,
    span,
    trace,
    using,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    SpanEvent,
)

__all__ = [
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "SpanEvent",
    "DEFAULT_BUCKETS",
    # recorder
    "enable",
    "disable",
    "active",
    "is_enabled",
    "using",
    "counter",
    "gauge",
    "histogram",
    "span",
    "record_span",
    "new_trace_id",
    "current_trace_id",
    "trace",
    "NOOP_METRIC",
    "NOOP_SPAN",
    # exporters
    "to_json",
    "to_jsonl",
    "prometheus_text",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "load_snapshot",
    "METRIC_HELP",
    # live plane
    "FlightRecorder",
    "ObsServer",
    "SamplingProfiler",
    "active_flight",
    "disable_flight",
    "enable_flight",
    "format_tail",
    "install_excepthook",
    "profile",
    "record_scan",
    "serve",
    "top",
]
