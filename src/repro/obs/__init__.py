"""Runtime observability: counters, histograms, spans, exporters.

A dependency-free telemetry layer for the scanning runtime.  Call sites
instrument through the module facade::

    from repro import obs

    obs.counter("software_scans_total", backend="lockstep").inc()
    with obs.span("engine.run", engine="CSE"):
        ...

By default nothing is recorded: every helper degrades to a shared no-op
singleton (one global load + one ``is None`` test), so instrumented code
is near-free until someone opts in with :func:`enable` (or scoped
:func:`using`).  Enabled, events land in a :class:`MetricRegistry` whose
plain-dict :meth:`~MetricRegistry.snapshot` crosses process boundaries
and merges exactly (:meth:`~MetricRegistry.merge`) — this is how
``segment_pool`` workers report back to the parent.

Exporters (:mod:`repro.obs.exporters`) render a snapshot as JSON,
JSON-lines, Prometheus text, or Chrome trace-event JSON (Perfetto).
"""

from repro.obs.exporters import (
    chrome_trace,
    load_snapshot,
    prometheus_text,
    to_json,
    to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.recorder import (
    NOOP_METRIC,
    NOOP_SPAN,
    active,
    counter,
    disable,
    enable,
    gauge,
    histogram,
    is_enabled,
    record_span,
    span,
    using,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    SpanEvent,
)

__all__ = [
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "SpanEvent",
    "DEFAULT_BUCKETS",
    # recorder
    "enable",
    "disable",
    "active",
    "is_enabled",
    "using",
    "counter",
    "gauge",
    "histogram",
    "span",
    "record_span",
    "NOOP_METRIC",
    "NOOP_SPAN",
    # exporters
    "to_json",
    "to_jsonl",
    "prometheus_text",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "load_snapshot",
]
