"""Registry snapshot exporters: JSON, JSON-lines, Prometheus, Chrome trace.

All exporters consume the plain-dict form (:meth:`MetricRegistry.snapshot`)
so they work equally on a live registry and on a snapshot that crossed a
process boundary or was loaded back from disk.

- :func:`to_json` / :func:`to_jsonl` — machine-readable metric dumps
  (`repro stats` reads either back);
- :func:`prometheus_text` — the Prometheus text exposition format
  (counters get a ``_total``-style sample line, histograms cumulative
  ``_bucket{le=...}`` series);
- :func:`chrome_trace` — trace-event JSON with one complete (``"X"``)
  event per span, loadable in Perfetto / ``chrome://tracing``; worker
  spans keep their own pid so pool fan-out renders as separate tracks.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.registry import MetricRegistry

__all__ = [
    "to_json",
    "to_jsonl",
    "prometheus_text",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "load_snapshot",
]

Snapshot = Dict


def _as_snapshot(source: Union[MetricRegistry, Snapshot]) -> Snapshot:
    return source.snapshot() if isinstance(source, MetricRegistry) else source


def to_json(source: Union[MetricRegistry, Snapshot], indent: int = 2) -> str:
    return json.dumps(_as_snapshot(source), indent=indent) + "\n"


def to_jsonl(source: Union[MetricRegistry, Snapshot]) -> str:
    """One JSON object per line: every metric, then every span."""
    snap = _as_snapshot(source)
    lines = [json.dumps({"record": "metric", **m}) for m in snap.get("metrics", [])]
    lines += [json.dumps({"record": "span", **s}) for s in snap.get("spans", [])]
    return "\n".join(lines) + ("\n" if lines else "")


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        '%s="%s"' % (_prom_name(k), _escape(v)) for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(source: Union[MetricRegistry, Snapshot]) -> str:
    """Prometheus text exposition format of a snapshot (metrics only)."""
    snap = _as_snapshot(source)
    lines: List[str] = []
    typed = set()
    for m in snap.get("metrics", []):
        name = _prom_name(m["name"])
        kind = m["kind"]
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)
        labels = m.get("labels", {})
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_prom_labels(labels)} {m['value']:g}")
        else:  # histogram: cumulative buckets + sum + count
            cumulative = 0
            for bound, count in zip(m["buckets"], m["bucket_counts"]):
                cumulative += count
                le = 'le="%g"' % bound
                lines.append(f"{name}_bucket{_prom_labels(labels, le)} {cumulative}")
            inf = 'le="+Inf"'
            lines.append(f"{name}_bucket{_prom_labels(labels, inf)} {m['count']}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {m['sum']:g}")
            lines.append(f"{name}_count{_prom_labels(labels)} {m['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(source: Union[MetricRegistry, Snapshot]) -> Dict:
    """Chrome trace-event JSON (the ``traceEvents`` container form)."""
    snap = _as_snapshot(source)
    events = []
    for s in snap.get("spans", []):
        events.append(
            {
                "name": s["name"],
                "cat": "repro",
                "ph": "X",
                "ts": s["ts"] * 1e6,  # microseconds
                "dur": s["duration"] * 1e6,
                "pid": s["pid"],
                "tid": s["tid"],
                "args": s.get("args", {}),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_metrics(source: Union[MetricRegistry, Snapshot], path) -> Path:
    """Write a metrics snapshot; format picked from the file suffix.

    ``.jsonl`` → JSON-lines, ``.prom`` / ``.txt`` → Prometheus text,
    anything else → indented JSON snapshot.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".jsonl":
        path.write_text(to_jsonl(source))
    elif suffix in (".prom", ".txt"):
        path.write_text(prometheus_text(source))
    else:
        path.write_text(to_json(source))
    return path


def write_trace(source: Union[MetricRegistry, Snapshot], path) -> Path:
    """Write the Chrome trace-event file (open in Perfetto)."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(source), indent=2) + "\n")
    return path


def load_snapshot(path) -> Snapshot:
    """Read back a snapshot written as JSON or JSON-lines."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"record"' not in stripped.splitlines()[0]:
        return json.loads(text)
    metrics, spans = [], []
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        record = obj.pop("record", "metric")
        (spans if record == "span" else metrics).append(obj)
    return {"metrics": metrics, "spans": spans}
