"""Registry snapshot exporters: JSON, JSON-lines, Prometheus, Chrome trace.

All exporters consume the plain-dict form (:meth:`MetricRegistry.snapshot`)
so they work equally on a live registry and on a snapshot that crossed a
process boundary or was loaded back from disk.

- :func:`to_json` / :func:`to_jsonl` — machine-readable metric dumps
  (`repro stats` reads either back);
- :func:`prometheus_text` — the Prometheus text exposition format
  (counters get a ``_total``-style sample line, histograms cumulative
  ``_bucket{le=...}`` series);
- :func:`chrome_trace` — trace-event JSON with one complete (``"X"``)
  event per span, loadable in Perfetto / ``chrome://tracing``; worker
  spans keep their own pid so pool fan-out renders as separate tracks.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.registry import MetricRegistry

__all__ = [
    "to_json",
    "to_jsonl",
    "prometheus_text",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "load_snapshot",
]

Snapshot = Dict


def _as_snapshot(source: Union[MetricRegistry, Snapshot]) -> Snapshot:
    return source.snapshot() if isinstance(source, MetricRegistry) else source


def to_json(source: Union[MetricRegistry, Snapshot], indent: int = 2) -> str:
    return json.dumps(_as_snapshot(source), indent=indent) + "\n"


def to_jsonl(source: Union[MetricRegistry, Snapshot]) -> str:
    """One JSON object per line: every metric, then every span."""
    snap = _as_snapshot(source)
    lines = [json.dumps({"record": "metric", **m}) for m in snap.get("metrics", [])]
    lines += [json.dumps({"record": "span", **s}) for s in snap.get("spans", [])]
    return "\n".join(lines) + ("\n" if lines else "")


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    """Escape a label value per the text exposition spec (backslash,
    double-quote, and line feed)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and line feed only (quotes are raw)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        '%s="%s"' % (_prom_name(k), _escape_label(v))
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


#: HELP strings for the in-tree metric families; anything unlisted falls
#: back to a generic line so every family still gets spec-required HELP.
METRIC_HELP: Dict[str, str] = {
    "software_scans_total": "Completed software CSE scans.",
    "software_symbols_total": "Input symbols consumed by software scans.",
    "software_scan_seconds": "Wall-clock seconds per software CSE scan.",
    "software_reexec_segments_total":
        "Segments whose speculation failed and were re-executed.",
    "software_speculation_hits_total":
        "Enumerative segments whose speculated outcome was kept.",
    "software_speculation_misses_total":
        "Enumerative segments whose speculated outcome was discarded.",
    "software_segment_reexec_total": "Re-executions per segment index.",
    "kernels_positions_total": "Symbol positions advanced per backend.",
    "kernels_collapses_total":
        "Convergence-set collapses observed per backend.",
    "kernels_batch_runs_total": "Batched kernel invocations per backend.",
    "kernels_batch_seconds": "Wall-clock seconds per batched kernel pass.",
    "kernels_backend_resolved_total":
        "Backend resolution decisions (requested -> chosen, with reason).",
    "kernels_prefilter_fallbacks_total":
        "Prefilter requests degraded to dense (machine not certifiable).",
    "kernels_prefilter_windows_total":
        "Segments the prefilter proved reset and scanned as tail windows.",
    "kernels_prefilter_skipped_bytes_total":
        "Input bytes the prefilter skipped without a state walk.",
    "kernels_prefilter_anchor_hits_total":
        "Anchor bytes located by the prefilter byte sweep.",
    "kernels_prefilter_walked_positions_total":
        "Positions the prefilter walked scalar after the last reset run.",
    "kernels_prefilter_fallback_segments_total":
        "Segments with no provable reset run, run through dense.",
    "software_mmap_scans_total":
        "Pooled scans dispatched by (path, offset, length) mmap coordinates.",
    "software_mmap_bytes_total":
        "Bytes shipped to workers as mmap coordinates instead of copies.",
    "stream_chunks_total": "Chunks consumed by StreamScanner.feed.",
    "stream_symbols_total": "Symbols consumed by StreamScanner.feed.",
    "stream_reports_total": "Report events emitted by StreamScanner.",
    "stream_chunk_seconds": "Wall-clock seconds per stream chunk.",
    "fleet_scans_total": "Completed fleet scans.",
    "fleet_shard_throughput":
        "Modeled symbols/second per fleet product shard.",
    "fleet_machine_throughput": "Modeled symbols/second per fleet machine.",
    "fleet_shard_wallclock_throughput":
        "Measured symbols/second per fleet shard unit.",
    "fleet_machine_wallclock_throughput":
        "Measured symbols/second per fleet machine unit.",
    "fleet_deduped_machines_total":
        "Fleet machines deduplicated by DFA fingerprint.",
    "obs_live_requests_total": "HTTP requests served by the live endpoint.",
    "obs_profiler_samples_total":
        "Stack samples captured by the wall-clock profiler.",
}


def prometheus_text(source: Union[MetricRegistry, Snapshot]) -> str:
    """Prometheus text exposition format of a snapshot (metrics only).

    Spec-compliant rendering: one ``# HELP`` + ``# TYPE`` header per
    metric family (first occurrence), escaped label values, and for
    histograms the cumulative ``_bucket`` series ending in the ``+Inf``
    bucket plus exact ``_sum`` / ``_count`` samples.
    """
    snap = _as_snapshot(source)
    lines: List[str] = []
    typed = set()
    for m in snap.get("metrics", []):
        name = _prom_name(m["name"])
        kind = m["kind"]
        if name not in typed:
            help_text = METRIC_HELP.get(
                m["name"], f"repro runtime {kind} (unregistered help)"
            )
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)
        labels = m.get("labels", {})
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_prom_labels(labels)} {m['value']:g}")
        else:  # histogram: cumulative buckets + sum + count
            cumulative = 0
            for bound, count in zip(m["buckets"], m["bucket_counts"]):
                cumulative += count
                le = 'le="%g"' % bound
                lines.append(f"{name}_bucket{_prom_labels(labels, le)} {cumulative}")
            inf = 'le="+Inf"'
            lines.append(f"{name}_bucket{_prom_labels(labels, inf)} {m['count']}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {m['sum']:g}")
            lines.append(f"{name}_count{_prom_labels(labels)} {m['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(
    source: Union[MetricRegistry, Snapshot],
    trace_id: Optional[str] = None,
) -> Dict:
    """Chrome trace-event JSON (the ``traceEvents`` container form).

    Spans tagged with a trace id surface it under ``args.trace_id`` so
    the merged multi-process timeline stays attributable per scan;
    ``trace_id=`` filters the output down to one scan's spans.
    """
    snap = _as_snapshot(source)
    events = []
    for s in snap.get("spans", []):
        span_trace = s.get("trace_id")
        if trace_id is not None and span_trace != trace_id:
            continue
        args = dict(s.get("args", {}))
        if span_trace is not None:
            args["trace_id"] = span_trace
        events.append(
            {
                "name": s["name"],
                "cat": "repro",
                "ph": "X",
                "ts": s["ts"] * 1e6,  # microseconds
                "dur": s["duration"] * 1e6,
                "pid": s["pid"],
                "tid": s["tid"],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_metrics(source: Union[MetricRegistry, Snapshot], path) -> Path:
    """Write a metrics snapshot; format picked from the file suffix.

    ``.jsonl`` → JSON-lines, ``.prom`` / ``.txt`` → Prometheus text,
    anything else → indented JSON snapshot.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".jsonl":
        path.write_text(to_jsonl(source))
    elif suffix in (".prom", ".txt"):
        path.write_text(prometheus_text(source))
    else:
        path.write_text(to_json(source))
    return path


def write_trace(source: Union[MetricRegistry, Snapshot], path) -> Path:
    """Write the Chrome trace-event file (open in Perfetto)."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(source), indent=2) + "\n")
    return path


def load_snapshot(path) -> Snapshot:
    """Read back a snapshot written as JSON or JSON-lines."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"record"' not in stripped.splitlines()[0]:
        return json.loads(text)
    metrics, spans = [], []
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        record = obj.pop("record", "metric")
        (spans if record == "span" else metrics).append(obj)
    return {"metrics": metrics, "spans": spans}
