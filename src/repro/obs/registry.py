"""Thread-safe metric primitives and the named registry.

Three instrument kinds, modeled on the usual time-series trio:

- :class:`Counter` — monotone accumulator (events, symbols, re-execs);
- :class:`Gauge` — last-written value (per-machine throughput);
- :class:`Histogram` — log-bucketed distribution with exact count / sum /
  min / max (chunk latencies).

All mutation goes through a per-metric lock, so engines running on a
thread pool can share one registry.  A :class:`MetricRegistry` also
collects :class:`SpanEvent` timing records (wall-clock start + duration,
tagged with pid/tid) which the exporters turn into Chrome trace-event
JSON.

Cross-process aggregation works by value, not by reference: a worker
process records into its *own* registry, ships ``registry.snapshot()``
(a plain JSON-able dict) back over the pool's result channel, and the
parent folds it in with :meth:`MetricRegistry.merge`.  Merging is exact —
counters sum, histogram buckets add element-wise, spans concatenate —
so the merged registry is indistinguishable from one that observed every
event locally.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "SpanEvent",
    "DEFAULT_BUCKETS",
]

#: 1-2.5-5 log ladder from 1 microsecond to 500 seconds — wide enough for
#: both per-segment kernel timings and whole-suite spans.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    round(m * 10.0 ** e, 12) for e in range(-6, 3) for m in (1.0, 2.5, 5.0)
)

LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _validated_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if list(bounds) != sorted(bounds):
        raise ValueError("histogram buckets must be sorted ascending")
    return bounds


class _Metric:
    """Shared name/labels/lock plumbing of the three instrument kinds."""

    kind = "metric"

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()

    def _base_dict(self) -> Dict:
        return {"name": self.name, "kind": self.kind, "labels": dict(self.labels)}


class Counter(_Metric):
    """Monotone accumulator."""

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount

    def to_dict(self) -> Dict:
        out = self._base_dict()
        out["value"] = self.value
        return out

    def merge_dict(self, other: Dict) -> None:
        with self._lock:
            self.value += float(other["value"])


class Gauge(_Metric):
    """Last-written value; ``touched`` distinguishes 0.0 from never-set."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]):
        super().__init__(name, labels)
        self.value = 0.0
        self.touched = False

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = float(value)
            self.touched = True

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += amount
            self.touched = True

    def to_dict(self) -> Dict:
        out = self._base_dict()
        out["value"] = self.value
        out["touched"] = self.touched
        return out

    def merge_dict(self, other: Dict) -> None:
        # by-value merge: an incoming snapshot that actually wrote the
        # gauge wins over a local default
        if other.get("touched"):
            with self._lock:
                self.value = float(other["value"])
                self.touched = True


class Histogram(_Metric):
    """Log-bucketed distribution with exact count / sum / min / max.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]`` and
    ``> buckets[i-1]``; the final slot is the overflow bucket (+Inf).
    Counts are stored per-bucket (not cumulative); the Prometheus
    exporter cumulates at render time.

    Bucket bounds default to :data:`DEFAULT_BUCKETS` but are a per-metric
    choice: call sites pass ``buckets=`` for a ladder matched to the
    quantity (sub-ms chunk latencies vs whole-suite spans).  A histogram
    that has not observed anything yet may be *rebucketed*
    (:meth:`rebucket`), which is how an empty local instrument adopts the
    bounds of an incoming cross-process snapshot so the merge stays exact.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels)
        self.buckets = _validated_buckets(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def rebucket(self, buckets: Sequence[float]) -> None:
        """Replace the bucket bounds; only legal before any observation."""
        bounds = _validated_buckets(buckets)
        with self._lock:
            if self.count:
                raise ValueError(
                    f"histogram {self.name!r} already has {self.count} "
                    "observations; bucket bounds are frozen"
                )
            self.buckets = bounds
            self.bucket_counts = [0] * (len(bounds) + 1)

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        with self._lock:
            idx = bisect_left(self.buckets, value)
            self.bucket_counts[idx] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        out = self._base_dict()
        out.update(
            buckets=list(self.buckets),
            bucket_counts=list(self.bucket_counts),
            count=self.count,
            sum=self.sum,
            min=None if self.count == 0 else self.min,
            max=None if self.count == 0 else self.max,
        )
        return out

    def merge_dict(self, other: Dict) -> None:
        if list(other["buckets"]) != list(self.buckets):
            # a local instrument that never observed anything adopts the
            # incoming bounds, so per-call-site bucket overrides still
            # merge exactly across processes
            if self.count == 0:
                self.rebucket(other["buckets"])
            else:
                raise ValueError(
                    f"cannot merge histogram {self.name!r}: bucket bounds "
                    "differ"
                )
        with self._lock:
            for i, c in enumerate(other["bucket_counts"]):
                self.bucket_counts[i] += int(c)
            self.count += int(other["count"])
            self.sum += float(other["sum"])
            if other.get("min") is not None:
                self.min = min(self.min, float(other["min"]))
            if other.get("max") is not None:
                self.max = max(self.max, float(other["max"]))


@dataclass
class SpanEvent:
    """One completed timing span (wall-clock start, measured duration).

    ``trace_id`` groups the spans of one logical scan across threads
    *and* processes: the parent mints an id, ships it to the pool
    workers, and every span a worker records carries it home in the
    snapshot — so one Chrome trace reassembles from many timelines.
    """

    name: str
    ts: float  #: wall-clock start, seconds since the epoch
    duration: float  #: seconds, measured with a monotonic clock
    pid: int
    tid: int
    args: Dict = field(default_factory=dict)
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict:
        out = {
            "name": self.name,
            "ts": self.ts,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SpanEvent":
        return cls(
            name=data["name"],
            ts=float(data["ts"]),
            duration=float(data["duration"]),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            args=dict(data.get("args", {})),
            trace_id=data.get("trace_id"),
        )


class MetricRegistry:
    """A named collection of metrics plus a span buffer.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call with a (name, labels) pair mints the instrument, later calls
    return the same object, so call sites never pre-declare.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelKey], _Metric] = {}
        self.spans: List[SpanEvent] = []
        #: span observers (flight recorder, live tail): called with each
        #: SpanEvent as it lands, including spans arriving via merge()
        self._span_observers: List = []

    def add_span_observer(self, observer) -> None:
        """Register ``observer(event: SpanEvent)``; called outside locks."""
        with self._lock:
            if observer not in self._span_observers:
                self._span_observers.append(observer)

    def remove_span_observer(self, observer) -> None:
        with self._lock:
            if observer in self._span_observers:
                self._span_observers.remove(observer)

    def _notify_span(self, events: Iterable[SpanEvent]) -> None:
        observers = list(self._span_observers)
        if not observers:
            return
        for event in events:
            for observer in observers:
                observer(event)

    # ------------------------------------------------------------------
    # instrument factories
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Dict, **kwargs) -> _Metric:
        key = (name, label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, {k: str(v) for k, v in labels.items()}, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(Histogram, name, labels)
        metric = self._get_or_create(Histogram, name, labels, buckets=buckets)
        # per-call-site override on an instrument that already exists:
        # adopt the requested ladder while the histogram is still empty,
        # reject a conflicting ladder once observations are in
        bounds = _validated_buckets(buckets)
        if metric.buckets != bounds:
            metric.rebucket(bounds)
        return metric

    def get(self, name: str, **labels) -> Optional[_Metric]:
        """Look up an instrument without creating it."""
        return self._metrics.get((name, label_key(labels)))

    def metrics(self) -> List[_Metric]:
        """All instruments, ordered by (name, labels)."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def record_span(
        self,
        name: str,
        ts: float,
        duration: float,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
        trace_id: Optional[str] = None,
        **args,
    ) -> SpanEvent:
        event = SpanEvent(
            name=name,
            ts=float(ts),
            duration=float(duration),
            pid=os.getpid() if pid is None else int(pid),
            tid=threading.get_ident() if tid is None else int(tid),
            args=args,
            trace_id=trace_id,
        )
        with self._lock:
            self.spans.append(event)
        self._notify_span((event,))
        return event

    # ------------------------------------------------------------------
    # snapshot / merge — the cross-process transport
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Plain JSON-able dict of every metric and span."""
        return {
            "metrics": [m.to_dict() for m in self.metrics()],
            "spans": [s.to_dict() for s in list(self.spans)],
        }

    def merge(self, other: Union["MetricRegistry", Dict]) -> None:
        """Fold another registry (or its snapshot) into this one, exactly."""
        snap = other.snapshot() if isinstance(other, MetricRegistry) else other
        kind_to_cls = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for entry in snap.get("metrics", []):
            cls = kind_to_cls[entry["kind"]]
            kwargs = (
                {"buckets": entry["buckets"]} if entry["kind"] == "histogram" else {}
            )
            metric = self._get_or_create(cls, entry["name"], entry["labels"], **kwargs)
            metric.merge_dict(entry)
        events = [SpanEvent.from_dict(s) for s in snap.get("spans", [])]
        with self._lock:
            self.spans.extend(events)
        self._notify_span(events)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
            self.spans.clear()

    def __len__(self) -> int:
        return len(self._metrics)
