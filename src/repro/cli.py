"""Command-line interface.

Mirrors the paper's deployment workflow:

- ``repro compile``  — compile a ruleset file to a DFA and report its size;
- ``repro profile``  — random-input profiling + merge, saving the predicted
  convergence sets to JSON (the offline step);
- ``repro run``      — scan an input file with a chosen engine, printing
  final state, reports, and modeled speedup;
- ``repro suite``    — run one or all Table-I benchmarks and print the
  Figure-12 style comparison;
- ``repro figures``  — regenerate a named paper artifact (fig12, fig13, ...);
- ``repro anml``     — load an ANMLZoo automaton file and report/scan it;
- ``repro plan``     — pick the best half-core allocation for a ruleset
  using the closed-form performance model;
- ``repro software`` — measured wall-clock software CSE scan with a
  selectable execution kernel (python/lockstep/bitset/dense);
- ``repro stats``    — pretty-print a metrics snapshot emitted by
  ``--metrics-out``;
- ``repro check``    — static soundness verification (:mod:`repro.check`):
  ``check artifact`` verifies a compiled artifact / ruleset (table
  bounds, partition soundness, kernel-table equivalence, exact
  convergence certification) and ``check lint`` runs the repo's AST
  lint rules.  Both exit nonzero on error-severity findings — the
  ``make check`` CI gate.

``repro run`` and ``repro software`` accept ``--metrics-out PATH`` /
``--trace-out PATH`` to capture runtime telemetry (:mod:`repro.obs`):
a metrics snapshot (JSON, JSON-lines, or Prometheus text by suffix) and
a Chrome trace-event file loadable in Perfetto.

Examples::

    python -m repro.cli compile rules.txt
    python -m repro.cli profile rules.txt --cutoff 0.99 -o sets.json
    python -m repro.cli run rules.txt input.bin --engine cse --segments 16
    python -m repro.cli suite --benchmark Snort
    python -m repro.cli figures fig12
    python -m repro.cli software rules.txt input.bin --metrics-out m.json \\
        --trace-out t.json
    python -m repro.cli stats m.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.analysis.report import render_grouped, render_series, render_table
from repro.core.engine import CseEngine
from repro.core.profiling import ProfilingConfig, merge_to_cutoff, profile_partitions
from repro.core.store import load_partition, save_partition
from repro.engines.enumerative import EnumerativeEngine
from repro.engines.lbe import LbeEngine
from repro.engines.pap import PapEngine
from repro.engines.sequential import SequentialEngine
from repro.regex.compile import compile_ruleset

__all__ = ["main", "build_parser"]


def _read_rules(path: str) -> List[str]:
    lines = Path(path).read_text().splitlines()
    rules = [line.strip() for line in lines if line.strip() and not line.startswith("#")]
    if not rules:
        raise SystemExit(f"no rules found in {path}")
    return rules


def _compile(args) -> int:
    rules = _read_rules(args.rules)
    dfa = compile_ruleset(rules, minimize=not args.no_minimize)
    print(f"{len(rules)} rules -> {dfa.num_states} states "
          f"({len(dfa.accepting)} accepting, alphabet {dfa.alphabet_size})")
    return 0


def _profile(args) -> int:
    rules = _read_rules(args.rules)
    dfa = compile_ruleset(rules)
    config = ProfilingConfig(
        n_inputs=args.inputs,
        input_len=args.length,
        symbol_low=args.symbol_low,
        symbol_high=args.symbol_high,
        seed=args.seed,
    )
    census = profile_partitions(dfa, config)
    result = merge_to_cutoff(census, cutoff=args.cutoff)
    print(f"profiled {args.inputs} strings: {len(census)} distinct partitions")
    print(f"merged to {result.num_convergence_sets} convergence sets "
          f"covering {result.covered:.1%}")
    if args.output:
        save_partition(result.partition, args.output)
        print(f"saved to {args.output}")
    return 0


def _make_engine(name: str, dfa, args, partition=None):
    common = dict(n_segments=args.segments, cores_per_segment=args.cores)
    if name == "sequential":
        return SequentialEngine(dfa)
    if name == "enumerative":
        return EnumerativeEngine(dfa, **common)
    if name == "lbe":
        return LbeEngine(dfa, lookback=args.lookback, **common)
    if name == "pap":
        return PapEngine(dfa, **common)
    if name == "cse":
        if partition is not None:
            return CseEngine(dfa, partition=partition, **common)
        cache = None
        if getattr(args, "cache_dir", None) and not getattr(args, "no_cache", False):
            from repro.compilecache import CompileCache

            cache = CompileCache(cache_dir=args.cache_dir)
        return CseEngine(
            dfa,
            profiling=ProfilingConfig(
                n_inputs=300, input_len=200,
                symbol_low=args.symbol_low, symbol_high=args.symbol_high,
            ),
            merge_cutoff=args.cutoff,
            cache=cache,
            **common,
        )
    raise SystemExit(f"unknown engine {name!r}")


#: the live endpoint started by ``--metrics-port`` (one per CLI process)
_LIVE_SERVER = None


def _obs_begin(args) -> None:
    """Install a fresh registry when the command asked for telemetry.

    ``--metrics-port`` additionally starts the live HTTP endpoint
    (``/metrics`` Prometheus text + ``/snapshot.json``), arms the flight
    recorder, and installs the dump-on-exception postmortem hook.
    """
    global _LIVE_SERVER
    metrics_port = getattr(args, "metrics_port", None)
    wants = (
        getattr(args, "metrics_out", None)
        or getattr(args, "trace_out", None)
        or getattr(args, "profile_out", None)
        or metrics_port is not None
    )
    if not wants:
        return
    obs.enable()
    obs.enable_flight()
    if metrics_port is not None:
        obs.install_excepthook()
        _LIVE_SERVER = obs.serve(port=metrics_port)
        print(f"live metrics: {_LIVE_SERVER.url}/metrics  "
              f"(snapshot {_LIVE_SERVER.url}/snapshot.json, "
              f"top: repro top {_LIVE_SERVER.url})")


def _obs_finish(args) -> None:
    """Export and tear down the registry installed by :func:`_obs_begin`."""
    global _LIVE_SERVER
    registry = obs.active()
    if registry is None:
        return
    snapshot = registry.snapshot()
    if getattr(args, "metrics_out", None):
        path = obs.write_metrics(snapshot, args.metrics_out)
        print(f"metrics: {len(snapshot['metrics'])} series -> {path}")
    if getattr(args, "trace_out", None):
        path = obs.write_trace(snapshot, args.trace_out)
        print(f"trace: {len(snapshot['spans'])} spans -> {path}")
    if _LIVE_SERVER is not None:
        _LIVE_SERVER.stop()
        _LIVE_SERVER = None
    obs.disable_flight()
    obs.disable()


def _run(args) -> int:
    rules = _read_rules(args.rules)
    dfa = compile_ruleset(rules)
    data = Path(args.input).read_bytes()
    partition = load_partition(args.partition) if args.partition else None
    engine = _make_engine(args.engine, dfa, args, partition)
    _obs_begin(args)
    result = engine.run(data)
    baseline = SequentialEngine(dfa).run(data)
    _obs_finish(args)
    if result.final_state != baseline.final_state:
        raise SystemExit("engine diverged from the sequential oracle")
    print(f"engine: {engine.name}")
    print(f"input: {result.n_symbols} symbols in {result.n_segments} segments")
    print(f"final state: {result.final_state}")
    print(f"cycles: {result.cycles} (baseline {result.baseline_cycles})")
    print(f"speedup: {result.speedup:.2f}x of ideal {result.ideal_speedup:.0f}x")
    print(f"R0 {result.r0_mean:.2f}  RT {result.rt_mean:.2f}  "
          f"re-executed segments {result.reexec_segments}")
    if args.reports:
        reports = baseline.reports or []
        print(f"reports ({len(reports)}):")
        for offset, state in reports[: args.reports]:
            print(f"  offset {offset}: state {state}")
    return 0


def _suite(args) -> int:
    from repro.analysis.experiments import evaluate_suite

    names = [args.benchmark] if args.benchmark else None
    sweep = evaluate_suite(scale=args.scale, names=names)
    rows = []
    for name, stats in sweep.items():
        row = {"Benchmark": name}
        for engine, s in stats.items():
            if engine == "Baseline":
                continue
            row[engine] = f"{s.speedup:.2f}x"
        rows.append(row)
    print(render_table(rows))
    return 0


def _figures(args) -> int:
    from repro.analysis import experiments as exp

    name = args.figure.lower()
    if name in ("table1",):
        print(render_table(exp.table1(scale=args.scale)))
    elif name in ("table2",):
        print(render_table(exp.table2()))
    elif name == "fig8":
        freqs = exp.fig8_mfp_frequency(scale=args.scale)
        print(render_series({k: f"{v:.1%}" for k, v in freqs.items()},
                            name="MFP frequency"))
    elif name == "fig12":
        print(render_grouped(exp.fig12_speedup(scale=args.scale),
                             columns=["LBE", "PAP", "CSE", "IDEAL"]))
    elif name == "fig13":
        print(render_grouped(exp.fig13_r0(scale=args.scale),
                             columns=["LBE", "PAP", "CSE"]))
    elif name == "fig14":
        print(render_grouped(exp.fig14_rt(scale=args.scale),
                             columns=["LBE", "PAP", "CSE"]))
    elif name == "fig15":
        data = exp.fig15_lbe_lookback(scale=args.scale)
        printable = {
            n: {str(k): v for k, v in row.items()} for n, row in data.items()
        }
        print(render_grouped(printable, columns=["10", "20", "30", "100"]))
    elif name == "fig16":
        print(render_grouped(exp.fig16_cse_r0_by_merge(scale=args.scale),
                             columns=list(exp.MERGE_STRATEGIES)))
    elif name == "fig17":
        print(render_grouped(exp.fig17_cse_speedup_by_merge(scale=args.scale),
                             columns=list(exp.MERGE_STRATEGIES)))
    elif name == "fig18":
        data = exp.fig18_reexec_rate_by_merge(scale=args.scale)
        print(render_grouped(
            {n: {s: f"{v:.2%}" for s, v in row.items()} for n, row in data.items()},
            columns=list(exp.MERGE_STRATEGIES)))
    else:
        raise SystemExit(
            "unknown figure; pick from table1 table2 fig8 fig12 fig13 fig14 "
            "fig15 fig16 fig17 fig18"
        )
    return 0


def _anml(args) -> int:
    from repro.workloads.anml import load_anml_dfa

    dfa = load_anml_dfa(args.anml_file)
    print(f"ANML automaton: {dfa.num_states} states, "
          f"{len(dfa.accepting)} reporting")
    if args.input:
        data = Path(args.input).read_bytes()
        reports = dfa.run_reports(data)
        print(f"scanned {len(data)} bytes: {len(reports)} report events")
        for offset, state in reports[: args.reports]:
            print(f"  offset {offset}: state {state}")
    return 0


def _plan(args) -> int:
    import numpy as np

    from repro.analysis.convergence import symbols_to_stabilize
    from repro.analysis.model import SegmentModel
    from repro.hardware.allocation import plan_allocation

    rules = _read_rules(args.rules)
    dfa = compile_ruleset(rules)
    config = ProfilingConfig(
        n_inputs=args.inputs, input_len=args.length,
        symbol_low=args.symbol_low, symbol_high=args.symbol_high,
    )
    census = profile_partitions(dfa, config)
    merged = merge_to_cutoff(census, cutoff=args.cutoff)
    rng = np.random.default_rng(config.seed + 1)
    probes = [config.random_input(rng, dfa.alphabet_size) for _ in range(20)]
    t_stab = sum(symbols_to_stabilize(dfa, p) for p in probes) / len(probes)
    all_states = np.arange(dfa.num_states, dtype=np.int32)
    floor = sum(dfa.set_run(all_states, p).size for p in probes) / len(probes)
    model = SegmentModel(
        r0=max(float(merged.num_convergence_sets), floor),
        t_stabilize=t_stab,
        r_floor=floor,
    )
    plan = plan_allocation(model, input_len=args.input_len)
    print(f"{len(rules)} rules -> {dfa.num_states} states; "
          f"{merged.num_convergence_sets} convergence sets "
          f"(coverage {merged.covered:.1%})")
    print(f"model: r0={model.r0:.1f} t_stabilize={model.t_stabilize:.0f} "
          f"r_floor={model.r_floor:.1f}")
    print(f"recommended allocation: {plan.cores_per_segment} half-core(s) x "
          f"{plan.n_segments} segments "
          f"(predicted speedup {plan.predicted_speedup:.1f}x)")
    return 0


def _software(args) -> int:
    import time

    from repro.core.profiling import predict_convergence_sets
    from repro.core.partition import StatePartition
    from repro.ingest import open_input
    from repro.software import segment_pool, software_cse_scan

    rules = _read_rules(args.rules)
    dfa = compile_ruleset(rules)
    # mmap-backed view: segments are sliced (and, under a process pool,
    # shipped as (path, offset, length) coordinates) without ever
    # materializing the file as a bytes object
    data = open_input(args.input)
    profiling = ProfilingConfig(
        n_inputs=300, input_len=200,
        symbol_low=args.symbol_low, symbol_high=args.symbol_high,
    )
    partition = None
    if args.partition:
        partition = load_partition(args.partition)
    elif args.trivial:
        partition = StatePartition.trivial(dfa.num_states)
    cache = None
    if not args.no_cache and partition is None:
        from repro.compilecache import CompileCache

        cache = CompileCache(cache_dir=args.cache_dir)
    repeat = max(1, args.repeat)
    _obs_begin(args)
    profiler = None
    if args.profile_out:
        profiler = obs.SamplingProfiler()
        profiler.start()

    def one_scan(executor=None):
        if cache is not None:
            from repro.compilecache import scan_with_cache

            return scan_with_cache(
                dfa, data, cache=cache, n_segments=args.segments,
                executor=executor, backend=args.backend,
                profiling=profiling, cutoff=args.cutoff,
            )
        scan_partition = partition
        if scan_partition is None:
            scan_partition = predict_convergence_sets(
                dfa, profiling, cutoff=args.cutoff
            ).partition
        return software_cse_scan(
            dfa, data, scan_partition, n_segments=args.segments,
            executor=executor, backend=args.backend,
        )

    iteration_seconds = []
    if args.processes:
        with segment_pool(dfa, args.processes) as executor:
            for _ in range(repeat):
                begin = time.perf_counter()
                run = one_scan(executor)
                iteration_seconds.append(time.perf_counter() - begin)
    else:
        for _ in range(repeat):
            begin = time.perf_counter()
            run = one_scan()
            iteration_seconds.append(time.perf_counter() - begin)
    if profiler is not None:
        profiler.stop()
        Path(args.profile_out).write_text(profiler.folded(),
                                          encoding="utf-8")
        print(f"profile: {profiler.n_samples} samples -> {args.profile_out}")
    _obs_finish(args)
    stats = cache.stats() if cache is not None else None
    if partition is not None:
        n_blocks = partition.num_blocks
    elif cache is not None:
        n_blocks = cache.get_or_compile(
            dfa, profiling=profiling, cutoff=args.cutoff,
            backend=args.backend, n_segments=args.segments,
        ).partition.num_blocks
    else:
        n_blocks = predict_convergence_sets(
            dfa, profiling, cutoff=args.cutoff
        ).partition.num_blocks
    print(f"backend: {run.backend} (requested: {run.requested_backend})  "
          f"convergence sets: {n_blocks}")
    print(f"input: {run.n_symbols} symbols in {run.n_segments} segments")
    print(f"final state: {run.final_state}")
    print(f"sequential: {run.sequential_seconds * 1e3:.2f} ms")
    print(f"critical path: {run.critical_path_seconds * 1e3:.2f} ms")
    print(f"elapsed: {run.elapsed_seconds * 1e3:.2f} ms")
    print(f"work speedup: {run.work_speedup:.2f}x of ideal {run.n_segments}x "
          f"(re-executed {run.reexec_segments})")
    if repeat > 1:
        for i, sec in enumerate(iteration_seconds):
            print(f"iteration {i + 1}: {sec * 1e3:.2f} ms")
    if stats is not None:
        print(f"cache: {stats['memory_hits']} memory hits, "
              f"{stats['disk_hits']} disk hits, {stats['misses']} misses, "
              f"{stats['builds']} builds")
    data.close()
    return 0


def _fleet_dfas(args) -> List:
    """Build the fleet's machines from rules files or a generated family."""
    if args.rules:
        return [compile_ruleset(_read_rules(path)) for path in args.rules]
    if args.family:
        from repro.workloads import generate_ruleset

        return [
            compile_ruleset(generate_ruleset(args.family, args.patterns,
                                             args.seed + i))
            for i in range(args.machines)
        ]
    raise SystemExit("fleet needs rules files or --family")


def _fleet(args) -> int:
    import time

    from repro.ingest import open_input
    from repro.stream import FleetScanner

    dfas = _fleet_dfas(args)
    data = open_input(args.input)
    _obs_begin(args)
    fleet = FleetScanner(
        dfas,
        n_segments=args.segments,
        backend=args.backend,
        shard=not args.no_shard,
        max_shard_states=args.max_shard_states,
    )
    begin = time.perf_counter()
    result = fleet.scan_wallclock(data, verify=False)
    elapsed = time.perf_counter() - begin
    print(f"fleet: {len(dfas)} machines "
          f"({fleet.n_duplicates} duplicates deduped) -> "
          f"{fleet.n_units} scan unit(s)")
    if fleet.plan is not None:
        plan = fleet.plan
        print(f"shards: {plan.n_shards} "
              f"({plan.product_states} product states, budget "
              f"{plan.max_states}, {len(plan.singleton_fallbacks)} "
              f"singleton fallback(s))")
    print(f"input: {len(data)} bytes; backends: "
          f"{sorted(set(fleet.unit_backends))}")
    print(f"scan wall-clock: {elapsed * 1e3:.2f} ms "
          f"({len(data) * len(dfas) / max(elapsed, 1e-12) / 1e6:.1f} "
          "fleet MB/s)")
    if args.compare:
        per = FleetScanner(dfas, n_segments=args.segments,
                           backend=args.backend)
        begin = time.perf_counter()
        per_result = per.scan_wallclock(data, verify=False)
        per_elapsed = time.perf_counter() - begin
        if per_result.final_states != result.final_states:
            raise SystemExit("sharded finals diverged from per-machine")
        print(f"per-machine loop: {per_elapsed * 1e3:.2f} ms -> "
              f"{per_elapsed / max(elapsed, 1e-12):.2f}x speedup, "
              "final states bit-identical")
    _obs_finish(args)
    data.close()
    return 0


def _top(args) -> int:
    from repro.obs.live import top

    frames = top(
        args.source,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )
    return 0 if frames else 1


def _obs_tail(args) -> int:
    import json
    import urllib.request

    source = args.source
    if source.startswith(("http://", "https://")):
        url = source.rstrip("/")
        if not url.endswith(".json"):
            url += "/flight.json"
        with urllib.request.urlopen(url, timeout=10) as resp:  # noqa: S310
            snapshot = json.loads(resp.read().decode("utf-8"))
    else:
        snapshot = json.loads(Path(source).read_text(encoding="utf-8"))
    print(obs.format_tail(snapshot, n=args.lines))
    return 0


def _check_fleet(args) -> int:
    from repro import check as chk
    from repro.fleet import plan_shards
    from repro.workloads import generate_ruleset

    family = args.family or "ExactMatch"
    dfas = [
        compile_ruleset(generate_ruleset(family, args.patterns, args.seed + i))
        for i in range(args.fleet)
    ]
    plan = plan_shards(dfas)
    diagnostics = []
    for shard in plan.shards:
        members = [dfas[i] for i in shard.member_indices]
        diagnostics.extend(chk.verify_shard(shard, members=members))
    if args.json:
        print(chk.render_json(
            diagnostics,
            target=f"fleet:{family}x{args.fleet}",
            shards=[
                {"key": s.key, "members": list(s.member_indices),
                 "states": s.num_states}
                for s in plan.shards
            ],
        ))
    else:
        print(f"fleet: {args.fleet} x {family} machines -> "
              f"{plan.n_shards} shard(s), {plan.product_states} product "
              f"states, {len(plan.singleton_fallbacks)} singleton "
              "fallback(s)")
        print(chk.render_text(diagnostics))
    return 1 if chk.has_errors(diagnostics) else 0


def _check_artifact(args) -> int:
    from repro import check as chk
    from repro.compilecache import compile_dfa

    if getattr(args, "fleet", 0):
        return _check_fleet(args)
    diagnostics = []
    certificates = []
    compiled = None
    source = args.target
    if args.family:
        from repro.workloads import generate_ruleset

        rules = generate_ruleset(args.family, args.patterns, args.seed)
        dfa = compile_ruleset(rules)
        source = f"family:{args.family}"
    elif args.target and args.target.endswith(".cdfa"):
        diagnostics.extend(chk.verify_artifact_file(args.target))
        if not chk.has_errors(diagnostics):
            import pickle

            with open(args.target, "rb") as handle:
                compiled = pickle.load(handle)["artifact"]
        dfa = compiled.dfa if compiled is not None else None
    elif args.target:
        dfa = compile_ruleset(_read_rules(args.target))
    else:
        raise SystemExit("check artifact needs a target "
                         "(.cdfa file, rules file, or --family)")
    if compiled is None and dfa is not None:
        compiled = compile_dfa(
            dfa,
            profiling=ProfilingConfig(
                n_inputs=args.inputs, input_len=args.length,
                symbol_low=args.symbol_low, symbol_high=args.symbol_high,
            ),
            cutoff=args.cutoff,
            backend=args.backend,
            n_segments=args.segments,
        )
        diagnostics.extend(chk.verify_compiled(compiled))
    if compiled is not None and not chk.has_errors(diagnostics):
        certificates, cert_diags = chk.certify_partition(
            compiled.dfa, compiled.partition,
            census=compiled.census,
            profiling_len=compiled.profiling.input_len,
            max_sets=args.max_sets, max_depth=args.depth,
        )
        diagnostics.extend(cert_diags)
    statuses = {
        status: sum(1 for c in certificates if c.status == status)
        for status in (chk.CONVERGENT, chk.DIVERGENT, chk.UNKNOWN)
    }
    if args.json:
        print(chk.render_json(
            diagnostics,
            target=source,
            certificates=[
                {
                    "block": c.block_index, "size": c.size,
                    "status": c.status, "depth": c.depth,
                    "explored_sets": c.explored_sets,
                    "profiled_convergence": c.profiled_convergence,
                }
                for c in certificates
            ],
        ))
    else:
        print(f"artifact: {source}")
        if compiled is not None:
            print(f"  {compiled.dfa.num_states} states, "
                  f"{compiled.num_convergence_sets} convergence sets, "
                  f"backend {compiled.backend}")
        if certificates:
            print(f"  certification: {statuses[chk.CONVERGENT]} "
                  f"proven-convergent, {statuses[chk.DIVERGENT]} "
                  f"proven-divergent, {statuses[chk.UNKNOWN]} unknown")
        print(chk.render_text(diagnostics))
    return 1 if chk.has_errors(diagnostics) else 0


def _check_lint(args) -> int:
    from repro import check as chk
    from repro.check.baseline import (
        DEFAULT_BASELINE_PATH,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.check.cache import DEFAULT_CACHE_PATH, cached_lint_paths
    from repro.check.lint import default_rules
    from repro.check.sarif import render_sarif

    paths = args.paths or ["src"]
    rules = default_rules(flow=args.flow)
    cache_path = None if args.no_cache else (args.cache
                                             or DEFAULT_CACHE_PATH)
    try:
        diagnostics = cached_lint_paths(
            paths, rules, cache_path=cache_path,
            check_stale_noqa=args.flow)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE_PATH
        count = write_baseline(diagnostics, target)
        print(f"baseline written: {count} finding(s) -> {target}")
        return 0

    absorbed = 0
    if not args.no_baseline:
        baseline_path = Path(args.baseline or DEFAULT_BASELINE_PATH)
        if args.baseline or baseline_path.exists():
            try:
                baseline = load_baseline(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            diagnostics, absorbed = apply_baseline(diagnostics, baseline)

    if args.sarif:
        from repro import __version__ as tool_version
        Path(args.sarif).write_text(
            render_sarif(diagnostics, tool_version=tool_version),
            encoding="utf-8")
    if args.json:
        print(chk.render_json(diagnostics, paths=list(map(str, paths)),
                              baseline_absorbed=absorbed))
    else:
        if absorbed:
            print(f"({absorbed} accepted finding(s) absorbed by the "
                  "baseline)")
        print(chk.render_text(diagnostics))
    gating = [d for d in diagnostics if d.severity in ("error", "warning")]
    return 1 if gating else 0


def _stats(args) -> int:
    snapshot = obs.load_snapshot(args.snapshot)
    if args.format == "prom":
        print(obs.prometheus_text(snapshot), end="")
        return 0
    if args.format == "json":
        print(obs.to_json(snapshot), end="")
        return 0
    rows = []
    for m in snapshot.get("metrics", []):
        labels = ",".join(f"{k}={v}" for k, v in sorted(m["labels"].items()))
        if m["kind"] == "histogram":
            count = m["count"]
            mean = m["sum"] / count if count else 0.0
            value = (f"count={count} sum={m['sum']:.6g} mean={mean:.6g} "
                     f"min={m['min']} max={m['max']}")
        else:
            value = f"{m['value']:g}"
        rows.append({
            "metric": m["name"],
            "kind": m["kind"],
            "labels": labels or "-",
            "value": value,
        })
    if rows:
        print(render_table(rows))
    else:
        print("no metrics in snapshot")
    spans = snapshot.get("spans", [])
    if spans:
        by_name = {}
        for s in spans:
            entry = by_name.setdefault(s["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += s["duration"]
        print(f"\nspans ({len(spans)} events):")
        for name in sorted(by_name):
            count, total = by_name[name]
            print(f"  {name:<24} n={count:<5d} total {total * 1e3:.2f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSE: parallel FSMs with convergence set enumeration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a ruleset file")
    p_compile.add_argument("rules", help="file with one regex per line")
    p_compile.add_argument("--no-minimize", action="store_true")
    p_compile.set_defaults(func=_compile)

    p_profile = sub.add_parser("profile", help="predict convergence sets")
    p_profile.add_argument("rules")
    p_profile.add_argument("--inputs", type=int, default=1000)
    p_profile.add_argument("--length", type=int, default=200)
    p_profile.add_argument("--symbol-low", type=int, default=0)
    p_profile.add_argument("--symbol-high", type=int, default=255)
    p_profile.add_argument("--cutoff", type=float, default=0.99)
    p_profile.add_argument("--seed", type=int, default=20180623)
    p_profile.add_argument("-o", "--output", help="save partition JSON here")
    p_profile.set_defaults(func=_profile)

    p_run = sub.add_parser("run", help="scan an input file")
    p_run.add_argument("rules")
    p_run.add_argument("input", help="binary input file")
    p_run.add_argument("--engine", default="cse",
                       choices=["sequential", "enumerative", "lbe", "pap", "cse"])
    p_run.add_argument("--segments", type=int, default=16)
    p_run.add_argument("--cores", type=int, default=1)
    p_run.add_argument("--lookback", type=int, default=20)
    p_run.add_argument("--cutoff", type=float, default=0.99)
    p_run.add_argument("--symbol-low", type=int, default=0)
    p_run.add_argument("--symbol-high", type=int, default=255)
    p_run.add_argument("--partition", help="partition JSON from `profile -o`")
    p_run.add_argument("--cache-dir",
                       help="serve the CSE profiling products from a "
                            "persistent compilation cache in this directory")
    p_run.add_argument("--no-cache", action="store_true",
                       help="ignore --cache-dir (always re-profile)")
    p_run.add_argument("--reports", type=int, default=0,
                       help="print up to N report events")
    p_run.add_argument("--metrics-out",
                       help="write a metrics snapshot here "
                            "(.json/.jsonl/.prom by suffix)")
    p_run.add_argument("--trace-out",
                       help="write a Chrome trace-event file here (Perfetto)")
    p_run.add_argument("--metrics-port", type=int, default=None,
                       help="serve live /metrics + /snapshot.json on this "
                            "port while the scan runs (0 = ephemeral)")
    p_run.set_defaults(func=_run)

    p_suite = sub.add_parser("suite", help="run Table-I benchmarks")
    p_suite.add_argument("--benchmark", help="one benchmark (default: all)")
    p_suite.add_argument("--scale", type=float, default=1.0)
    p_suite.set_defaults(func=_suite)

    p_fig = sub.add_parser("figures", help="regenerate a paper artifact")
    p_fig.add_argument("figure", help="table1|table2|fig8|fig12|...|fig18")
    p_fig.add_argument("--scale", type=float, default=1.0)
    p_fig.set_defaults(func=_figures)

    p_anml = sub.add_parser("anml", help="load/scan an ANML automaton")
    p_anml.add_argument("anml_file")
    p_anml.add_argument("--input", help="binary file to scan")
    p_anml.add_argument("--reports", type=int, default=5)
    p_anml.set_defaults(func=_anml)

    p_sw = sub.add_parser("software", help="wall-clock software CSE scan")
    p_sw.add_argument("rules")
    p_sw.add_argument("input", help="binary input file")
    p_sw.add_argument("--backend", default="auto",
                      choices=["auto", "python", "lockstep", "bitset", "dense",
                               "native", "prefilter"])
    p_sw.add_argument("--segments", type=int, default=16)
    p_sw.add_argument("--processes", type=int, default=0,
                      help="run segments on a process pool of this size")
    p_sw.add_argument("--partition", help="partition JSON from `profile -o`")
    p_sw.add_argument("--trivial", action="store_true",
                      help="use the single-set partition instead of profiling")
    p_sw.add_argument("--cutoff", type=float, default=0.99)
    p_sw.add_argument("--symbol-low", type=int, default=0)
    p_sw.add_argument("--symbol-high", type=int, default=255)
    p_sw.add_argument("--repeat", type=int, default=1,
                      help="scan the input N times (shows warm-cache reuse)")
    p_sw.add_argument("--cache-dir",
                      help="persist compiled artifacts in this directory")
    p_sw.add_argument("--no-cache", action="store_true",
                      help="disable the compilation cache (legacy path)")
    p_sw.add_argument("--metrics-out",
                      help="write a metrics snapshot here "
                           "(.json/.jsonl/.prom by suffix)")
    p_sw.add_argument("--trace-out",
                      help="write a Chrome trace-event file here (Perfetto)")
    p_sw.add_argument("--metrics-port", type=int, default=None,
                      help="serve live /metrics + /snapshot.json on this "
                           "port while the scan runs (0 = ephemeral)")
    p_sw.add_argument("--profile-out",
                      help="sample wall-clock stacks during the scan and "
                           "write folded flamegraph text here")
    p_sw.set_defaults(func=_software)

    p_fleet = sub.add_parser(
        "fleet", help="scan one input against many rulesets (sharded)")
    p_fleet.add_argument("input", help="binary input file")
    p_fleet.add_argument("rules", nargs="*",
                         help="rules files, one machine each")
    p_fleet.add_argument("--family",
                         help="generate machines from a paper-suite family "
                              "instead (e.g. ExactMatch, Snort)")
    p_fleet.add_argument("--machines", type=int, default=16,
                         help="fleet size for --family")
    p_fleet.add_argument("--patterns", type=int, default=4,
                         help="patterns per generated machine")
    p_fleet.add_argument("--seed", type=int, default=7)
    p_fleet.add_argument("--segments", type=int, default=8)
    p_fleet.add_argument("--backend", default="auto",
                         choices=["auto", "python", "lockstep", "bitset",
                                  "dense", "native", "prefilter"])
    p_fleet.add_argument("--no-shard", action="store_true",
                         help="run the per-machine loop instead of product "
                              "shards")
    p_fleet.add_argument("--max-shard-states", type=int, default=None,
                         help="shard product budget "
                              "(default: DENSE_MAX_STATES)")
    p_fleet.add_argument("--compare", action="store_true",
                         help="also time the per-machine loop and verify "
                              "bit-identical final states")
    p_fleet.add_argument("--metrics-out",
                         help="write a metrics snapshot here "
                              "(.json/.jsonl/.prom by suffix)")
    p_fleet.add_argument("--trace-out",
                         help="write a Chrome trace-event file here "
                              "(Perfetto)")
    p_fleet.add_argument("--metrics-port", type=int, default=None,
                         help="serve live /metrics + /snapshot.json on this "
                              "port while the scan runs (0 = ephemeral)")
    p_fleet.set_defaults(func=_fleet)

    p_stats = sub.add_parser("stats", help="pretty-print a metrics snapshot")
    p_stats.add_argument("snapshot", help="file from --metrics-out "
                                          "(JSON or JSON-lines)")
    p_stats.add_argument("--format", default="table",
                         choices=["table", "prom", "json"])
    p_stats.set_defaults(func=_stats)

    p_check = sub.add_parser(
        "check", help="static soundness verification (artifact | lint)")
    check_sub = p_check.add_subparsers(dest="check_command", required=True)

    p_ca = check_sub.add_parser(
        "artifact",
        help="verify a compiled artifact (.cdfa), a rules file, or a "
             "--family ruleset; certify its convergence sets exactly")
    p_ca.add_argument("target", nargs="?",
                      help=".cdfa artifact or rules file (one regex/line)")
    p_ca.add_argument("--family",
                      help="verify a generated paper-suite ruleset instead "
                           "(e.g. ExactMatch, Snort, ClamAV)")
    p_ca.add_argument("--patterns", type=int, default=20,
                      help="pattern count for --family rulesets")
    p_ca.add_argument("--seed", type=int, default=7,
                      help="generator seed for --family rulesets")
    p_ca.add_argument("--segments", type=int, default=16)
    p_ca.add_argument("--backend", default="auto",
                      choices=["auto", "python", "lockstep", "bitset", "dense",
                               "native", "prefilter"])
    p_ca.add_argument("--cutoff", type=float, default=0.99)
    p_ca.add_argument("--inputs", type=int, default=300)
    p_ca.add_argument("--length", type=int, default=200)
    p_ca.add_argument("--symbol-low", type=int, default=0)
    p_ca.add_argument("--symbol-high", type=int, default=255)
    p_ca.add_argument("--depth", type=int, default=512,
                      help="set-automaton exploration depth budget")
    p_ca.add_argument("--max-sets", type=int, default=4096,
                      help="set-automaton exploration node budget")
    p_ca.add_argument("--fleet", type=int, default=0,
                      help="instead: build an N-machine --family fleet, plan "
                           "shards, and verify every shard artifact "
                           "(K120-K123)")
    p_ca.add_argument("--json", action="store_true",
                      help="emit structured JSON instead of text")
    p_ca.set_defaults(func=_check_artifact)

    p_cl = check_sub.add_parser(
        "lint",
        help="run the repo's lint rules: per-node R1xx plus the "
             "flow-sensitive R2xx/R3xx families")
    p_cl.add_argument("paths", nargs="*",
                      help="files or directories (default: src)")
    p_cl.add_argument("--json", action="store_true",
                      help="emit structured JSON instead of text")
    p_cl.add_argument("--flow", dest="flow", action="store_true",
                      default=True,
                      help="run the flow-sensitive R2xx/R3xx rules "
                           "(default)")
    p_cl.add_argument("--no-flow", dest="flow", action="store_false",
                      help="per-node R1xx rules only")
    p_cl.add_argument("--sarif", metavar="PATH",
                      help="also write the (post-baseline) findings as a "
                           "SARIF 2.1.0 report for CI annotations")
    p_cl.add_argument("--baseline", metavar="PATH",
                      help="accepted-findings baseline file (default: "
                           ".repro-lint-baseline.json when present)")
    p_cl.add_argument("--no-baseline", action="store_true",
                      help="report every finding, ignoring any baseline")
    p_cl.add_argument("--write-baseline", action="store_true",
                      help="accept the current findings: (re)write the "
                           "baseline file and exit 0")
    p_cl.add_argument("--cache", metavar="PATH",
                      help="incremental cache file (default: "
                           ".repro_check_cache.json)")
    p_cl.add_argument("--no-cache", action="store_true",
                      help="re-analyze every file from scratch")
    p_cl.set_defaults(func=_check_lint)

    p_top = sub.add_parser(
        "top", help="live terminal view of a running scan's snapshot deltas")
    p_top.add_argument("source",
                       help="live endpoint URL (from --metrics-port) or a "
                            "snapshot JSON file refreshed by another process")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between polls")
    p_top.add_argument("--iterations", type=int, default=None,
                       help="stop after N frames (default: until Ctrl-C)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the screen")
    p_top.set_defaults(func=_top)

    p_obs = sub.add_parser(
        "obs", help="observability utilities (flight recorder)")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_tail = obs_sub.add_parser(
        "tail", help="show recent spans + scan summaries from a flight "
                     "recorder dump or a live endpoint")
    p_tail.add_argument("source",
                        help="flight dump JSON (repro-flight-<pid>.json) or "
                             "a live endpoint URL (fetches /flight.json)")
    p_tail.add_argument("-n", "--lines", type=int, default=20,
                        help="show the most recent N spans")
    p_tail.set_defaults(func=_obs_tail)

    p_plan = sub.add_parser("plan", help="recommend a half-core allocation")
    p_plan.add_argument("rules")
    p_plan.add_argument("--inputs", type=int, default=300)
    p_plan.add_argument("--length", type=int, default=300)
    p_plan.add_argument("--input-len", type=int, default=4800)
    p_plan.add_argument("--cutoff", type=float, default=0.99)
    p_plan.add_argument("--symbol-low", type=int, default=0)
    p_plan.add_argument("--symbol-high", type=int, default=255)
    p_plan.set_defaults(func=_plan)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
