"""Unit tests for the streaming and fleet scanning API."""

import numpy as np
import pytest

from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.core.profiling import ProfilingConfig
from repro.regex.compile import compile_ruleset
from repro.stream import FleetScanner, StreamScanner

TEXT = b"the cat chased a fish while the dog slept in gray hot weather "


@pytest.fixture
def dfa():
    return compile_ruleset(["cat", "dog", "fish"])


class TestStreamScanner:
    def test_chunked_equals_whole(self, dfa):
        whole = dfa.run_reports(TEXT * 10)
        scanner = StreamScanner(dfa)
        collected = []
        data = TEXT * 10
        for i in range(0, len(data), 37):  # awkward chunk size on purpose
            collected.extend(scanner.feed(data[i:i + 37]))
        state, log = scanner.finish()
        assert collected == whole
        assert log == whole
        assert state == dfa.run(data)

    def test_single_byte_chunks(self, dfa):
        scanner = StreamScanner(dfa)
        data = TEXT
        for i in range(len(data)):
            scanner.feed(data[i:i + 1])
        state, log = scanner.finish()
        assert log == dfa.run_reports(data)
        assert state == dfa.run(data)

    def test_empty_chunk_noop(self, dfa):
        scanner = StreamScanner(dfa)
        assert scanner.feed(b"") == []
        assert scanner.offset == 0

    def test_reset_clears_state(self, dfa):
        scanner = StreamScanner(dfa)
        scanner.feed(TEXT)
        scanner.reset()
        assert scanner.offset == 0
        assert scanner.reports == []
        assert scanner.state == dfa.start

    def test_global_offsets(self, dfa):
        scanner = StreamScanner(dfa)
        scanner.feed(b"xxxx")
        reports = scanner.feed(b"cat")
        assert reports == [(6, reports[0][1])]  # 'cat' ends at offset 6

    def test_parallel_engine_used_for_long_chunks(self, dfa):
        engine = CseEngine(
            dfa, n_segments=4,
            profiling=ProfilingConfig(n_inputs=40, input_len=100,
                                      symbol_low=97, symbol_high=122),
        )
        fast = StreamScanner(dfa, engine=engine, min_parallel_chunk=64)
        slow = StreamScanner(dfa)
        data = TEXT * 20
        fast.feed(data)
        slow.feed(data)
        assert fast.finish() == slow.finish()
        assert fast.cycles < slow.cycles  # the parallel model is cheaper

    def test_short_chunks_charged_sequentially(self, dfa):
        engine = CseEngine(dfa, n_segments=4,
                           partition=StatePartition.trivial(dfa.num_states))
        scanner = StreamScanner(dfa, engine=engine, min_parallel_chunk=10_000)
        scanner.feed(TEXT)
        assert scanner.cycles == len(TEXT)


class TestFleetScanner:
    def _fleet(self):
        dfas = [
            compile_ruleset(["cat"]),
            compile_ruleset(["dog"]),
            compile_ruleset(["fish", "fowl"]),
        ]
        return FleetScanner(dfas, n_segments=4)

    def test_reports_per_fsm(self):
        fleet = self._fleet()
        result = fleet.scan(TEXT * 5)
        assert result.n_fsms == 3
        assert len(result.reports[0]) == 5  # 'cat' x5
        assert len(result.reports[1]) == 5
        assert len(result.reports[2]) == 5  # 'fish' x5

    def test_total_reports(self):
        result = self._fleet().scan(TEXT * 2)
        assert result.total_reports == 6

    def test_throughput_positive(self):
        result = self._fleet().scan(TEXT * 5)
        assert result.throughput > 0
        assert result.cycles > 0

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetScanner([])

    def test_partition_count_mismatch(self, dfa):
        with pytest.raises(ValueError):
            FleetScanner([dfa], partitions=[None, None])

    def test_custom_partitions_used(self, dfa):
        partition = StatePartition.trivial(dfa.num_states)
        fleet = FleetScanner([dfa], partitions=[partition], n_segments=4)
        assert fleet.engines[0].partition is partition

    def test_many_fsms_serialize_in_rounds(self):
        """More FSMs than half-cores: cycles grow with the round count."""
        dfas = [compile_ruleset([w]) for w in
                ["cat", "dog", "fish", "bird", "lion", "bear"]]
        small_fleet = FleetScanner(dfas[:2], n_segments=2)
        big_fleet = FleetScanner(dfas, n_segments=2)
        data = TEXT * 5
        assert big_fleet.scan(data).cycles >= small_fleet.scan(data).cycles


class TestStreamScannerBackends:
    @pytest.mark.parametrize("backend", ["python", "lockstep", "bitset", "dense", "prefilter", "auto"])
    def test_backend_equals_reference(self, dfa, backend):
        reference = StreamScanner(dfa)
        scanner = StreamScanner(dfa, backend=backend, min_parallel_chunk=256)
        data = TEXT * 20
        for i in range(0, len(data), 700):
            reference.feed(data[i:i + 700])
            scanner.feed(data[i:i + 700])
        assert scanner.finish() == reference.finish()
        assert scanner.backend in (
            "python", "lockstep", "bitset", "dense", "native", "prefilter"
        )

    def test_resolved_via_shared_helper(self, dfa):
        from repro.kernels import resolve_backend

        partition = StatePartition.trivial(dfa.num_states)
        scanner = StreamScanner(dfa, backend="auto", partition=partition)
        assert scanner.backend == resolve_backend(dfa, "auto", partition, 8)

    def test_short_chunks_stay_sequential(self, dfa):
        scanner = StreamScanner(dfa, backend="lockstep", min_parallel_chunk=10_000)
        scanner.feed(TEXT)
        assert scanner.state == dfa.run(TEXT)

    def test_unknown_backend_rejected(self, dfa):
        with pytest.raises(ValueError):
            StreamScanner(dfa, backend="simd")


class TestFleetWallclock:
    def test_scan_wallclock(self):
        dfas = [compile_ruleset(["cat"]), compile_ruleset(["dog"])]
        fleet = FleetScanner(dfas, n_segments=4)
        assert len(fleet.backends) == 2
        result = fleet.scan_wallclock(TEXT * 10)
        expected = [d.run(TEXT * 10) for d in dfas]
        assert [r.final_state for r in result.runs] == expected
        assert result.critical_path_seconds > 0
        assert result.critical_path_seconds <= result.elapsed_seconds
        assert result.work_speedup > 0

    def test_backends_resolved_per_fsm(self):
        from repro.kernels import BACKENDS

        dfas = [compile_ruleset(["cat"]), compile_ruleset(["dog"])]
        fleet = FleetScanner(dfas, backend="lockstep", n_segments=4)
        assert fleet.backends == ["lockstep", "lockstep"]
        auto = FleetScanner(dfas, n_segments=4)
        assert all(b in BACKENDS for b in auto.backends)
