"""Property-based tests (hypothesis) on the core invariants.

These are the repository's strongest correctness evidence: every parallel
engine must equal the sequential oracle on arbitrary machines and inputs,
and the partition algebra must satisfy the laws the merge strategy relies
on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import Dfa
from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.core.profiling import ProfilingConfig, predict_convergence_sets
from repro.engines.enumerative import EnumerativeEngine
from repro.engines.lbe import LbeEngine
from repro.engines.pap import PapEngine


@st.composite
def dfas(draw, max_states=12, max_alphabet=4):
    n = draw(st.integers(2, max_states))
    k = draw(st.integers(1, max_alphabet))
    table = draw(
        st.lists(
            st.lists(st.integers(0, n - 1), min_size=n, max_size=n),
            min_size=k,
            max_size=k,
        )
    )
    start = draw(st.integers(0, n - 1))
    accepting = draw(st.sets(st.integers(0, n - 1), max_size=n))
    return Dfa(np.asarray(table, dtype=np.int32), start, accepting)


@st.composite
def dfa_and_word(draw, max_len=120):
    dfa = draw(dfas())
    word = draw(
        st.lists(st.integers(0, dfa.alphabet_size - 1), min_size=0, max_size=max_len)
    )
    return dfa, np.asarray(word, dtype=np.int64)


@st.composite
def partitions_for(draw, n):
    labels = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    return StatePartition.from_labels(labels)


class TestEngineEquivalence:
    @given(dfa_and_word(), st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_enumerative_equals_sequential(self, dw, n_segments):
        dfa, word = dw
        engine = EnumerativeEngine(dfa, n_segments=n_segments)
        assert engine.run(word).final_state == dfa.run(word)

    @given(dfa_and_word(), st.integers(2, 6), st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_lbe_equals_sequential(self, dw, n_segments, lookback):
        dfa, word = dw
        engine = LbeEngine(dfa, n_segments=n_segments, lookback=lookback)
        assert engine.run(word).final_state == dfa.run(word)

    @given(dfa_and_word(), st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_pap_equals_sequential(self, dw, n_segments):
        dfa, word = dw
        engine = PapEngine(dfa, n_segments=n_segments)
        assert engine.run(word).final_state == dfa.run(word)

    @given(dfa_and_word(), st.integers(2, 5), st.data(),
           st.sampled_from(["basic", "last_concrete", "opportunistic"]))
    @settings(max_examples=60, deadline=None)
    def test_cse_equals_sequential(self, dw, n_segments, data, policy):
        dfa, word = dw
        partition = data.draw(partitions_for(dfa.num_states))
        engine = CseEngine(dfa, n_segments=n_segments, partition=partition,
                           policy=policy)
        assert engine.run(word).final_state == dfa.run(word)

    @given(dfa_and_word())
    @settings(max_examples=40, deadline=None)
    def test_run_all_states_consistent(self, dw):
        dfa, word = dw
        finals = dfa.run_all_states(word)
        for q in range(dfa.num_states):
            assert finals[q] == dfa.run(word, state=q)


class TestSetPrimitiveProperties:
    @given(dfa_and_word())
    @settings(max_examples=40, deadline=None)
    def test_set_size_non_increasing(self, dw):
        """The convergence property: M <= N at every step."""
        dfa, word = dw
        states = np.arange(dfa.num_states, dtype=np.int32)
        _, sizes = dfa.set_run(states, word, record_sizes=True)
        previous = dfa.num_states
        for size in sizes:
            assert size <= previous
            previous = size

    @given(dfa_and_word(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_set_run_is_pointwise_image(self, dw, data):
        dfa, word = dw
        subset = data.draw(
            st.sets(st.integers(0, dfa.num_states - 1), min_size=1)
        )
        got = dfa.set_run(np.asarray(sorted(subset), dtype=np.int32), word)
        want = sorted({int(dfa.run(word, state=q)) for q in subset})
        assert got.tolist() == want


class TestPartitionLaws:
    @given(st.integers(2, 10), st.data())
    @settings(max_examples=60, deadline=None)
    def test_refine_commutative(self, n, data):
        p1 = data.draw(partitions_for(n))
        p2 = data.draw(partitions_for(n))
        assert p1.refine(p2) == p2.refine(p1)

    @given(st.integers(2, 10), st.data())
    @settings(max_examples=60, deadline=None)
    def test_refine_associative(self, n, data):
        p1, p2, p3 = (data.draw(partitions_for(n)) for _ in range(3))
        assert p1.refine(p2).refine(p3) == p1.refine(p2.refine(p3))

    @given(st.integers(2, 10), st.data())
    @settings(max_examples=60, deadline=None)
    def test_refinement_covers_inputs(self, n, data):
        p1 = data.draw(partitions_for(n))
        p2 = data.draw(partitions_for(n))
        merged = p1.refine(p2)
        assert merged.refines(p1) and merged.refines(p2)

    @given(st.integers(2, 10), st.data())
    @settings(max_examples=60, deadline=None)
    def test_cover_preserves_convergence(self, n, data):
        """If finals converge under P and Q refines P, Q converges too."""
        p = data.draw(partitions_for(n))
        q = data.draw(partitions_for(n))
        merged = p.refine(q)
        finals = np.asarray(
            data.draw(st.lists(st.integers(0, n - 1), min_size=n, max_size=n))
        )
        if p.converges_on(finals):
            assert merged.converges_on(finals)


class TestPredictionProperties:
    @given(dfas(max_states=8, max_alphabet=3), st.sampled_from([0.9, 0.99, 1.0]))
    @settings(max_examples=20, deadline=None)
    def test_prediction_coverage_meets_cutoff(self, dfa, cutoff):
        config = ProfilingConfig(n_inputs=30, input_len=30,
                                 symbol_high=dfa.alphabet_size - 1)
        result = predict_convergence_sets(dfa, config, cutoff=cutoff)
        assert result.covered >= min(cutoff, 1.0) or result.covered > 0.99
        assert 1 <= result.num_convergence_sets <= dfa.num_states
