"""Engine behaviour across hardware configurations.

Correctness must be invariant to every cost-model knob (they change
cycles, never answers), and the cost accounting must respond to the knobs
in the physically sensible direction.
"""

import numpy as np
import pytest

from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.engines.enumerative import EnumerativeEngine
from repro.engines.lbe import LbeEngine
from repro.engines.pap import PapEngine
from repro.hardware.ap import APConfig

TEXT = (b"the cat chased a fish while the dog slept in gray hot weather ") * 25


def engines_under(config, dfa, cores=1):
    partition = StatePartition.trivial(dfa.num_states)
    common = dict(n_segments=8, cores_per_segment=cores, config=config)
    return [
        EnumerativeEngine(dfa, **common),
        LbeEngine(dfa, lookback=15, **common),
        PapEngine(dfa, **common),
        CseEngine(dfa, partition=partition, **common),
    ]


class TestCoresPerSegment:
    @pytest.mark.parametrize("cores", [1, 2, 3])
    def test_correct_at_any_core_count(self, small_ruleset_dfa, cores):
        expected = small_ruleset_dfa.run(TEXT)
        for engine in engines_under(APConfig(), small_ruleset_dfa, cores):
            assert engine.run(TEXT).final_state == expected, engine.name

    def test_more_cores_never_slower(self, small_ruleset_dfa):
        for cls in (EnumerativeEngine, LbeEngine):
            one = cls(small_ruleset_dfa, n_segments=8, cores_per_segment=1)
            three = cls(small_ruleset_dfa, n_segments=8, cores_per_segment=3)
            assert three.run(TEXT).cycles <= one.run(TEXT).cycles

    def test_cores_cut_enumeration_cost(self, small_ruleset_dfa):
        """Full enumeration with many flows benefits most from cores."""
        one = EnumerativeEngine(small_ruleset_dfa, n_segments=4,
                                cores_per_segment=1, deactivate=False)
        four = EnumerativeEngine(small_ruleset_dfa, n_segments=4,
                                 cores_per_segment=4, deactivate=False)
        assert four.run(TEXT).cycles < one.run(TEXT).cycles


class TestConfigKnobs:
    @pytest.mark.parametrize(
        "config",
        [
            APConfig(context_switch_cycles=0),
            APConfig(context_switch_cycles=30),
            APConfig(check_interval=1),
            APConfig(check_interval=100),
            APConfig(convergence_check_cycles_per_pair=0),
            APConfig(symbol_cycles=2),
        ],
    )
    def test_correct_under_every_config(self, small_ruleset_dfa, config):
        expected = small_ruleset_dfa.run(TEXT)
        for engine in engines_under(config, small_ruleset_dfa):
            assert engine.run(TEXT).final_state == expected, engine.name

    def test_symbol_cycles_scale_baseline(self, small_ruleset_dfa):
        from repro.engines.sequential import SequentialEngine

        slow_clock = SequentialEngine(small_ruleset_dfa,
                                      config=APConfig(symbol_cycles=2))
        assert slow_clock.run(TEXT).cycles == 2 * len(TEXT)

    def test_frequent_checks_cost_more(self, small_ruleset_dfa):
        eager = EnumerativeEngine(small_ruleset_dfa, n_segments=4,
                                  config=APConfig(check_interval=1),
                                  deactivate=False)
        lazy = EnumerativeEngine(small_ruleset_dfa, n_segments=4,
                                 config=APConfig(check_interval=100),
                                 deactivate=False)
        assert eager.run(TEXT).cycles >= lazy.run(TEXT).cycles


class TestInputValidation:
    def test_symbols_out_of_alphabet_rejected(self, mod3_dfa):
        engine = EnumerativeEngine(mod3_dfa, n_segments=2)
        with pytest.raises(ValueError, match="alphabet"):
            engine.run([0, 1, 7])

    def test_negative_symbols_rejected(self, mod3_dfa):
        engine = EnumerativeEngine(mod3_dfa, n_segments=2)
        with pytest.raises(ValueError, match="alphabet"):
            engine.run(np.array([0, -1]))

    def test_bad_start_state_rejected(self, mod3_dfa):
        engine = EnumerativeEngine(mod3_dfa, n_segments=2)
        with pytest.raises(ValueError, match="start state"):
            engine.run([0, 1], start_state=9)

    def test_empty_input_ok(self, small_ruleset_dfa):
        for engine in engines_under(APConfig(), small_ruleset_dfa):
            result = engine.run(b"")
            assert result.final_state == small_ruleset_dfa.start
