"""Unit tests for the vectorized software kernels (repro.kernels)."""

import numpy as np
import pytest

from repro.automata.builders import cycle_dfa, random_dfa
from repro.automata.dfa import Dfa
from repro.core.partition import StatePartition
from repro.engines.base import even_boundaries, stack_segments
from repro.kernels import (
    BACKENDS,
    KERNEL_BACKENDS,
    BitsetTables,
    resolve_backend,
    run_segments_batch,
)
from repro.kernels.bitset import pack_bool, unpack_words
from repro.software import (
    dfa_fingerprint,
    run_segment,
    segment_pool,
    software_cse_scan,
)


def assert_functions_equal(a, b):
    """Bit-identical SegmentFunction comparison."""
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert oa.converged == ob.converged
        assert oa.state == ob.state
        assert oa.states.dtype == np.int64
        assert ob.states.dtype == np.int64
        assert np.array_equal(oa.states, ob.states)
    assert np.array_equal(a.cs_of_state, b.cs_of_state)


def check_backends_match_python(dfa, partition, segments):
    reference = [run_segment(dfa, partition, s)[0] for s in segments]
    for backend in KERNEL_BACKENDS:
        functions = run_segments_batch(dfa, partition, segments, backend=backend)
        assert len(functions) == len(reference)
        for ref, fn in zip(reference, functions):
            assert_functions_equal(ref, fn)


class TestPacking:
    def test_roundtrip(self, rng):
        bits = rng.random((6, 70)) > 0.5
        words = pack_bool(bits)
        assert words.dtype == np.uint64
        assert words.shape == (6, 2)
        assert np.array_equal(unpack_words(words, 70), bits)

    def test_single_word(self):
        bits = np.zeros(3, dtype=bool)
        bits[1] = True
        words = pack_bool(bits)
        assert words.shape == (1,)
        assert int(words[0]) == 2


class TestBitsetTables:
    def test_step_matches_set_step(self, small_ruleset_dfa, rng):
        dfa = small_ruleset_dfa
        tables = BitsetTables(dfa)
        states = np.unique(rng.integers(0, dfa.num_states, size=5))
        mask = tables.mask_from_states(states)
        for sym in (ord("c"), ord("a"), ord("x")):
            nxt, sizes = tables.step_masks(
                mask[None, :], np.asarray([sym])
            )
            want = dfa.set_step(states.astype(np.int64), sym)
            got = tables.states_from_mask(nxt[0])
            assert got.tolist() == want.tolist()
            assert int(sizes[0]) == want.size
            mask, states = nxt[0], want


class TestBatchEquivalence:
    def test_trivial_partition(self, small_ruleset_dfa, rng):
        segments = [rng.integers(97, 123, size=n) for n in (80, 80, 79, 79)]
        partition = StatePartition.trivial(small_ruleset_dfa.num_states)
        check_backends_match_python(small_ruleset_dfa, partition, segments)

    def test_discrete_partition(self, random_dfa_8, rng):
        segments = [rng.integers(0, 4, size=25) for _ in range(5)]
        check_backends_match_python(
            random_dfa_8, StatePartition.discrete(8), segments
        )

    def test_mixed_partition(self, random_dfa_8, rng):
        segments = [rng.integers(0, 4, size=30) for _ in range(4)]
        partition = StatePartition.from_labels([0, 0, 1, 2, 2, 2, 3, 3])
        check_backends_match_python(random_dfa_8, partition, segments)

    def test_permutation_never_converges(self, rng):
        dfa = cycle_dfa(7)
        segments = [rng.integers(0, 2, size=40) for _ in range(3)]
        partition = StatePartition.trivial(7)
        functions = run_segments_batch(dfa, partition, segments, "lockstep")
        assert all(not fn.outcomes[0].converged for fn in functions)
        check_backends_match_python(dfa, partition, segments)

    def test_empty_segment(self, random_dfa_8, rng):
        segments = [np.empty(0, dtype=np.int64), rng.integers(0, 4, size=9)]
        partition = StatePartition.from_labels([0, 0, 1, 1, 2, 2, 3, 3])
        check_backends_match_python(random_dfa_8, partition, segments)

    def test_single_state_dfa(self, rng):
        dfa = Dfa(np.zeros((3, 1), dtype=np.int32), 0, [0])
        segments = [rng.integers(0, 3, size=12)]
        check_backends_match_python(dfa, StatePartition.trivial(1), segments)

    def test_all_dead_sink_segment(self):
        # symbol 1 sends every state to the absorbing sink 2
        table = np.array([[1, 2, 2], [2, 2, 2]], dtype=np.int32)
        dfa = Dfa(table, 0, [1])
        segments = [np.array([1, 1, 1, 1])]
        partition = StatePartition.trivial(3)
        check_backends_match_python(dfa, partition, segments)
        functions = run_segments_batch(dfa, partition, segments, "bitset")
        assert functions[0].outcomes[0].converged
        assert functions[0].outcomes[0].state == 2

    def test_no_segments(self, random_dfa_8):
        partition = StatePartition.trivial(8)
        assert run_segments_batch(random_dfa_8, partition, [], "lockstep") == []

    def test_rejects_python_backend(self, random_dfa_8):
        with pytest.raises(ValueError):
            run_segments_batch(
                random_dfa_8, StatePartition.trivial(8), [np.array([0])], "python"
            )


class TestDenseKernel:
    def test_state_dtype_narrowing(self):
        from repro.kernels import dense_state_dtype

        assert dense_state_dtype(2) == np.uint8
        assert dense_state_dtype(256) == np.uint8
        assert dense_state_dtype(257) == np.uint16
        assert dense_state_dtype(1 << 16) == np.uint16
        assert dense_state_dtype((1 << 16) + 1) == np.int64

    def test_tables_narrow_and_roundtrip(self, random_dfa_8):
        from repro.kernels import DenseTables

        tables = DenseTables(random_dfa_8)
        assert tables.dtype == np.uint8
        assert tables.table.dtype == np.uint8
        assert np.array_equal(
            tables.table.astype(np.int64),
            random_dfa_8.transitions.astype(np.int64).ravel(),
        )
        assert tables.offsets.dtype == np.int64
        assert tables.nbytes == tables.table.nbytes + tables.offsets.nbytes

    @pytest.mark.parametrize("stride", [1, 7, 64, None])
    def test_stride_never_changes_outcomes(self, random_dfa_8, rng, stride):
        segments = [rng.integers(0, 4, size=n) for n in (90, 41, 7, 0)]
        partition = StatePartition.from_labels([0, 0, 1, 2, 2, 2, 3, 3])
        reference = [run_segment(random_dfa_8, partition, s)[0]
                     for s in segments]
        functions = run_segments_batch(
            random_dfa_8, partition, segments, backend="dense", stride=stride
        )
        for ref, fn in zip(reference, functions):
            assert_functions_equal(ref, fn)

    def test_invalid_stride_rejected(self, random_dfa_8):
        from repro.kernels.dense import run_segments_dense

        with pytest.raises(ValueError):
            run_segments_dense(
                random_dfa_8, StatePartition.trivial(8),
                [np.array([0])], stride=0,
            )

    def test_uniform_segment_degrades(self):
        # symbol 1 is absorbing: the whole frontier collapses to the sink,
        # after which the segment leaves the dense gather
        from repro.kernels.dense import run_segments_dense

        table = np.array([[1, 2, 0], [2, 2, 2]], dtype=np.int32)
        dfa = Dfa(table, 0, [1])
        partition = StatePartition.from_labels([0, 0, 1])
        segment = np.array([1] + [0] * 200, dtype=np.int64)
        grid, stats = run_segments_dense(
            dfa, partition, [segment], stride=1
        )
        assert stats["degraded_segments"] == 1
        assert stats["dense_positions"] < segment.size
        assert all(o.converged for o in grid[0])
        want, _ = run_segment(dfa, partition, segment)
        for got, ref in zip(grid[0], want.outcomes):
            assert got.state == ref.state
            assert np.array_equal(got.states, ref.states)

    def test_adaptive_stride_checks_less_than_every_position(self, rng):
        from repro.kernels.dense import run_segments_dense

        dfa = cycle_dfa(7)  # permutation: never converges, stride grows
        segments = [rng.integers(0, 2, size=4000)]
        _, stats = run_segments_dense(
            dfa, StatePartition.trivial(7), segments
        )
        assert stats["stride_checks"] < stats["positions"] // 8


class TestFlatSetFlowsShortCircuit:
    def test_full_collapse_empties_pool(self):
        from repro.kernels.lockstep import FlatSetFlows

        # symbol 0 maps everything to state 1: both flows collapse at once
        table = np.array([[1, 1, 1, 1]], dtype=np.int32)
        flat = table.astype(np.int64).ravel()
        blocks = [np.array([0, 1], dtype=np.int64),
                  np.array([2, 3], dtype=np.int64)]
        flows = FlatSetFlows(flat, blocks, np.array([0, 1], dtype=np.int64), 1)
        assert flows.n_flows == 2
        col_off = np.zeros(1, dtype=np.int64)
        collapsed = flows.step(col_off)
        assert sorted(c[0] for c in collapsed) == [1, 1]
        assert flows.n_flows == 0
        assert flows.members.size == 0
        assert flows.starts.size == 0
        # the empty pool keeps stepping as a no-op
        assert flows.step(col_off) == []
        assert flows.final_outcomes() == []


class TestStackSegments:
    def test_ragged_padding(self):
        matrix, lengths = stack_segments(
            [np.array([1, 2, 3]), np.array([4, 5]), np.array([], dtype=np.int64)]
        )
        assert matrix.shape == (3, 3)
        assert lengths.tolist() == [3, 2, 0]
        assert matrix[0].tolist() == [1, 2, 3]
        assert matrix[1].tolist() == [4, 5, 0]

    def test_empty(self):
        matrix, lengths = stack_segments([])
        assert matrix.shape == (0, 0)
        assert lengths.size == 0


class TestResolveBackend:
    def test_explicit_passthrough(self, random_dfa_8):
        from repro.kernels import native_available

        for backend in BACKENDS:
            expected = backend
            if backend == "native" and not native_available():
                # the compiled tier is optional: an explicit request on a
                # toolchain-less host degrades to the dense kernel
                expected = "dense"
            assert resolve_backend(random_dfa_8, backend) == expected

    def test_unknown_rejected(self, random_dfa_8):
        with pytest.raises(ValueError):
            resolve_backend(random_dfa_8, "simd")

    def test_trivial_partition_resolves_interpreted(self, rng):
        # regression pinned by BENCH_software_kernels.json: random64 with
        # the trivial partition ran the lockstep kernel at 0.33x vs the
        # interpreter.  One block gives the kernels nothing to batch, so
        # trivial (and absent) partitions must resolve to "python".
        dfa = random_dfa(64, 8, rng)
        trivial = StatePartition.trivial(64)
        assert resolve_backend(dfa, None, trivial, 16) == "python"
        assert resolve_backend(dfa, "auto", trivial, 16) == "python"
        assert resolve_backend(dfa, "auto", None, 16) == "python"

    def test_wide_sets_pick_dense_below_crossover(self, rng):
        from repro.kernels import native_available

        dfa = random_dfa(64, 8, rng)
        partition = StatePartition.from_labels([i % 2 for i in range(64)])
        expected = "native" if native_available() else "dense"
        assert resolve_backend(dfa, None, partition, 16) == expected

    def test_wide_sets_pick_lockstep_above_crossover(self, rng):
        from repro.kernels import DENSE_MAX_STATES

        n = DENSE_MAX_STATES * 2
        dfa = random_dfa(n, 4, rng)
        partition = StatePartition.from_labels([i % 2 for i in range(n)])
        assert resolve_backend(dfa, None, partition, 16) == "lockstep"

    def test_many_flows_pick_dense(self, rng):
        from repro.kernels import native_available

        dfa = random_dfa(16, 4, rng)
        partition = StatePartition.discrete(16)
        expected = "native" if native_available() else "dense"
        assert resolve_backend(dfa, None, partition, 16) == expected

    def test_tiny_workload_stays_python(self, random_dfa_8):
        partition = StatePartition.from_labels([0, 0, 1, 1, 2, 2, 3, 3])
        assert resolve_backend(random_dfa_8, None, partition, 2) == "python"


class TestDtypeUnification:
    def test_block_arrays_int64(self):
        partition = StatePartition.from_labels([0, 1, 0, 1])
        assert all(b.dtype == np.int64 for b in partition.block_arrays())

    def test_python_run_segment_int64(self, random_dfa_8, rng):
        segment = rng.integers(0, 4, size=10)
        fn, _ = run_segment(random_dfa_8, StatePartition.trivial(8), segment)
        assert all(o.states.dtype == np.int64 for o in fn.outcomes)

    def test_execute_segment_int64(self, random_dfa_8, rng):
        from repro.core.transition import execute_segment

        fn, _ = execute_segment(
            random_dfa_8, StatePartition.trivial(8), rng.integers(0, 4, size=10)
        )
        assert all(o.states.dtype == np.int64 for o in fn.outcomes)

    def test_pool_keys_comparable_across_producers(self, random_dfa_8, rng):
        """software and core producers emit byte-identical flow keys."""
        from repro.core.transition import execute_segment

        segment = rng.integers(0, 4, size=10)
        partition = StatePartition.trivial(8)
        sw, _ = run_segment(random_dfa_8, partition, segment)
        core, _ = execute_segment(random_dfa_8, partition, segment)
        assert sw.outcomes[0].states.tobytes() == core.outcomes[0].states.tobytes()


class TestScanBackends:
    def test_final_state_all_backends(self, small_ruleset_dfa, rng):
        word = rng.integers(97, 123, size=6_000)
        partition = StatePartition.trivial(small_ruleset_dfa.num_states)
        want = small_ruleset_dfa.run(word)
        for backend in BACKENDS + ("auto",):
            run = software_cse_scan(
                small_ruleset_dfa, word, partition, n_segments=8, backend=backend
            )
            assert run.final_state == want
            assert run.backend in BACKENDS

    def test_start_state(self, small_ruleset_dfa, rng):
        word = rng.integers(97, 123, size=3_000)
        partition = StatePartition.trivial(small_ruleset_dfa.num_states)
        run = software_cse_scan(
            small_ruleset_dfa, word, partition,
            n_segments=4, backend="lockstep", start_state=2,
        )
        assert run.final_state == small_ruleset_dfa.run(word, state=2)

    def test_verify_false_skips_oracle(self, small_ruleset_dfa, rng):
        word = rng.integers(97, 123, size=3_000)
        partition = StatePartition.trivial(small_ruleset_dfa.num_states)
        run = software_cse_scan(
            small_ruleset_dfa, word, partition,
            n_segments=4, backend="lockstep", verify=False,
        )
        assert run.sequential_seconds == 0.0
        assert run.final_state == small_ruleset_dfa.run(word)


class CountingDfa(Dfa):
    """Counts how many times the DFA itself crosses a pickle boundary."""

    pickles = 0

    def __reduce__(self):
        type(self).pickles += 1
        return (
            Dfa,
            (np.asarray(self.transitions), self.start, tuple(self.accepting)),
        )


class TestSegmentPool:
    def test_fingerprint_stable(self, random_dfa_8):
        clone = Dfa(
            np.asarray(random_dfa_8.transitions),
            random_dfa_8.start,
            random_dfa_8.accepting,
        )
        assert dfa_fingerprint(random_dfa_8) == dfa_fingerprint(clone)

    def test_pool_does_not_pickle_dfa_per_segment(self, rng):
        table = rng.integers(0, 6, size=(4, 6)).astype(np.int32)
        dfa = CountingDfa(table, 0, [1])
        word = rng.integers(0, 4, size=4_000)
        partition = StatePartition.trivial(6)
        CountingDfa.pickles = 0
        with segment_pool(dfa, 2) as executor:
            run = software_cse_scan(
                dfa, word, partition, n_segments=6, executor=executor
            )
        assert run.final_state == dfa.run(word)
        assert CountingDfa.pickles == 0

    def test_foreign_executor_still_works(self, rng):
        from concurrent.futures import ThreadPoolExecutor

        table = rng.integers(0, 6, size=(4, 6)).astype(np.int32)
        dfa = Dfa(table, 0, [1])
        word = rng.integers(0, 4, size=2_000)
        with ThreadPoolExecutor(2) as executor:
            run = software_cse_scan(
                dfa, word, StatePartition.trivial(6),
                n_segments=4, executor=executor, backend="lockstep",
            )
        assert run.final_state == dfa.run(word)

    def test_pool_with_kernel_backend(self, rng):
        table = rng.integers(0, 6, size=(4, 6)).astype(np.int32)
        dfa = Dfa(table, 0, [1])
        word = rng.integers(0, 4, size=3_000)
        with segment_pool(dfa, 2) as executor:
            run = software_cse_scan(
                dfa, word, StatePartition.trivial(6),
                n_segments=4, executor=executor, backend="bitset",
            )
        assert run.final_state == dfa.run(word)


class TestKernelSpeed:
    @pytest.mark.slow
    def test_lockstep_beats_python_on_enumerative_load(self, rng):
        """A miniature version of the BENCH acceptance configuration."""
        import time

        dfa = random_dfa(64, 16, rng)
        word = rng.integers(0, 16, size=200_000)
        bounds = even_boundaries(word.size, 16)[1:]
        segments = [word[a:b] for a, b in bounds]
        partition = StatePartition.discrete(64)
        begin = time.perf_counter()
        for segment in segments:
            run_segment(dfa, partition, segment)
        python_seconds = time.perf_counter() - begin
        begin = time.perf_counter()
        run_segments_batch(dfa, partition, segments, "lockstep")
        kernel_seconds = time.perf_counter() - begin
        assert kernel_seconds * 2 < python_seconds
