"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.store import load_partition


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("# comment line\ncat\ndog\nfi(sh|ne)\n\n")
    return str(path)


@pytest.fixture
def input_file(tmp_path):
    path = tmp_path / "input.bin"
    path.write_bytes(b"the cat chased a fish past the dog " * 40)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_args(self):
        args = build_parser().parse_args(["compile", "rules.txt"])
        assert args.command == "compile"

    def test_run_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "r", "i", "--engine", "magic"])


class TestCompile:
    def test_compile_prints_size(self, rules_file, capsys):
        assert main(["compile", rules_file]) == 0
        out = capsys.readouterr().out
        assert "3 rules" in out
        assert "states" in out

    def test_compile_empty_rules(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing\n")
        with pytest.raises(SystemExit):
            main(["compile", str(empty)])


class TestProfile:
    def test_profile_and_save(self, rules_file, tmp_path, capsys):
        out_path = tmp_path / "sets.json"
        code = main([
            "profile", rules_file,
            "--inputs", "50", "--length", "60",
            "--symbol-low", "97", "--symbol-high", "122",
            "-o", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "convergence sets" in out
        partition = load_partition(out_path)
        assert partition.num_blocks >= 1


class TestRun:
    @pytest.mark.parametrize("engine", ["sequential", "enumerative", "lbe",
                                        "pap", "cse"])
    def test_run_each_engine(self, rules_file, input_file, engine, capsys):
        code = main([
            "run", rules_file, input_file,
            "--engine", engine, "--segments", "4",
            "--symbol-low", "97", "--symbol-high", "122",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final state" in out
        assert "speedup" in out

    def test_run_with_saved_partition(self, rules_file, input_file, tmp_path,
                                      capsys):
        sets_path = tmp_path / "sets.json"
        main(["profile", rules_file, "--inputs", "40", "--length", "50",
              "--symbol-low", "97", "--symbol-high", "122",
              "-o", str(sets_path)])
        capsys.readouterr()
        code = main([
            "run", rules_file, input_file,
            "--engine", "cse", "--segments", "4",
            "--partition", str(sets_path),
        ])
        assert code == 0
        assert "CSE" in capsys.readouterr().out

    def test_run_prints_reports(self, rules_file, input_file, capsys):
        main(["run", rules_file, input_file, "--engine", "sequential",
              "--reports", "3"])
        out = capsys.readouterr().out
        assert "reports" in out
        assert "offset" in out


class TestFigures:
    def test_table2_no_computation(self, capsys):
        assert main(["figures", "table2"]) == 0
        out = capsys.readouterr().out
        assert "CSE" in out and "set FSM" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])


ANML_SAMPLE = """
<automata-network id="net">
  <state-transition-element id="q_a" symbol-set="[a]"
                            start-of-data="all-input">
    <activate-on-match element="q_b"/>
  </state-transition-element>
  <state-transition-element id="q_b" symbol-set="[b]">
    <report-on-match/>
  </state-transition-element>
</automata-network>
"""


class TestAnml:
    def test_report_size(self, tmp_path, capsys):
        anml = tmp_path / "net.anml"
        anml.write_text(ANML_SAMPLE)
        assert main(["anml", str(anml)]) == 0
        assert "states" in capsys.readouterr().out

    def test_scan_input(self, tmp_path, capsys):
        anml = tmp_path / "net.anml"
        anml.write_text(ANML_SAMPLE)
        data = tmp_path / "input.bin"
        data.write_bytes(b"xxabyyab")
        assert main(["anml", str(anml), "--input", str(data)]) == 0
        out = capsys.readouterr().out
        assert "2 report events" in out


class TestSoftware:
    @pytest.mark.parametrize("backend", ["python", "lockstep", "bitset", "dense",
                                         "native", "prefilter", "auto"])
    def test_each_backend(self, rules_file, input_file, backend, capsys):
        code = main([
            "software", rules_file, input_file,
            "--backend", backend, "--segments", "4", "--trivial",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend:" in out
        assert "final state" in out
        assert "work speedup" in out

    def test_profiled_partition(self, rules_file, input_file, capsys):
        code = main([
            "software", rules_file, input_file,
            "--segments", "4",
            "--symbol-low", "97", "--symbol-high", "122",
        ])
        assert code == 0
        assert "convergence sets" in capsys.readouterr().out

    def test_saved_partition(self, rules_file, input_file, tmp_path, capsys):
        sets_path = tmp_path / "sets.json"
        main(["profile", rules_file, "--inputs", "40", "--length", "50",
              "--symbol-low", "97", "--symbol-high", "122",
              "-o", str(sets_path)])
        capsys.readouterr()
        code = main([
            "software", rules_file, input_file,
            "--segments", "4", "--partition", str(sets_path),
            "--backend", "lockstep",
        ])
        assert code == 0
        assert "backend: lockstep" in capsys.readouterr().out

    @pytest.mark.slow
    def test_process_pool(self, rules_file, input_file, capsys):
        code = main([
            "software", rules_file, input_file,
            "--segments", "4", "--trivial", "--processes", "2",
        ])
        assert code == 0
        assert "final state" in capsys.readouterr().out

    def test_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["software", "r", "i", "--backend", "simd"])


class TestPlan:
    def test_recommends_allocation(self, rules_file, capsys):
        code = main([
            "plan", rules_file,
            "--inputs", "40", "--length", "80",
            "--symbol-low", "97", "--symbol-high", "122",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended allocation" in out
        assert "predicted speedup" in out
