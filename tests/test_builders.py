"""Unit tests for DFA builders."""

import numpy as np
import pytest

from repro.automata.builders import (
    convergent_random_dfa,
    cycle_dfa,
    literal_matcher_dfa,
    random_dfa,
)


class TestRandomDfa:
    def test_shape_and_validity(self, rng):
        dfa = random_dfa(10, 4, rng)
        assert dfa.num_states == 10
        assert dfa.alphabet_size == 4
        assert dfa.transitions.min() >= 0
        assert dfa.transitions.max() < 10

    def test_deterministic_given_rng_state(self):
        d1 = random_dfa(10, 4, np.random.default_rng(7))
        d2 = random_dfa(10, 4, np.random.default_rng(7))
        assert d1 == d2

    def test_accepting_fraction(self, rng):
        dfa = random_dfa(20, 2, rng, accepting_fraction=0.5)
        assert len(dfa.accepting) == 10

    def test_at_least_one_accepting(self, rng):
        dfa = random_dfa(10, 2, rng, accepting_fraction=0.0)
        assert len(dfa.accepting) == 1

    def test_rejects_zero_states(self, rng):
        with pytest.raises(ValueError):
            random_dfa(0, 2, rng)


class TestConvergentRandomDfa:
    def test_locality_respected(self, rng):
        dfa = convergent_random_dfa(20, 3, rng, locality=2)
        base = np.arange(20)
        for c in range(3):
            diff = (dfa.transitions[c] - base) % 20
            # all offsets within [-2, 2] mod 20
            assert all(d in (0, 1, 2, 18, 19) for d in diff.tolist())

    def test_converges_slower_than_uniform(self, rng):
        """Sanity on the generator's purpose: local DFAs keep larger sets."""
        n, word_len = 40, 30
        word = rng.integers(0, 2, size=word_len)
        local = convergent_random_dfa(n, 2, np.random.default_rng(3), locality=1)
        uniform = random_dfa(n, 2, np.random.default_rng(3))
        all_states = np.arange(n, dtype=np.int32)
        local_final = local.set_run(all_states, word)
        uniform_final = uniform.set_run(all_states, word)
        assert local_final.size >= uniform_final.size


class TestCycleDfa:
    def test_rotation_structure(self):
        dfa = cycle_dfa(5)
        assert dfa.step(0, 0) == 1
        assert dfa.step(4, 0) == 0
        assert dfa.step(2, 1) == 2  # hold

    def test_never_converges(self):
        dfa = cycle_dfa(6, 2)
        states = np.arange(6, dtype=np.int32)
        final = dfa.set_run(states, [0, 1, 0, 0, 1])
        assert final.size == 6


class TestLiteralMatcher:
    def test_finds_all_occurrences(self):
        dfa = literal_matcher_dfa([ord(c) for c in "aba"], 256)
        reports = dfa.run_reports(b"ababa")
        # 'aba' ends at 2; sink absorbs afterwards so later offsets also report
        assert reports[0][0] == 2

    def test_kmp_failure_links(self):
        # pattern 'aab': after 'aaa' we must still be 2 deep
        dfa = literal_matcher_dfa([ord("a"), ord("a"), ord("b")], 256)
        state = dfa.run(b"aaa")
        assert dfa.run(b"b", state=state) in dfa.accepting

    def test_no_match(self):
        dfa = literal_matcher_dfa([ord("x")], 256)
        assert not dfa.matches_anywhere(b"abc")

    def test_rejects_empty_pattern(self):
        with pytest.raises(ValueError):
            literal_matcher_dfa([], 256)

    def test_rejects_out_of_alphabet(self):
        with pytest.raises(ValueError):
            literal_matcher_dfa([300], 256)

    def test_matches_python_find(self, rng):
        """Oracle: matches_anywhere == substring containment."""
        for _ in range(20):
            pattern = rng.integers(0, 3, size=int(rng.integers(1, 5))).tolist()
            text = rng.integers(0, 3, size=30).tolist()
            dfa = literal_matcher_dfa(pattern, 3)
            p_str = "".join(map(str, pattern))
            t_str = "".join(map(str, text))
            assert dfa.matches_anywhere(text) == (p_str in t_str)
