"""Unit tests for the dense DFA core."""

import numpy as np
import pytest

from repro.automata.dfa import Dfa, as_symbols


class TestConstruction:
    def test_basic_properties(self, mod3_dfa):
        assert mod3_dfa.num_states == 3
        assert mod3_dfa.alphabet_size == 2
        assert mod3_dfa.start == 0
        assert mod3_dfa.accepting == frozenset([0])

    def test_accepting_mask_matches_set(self, mod3_dfa):
        assert mod3_dfa.accepting_mask.tolist() == [True, False, False]

    def test_rejects_bad_transition_target(self):
        table = np.array([[0, 5]], dtype=np.int32)  # 5 out of range
        with pytest.raises(ValueError, match="out of range"):
            Dfa(table, 0, [])

    def test_rejects_bad_start(self):
        table = np.zeros((1, 2), dtype=np.int32)
        with pytest.raises(ValueError, match="start"):
            Dfa(table, 7, [])

    def test_rejects_bad_accepting(self):
        table = np.zeros((1, 2), dtype=np.int32)
        with pytest.raises(ValueError, match="accepting"):
            Dfa(table, 0, [9])

    def test_rejects_1d_table(self):
        with pytest.raises(ValueError, match="2-D"):
            Dfa(np.zeros(4, dtype=np.int32), 0, [])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Dfa(np.zeros((0, 3), dtype=np.int32), 0, [])

    def test_equality_and_hash(self, mod3_dfa):
        clone = Dfa(mod3_dfa.transitions.copy(), 0, [0])
        assert clone == mod3_dfa
        assert hash(clone) == hash(mod3_dfa)
        other = Dfa(mod3_dfa.transitions.copy(), 1, [0])
        assert other != mod3_dfa

    def test_from_transition_dict_self_default(self):
        dfa = Dfa.from_transition_dict(3, 2, {(0, 1): 2}, 0, [2])
        assert dfa.step(0, 1) == 2
        assert dfa.step(1, 0) == 1  # self-loop default
        assert dfa.step(2, 1) == 2

    def test_from_transition_dict_start_default(self):
        dfa = Dfa.from_transition_dict(3, 2, {(0, 1): 2}, 0, [2], default="start")
        assert dfa.step(1, 0) == 0
        assert dfa.step(2, 0) == 0


class TestExecution:
    def test_run_binary_counter(self, mod3_dfa):
        # reading bits of 6 (110) => 6 mod 3 == 0
        assert mod3_dfa.run([1, 1, 0]) == 0
        # 5 (101) => 2
        assert mod3_dfa.run([1, 0, 1]) == 2

    def test_run_from_explicit_state(self, mod3_dfa):
        assert mod3_dfa.run([0], state=1) == 2  # 2*1 mod 3

    def test_run_empty_input_is_identity(self, mod3_dfa):
        assert mod3_dfa.run([]) == mod3_dfa.start
        assert mod3_dfa.run([], state=2) == 2

    def test_run_trace_includes_start_and_all_steps(self, mod3_dfa):
        trace = mod3_dfa.run_trace([1, 1, 0])
        assert trace == [0, 1, 0, 0]

    def test_run_reports_fires_on_accepting(self, ab_matcher):
        # the literal matcher's accept state absorbs, so every offset from
        # the first match onward reports
        reports = ab_matcher.run_reports(b"xxabyab")
        offsets = [off for off, _state in reports]
        assert offsets == [3, 4, 5, 6]
        assert ab_matcher.run_reports(b"aaab")[0][0] == 3

    def test_accepts_and_matches_anywhere(self, ab_matcher):
        assert ab_matcher.matches_anywhere(b"zzzabzzz")
        assert not ab_matcher.matches_anywhere(b"zzzazbz")
        # 'accepts' = ends in accepting state; sink is absorbing here
        assert ab_matcher.accepts(b"ab")
        assert ab_matcher.accepts(b"abxxx")

    def test_run_all_states_matches_individual_runs(self, mod3_dfa):
        word = [1, 0, 1, 1, 0]
        finals = mod3_dfa.run_all_states(word)
        for q in range(3):
            assert finals[q] == mod3_dfa.run(word, state=q)

    def test_run_all_states_empty_input(self, mod3_dfa):
        finals = mod3_dfa.run_all_states([])
        assert finals.tolist() == [0, 1, 2]


class TestSetOperations:
    def test_set_step_is_image(self, mod3_dfa):
        result = mod3_dfa.set_step(np.array([0, 1, 2], dtype=np.int32), 0)
        # images: 0->0, 1->2, 2->1
        assert result.tolist() == [0, 1, 2]

    def test_set_run_shrinks_monotonically(self, ab_matcher):
        states = np.arange(ab_matcher.num_states, dtype=np.int32)
        _final, sizes = ab_matcher.set_run(states, b"abab", record_sizes=True)
        assert all(sizes[i + 1] <= sizes[i] for i in range(len(sizes) - 1))

    def test_set_run_matches_pointwise_union(self, random_dfa_8, rng):
        word = rng.integers(0, 4, size=20)
        states = np.array([0, 3, 5], dtype=np.int32)
        got = random_dfa_8.set_run(states, word)
        want = sorted({int(random_dfa_8.run(word, state=int(q))) for q in states})
        assert got.tolist() == want


class TestStructure:
    def test_reachable_states_full(self, mod3_dfa):
        assert mod3_dfa.reachable_states().tolist() == [0, 1, 2]

    def test_reachable_states_partial(self):
        # state 2 unreachable from 0
        table = np.array([[1, 0, 2]], dtype=np.int32)
        dfa = Dfa(table, 0, [])
        assert dfa.reachable_states().tolist() == [0, 1]

    def test_state_depths(self, ab_matcher):
        depths = ab_matcher.state_depths()
        assert depths[ab_matcher.start] == 0
        assert depths.max() == 2  # 'a' then 'b'

    def test_reverse_edges_count(self, mod3_dfa):
        rev = mod3_dfa.reverse_edges()
        assert sum(len(edges) for edges in rev) == 2 * 3  # all transitions

    def test_renumbered_preserves_language(self, mod3_dfa):
        permuted = mod3_dfa.renumbered([2, 0, 1])
        for word in ([1, 1, 0], [1, 0, 1], [], [0, 0, 0, 1]):
            assert permuted.accepts(word) == mod3_dfa.accepts(word)

    def test_renumbered_rejects_non_permutation(self, mod3_dfa):
        with pytest.raises(ValueError):
            mod3_dfa.renumbered([0, 0, 1])

    def test_restrict_alphabet(self, mod3_dfa):
        restricted = mod3_dfa.restrict_alphabet([1])
        assert restricted.alphabet_size == 1
        assert restricted.run([0, 0]) == mod3_dfa.run([1, 1])

    def test_iter_transitions_complete(self, mod3_dfa):
        triples = list(mod3_dfa.iter_transitions())
        assert len(triples) == 6
        assert (0, 1, 1) in triples


class TestAsSymbols:
    def test_bytes(self):
        assert as_symbols(b"ab").tolist() == [97, 98]

    def test_str_latin1(self):
        assert as_symbols("ab").tolist() == [97, 98]

    def test_list(self):
        assert as_symbols([1, 2, 3]).tolist() == [1, 2, 3]

    def test_ndarray_passthrough_dtype(self):
        arr = np.array([4, 5], dtype=np.int64)
        assert as_symbols(arr).dtype == np.int64
