"""End-to-end observability: hot-path instrumentation and pool merging.

Covers the acceptance surface of the telemetry layer:

- worker registries from ``segment_pool`` merge *exactly* into the
  parent (counters sum, spans keep worker pids) with ``max_workers>1``;
- the no-op recorder path leaves every functional output bit-identical
  to an uninstrumented run;
- engines, kernels, stream, and fleet record the documented series;
- the CLI ``--metrics-out`` / ``--trace-out`` / ``stats`` surface works.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.automata.builders import random_dfa
from repro.cli import main
from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.engines.enumerative import EnumerativeEngine
from repro.engines.sequential import SequentialEngine
from repro.kernels import run_segments_batch
from repro.software import segment_pool, software_cse_scan
from repro.stream import FleetScanner, StreamScanner


@pytest.fixture(autouse=True)
def _no_global_recorder():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def dfa(rng):
    return random_dfa(16, 8, rng)


@pytest.fixture
def word(rng):
    return rng.integers(0, 8, size=6000)


def functions_equal(a, b):
    return len(a.outcomes) == len(b.outcomes) and all(
        oa.converged == ob.converged
        and oa.state == ob.state
        and np.array_equal(oa.states, ob.states)
        for oa, ob in zip(a.outcomes, b.outcomes)
    )


class TestPoolMerge:
    """Cross-process aggregation from segment_pool workers is exact."""

    @pytest.mark.slow
    def test_counters_sum_exactly_across_workers(self, dfa, word):
        n_segments = 8
        registry = obs.enable()
        with segment_pool(dfa, max_workers=2) as pool:
            run = software_cse_scan(
                dfa, word, StatePartition.discrete(dfa.num_states),
                n_segments=n_segments, executor=pool, backend="python",
            )
        # every enumerative segment ran in some worker; the merged
        # counters must account for each exactly once
        enum_symbols = word.size - (word.size // n_segments + (
            1 if word.size % n_segments else 0))
        assert registry.get("software_worker_segments_total").value == \
            n_segments - 1
        assert registry.get("software_worker_symbols_total").value == \
            enum_symbols
        # the python backend records one position per symbol walked
        positions = registry.get("kernels_positions_total", backend="python")
        assert positions.value == enum_symbols
        assert run.final_state == dfa.run(word)

    @pytest.mark.slow
    def test_worker_spans_carry_worker_pids(self, dfa, word):
        registry = obs.enable()
        with segment_pool(dfa, max_workers=2) as pool:
            software_cse_scan(
                dfa, word, StatePartition.trivial(dfa.num_states),
                n_segments=6, executor=pool, backend="lockstep",
            )
        seg_spans = [s for s in registry.spans if s.name == "software.segment"]
        assert len(seg_spans) == 6  # concrete + 5 enumerative
        worker_spans = [s for s in seg_spans if s.args.get("worker")]
        assert len(worker_spans) == 5
        assert {s.args["segment"] for s in worker_spans} == {1, 2, 3, 4, 5}
        # at least one span recorded outside the parent process
        import os
        assert any(s.pid != os.getpid() for s in worker_spans)

    @pytest.mark.slow
    def test_per_segment_reexec_counters_exported(self, dfa, word):
        registry = obs.enable()
        with segment_pool(dfa, max_workers=2) as pool:
            software_cse_scan(
                dfa, word, StatePartition.trivial(dfa.num_states),
                n_segments=4, executor=pool, backend="lockstep",
            )
        for segment in (1, 2, 3):
            counter = registry.get(
                "software_segment_reexec_total", segment=segment
            )
            assert counter is not None, f"segment {segment} series missing"
        total = sum(
            registry.get("software_segment_reexec_total", segment=s).value
            for s in (1, 2, 3)
        )
        assert registry.get("software_reexec_segments_total").value == total


class TestNoopBitIdentical:
    """Disabled instrumentation changes no functional output."""

    def test_software_scan_identical(self, dfa, word):
        partition = StatePartition.discrete(dfa.num_states)
        obs.disable()
        plain = software_cse_scan(dfa, word, partition, n_segments=8,
                                  backend="lockstep")
        with obs.using():
            instrumented = software_cse_scan(dfa, word, partition,
                                             n_segments=8, backend="lockstep")
        assert plain.final_state == instrumented.final_state
        assert plain.n_segments == instrumented.n_segments
        assert plain.reexec_segments == instrumented.reexec_segments
        assert plain.backend == instrumented.backend == "lockstep"

    @pytest.mark.parametrize("backend", ["lockstep", "bitset", "dense"])
    def test_kernel_outcomes_identical(self, dfa, word, backend):
        partition = StatePartition.discrete(dfa.num_states)
        segments = [word[:2000], word[2000:4000], word[4000:]]
        obs.disable()
        plain = run_segments_batch(dfa, partition, segments, backend=backend)
        with obs.using():
            instrumented = run_segments_batch(
                dfa, partition, segments, backend=backend
            )
        assert all(
            functions_equal(a, b) for a, b in zip(plain, instrumented)
        )

    def test_engine_run_identical(self, dfa, word):
        engine = CseEngine(dfa, n_segments=8)
        obs.disable()
        plain = engine.run(word)
        with obs.using():
            instrumented = engine.run(word)
        assert plain.final_state == instrumented.final_state
        assert plain.cycles == instrumented.cycles
        assert [s.r_trace for s in plain.segments] == \
            [s.r_trace for s in instrumented.segments]


class TestEngineInstrumentation:
    def test_run_records_span_and_counters(self, dfa, word):
        engine = EnumerativeEngine(dfa, n_segments=4)
        with obs.using() as registry:
            result = engine.run(word)
        spans = [s for s in registry.spans if s.name == "engine.run"]
        assert len(spans) == 1
        assert spans[0].args["engine"] == engine.name
        assert registry.get("engine_runs_total", engine=engine.name).value == 1
        assert registry.get(
            "engine_symbols_total", engine=engine.name
        ).value == word.size
        assert registry.get(
            "engine_cycles_total", engine=engine.name
        ).value == result.cycles
        assert registry.get(
            "engine_r0_total", engine=engine.name
        ).value == sum(result.r0_values())

    def test_nested_runs_not_double_counted(self, dfa, word):
        from repro.core.adaptive import AdaptiveCseEngine

        engine = AdaptiveCseEngine(dfa, n_segments=4)
        with obs.using() as registry:
            engine.run(word)
        # adaptive delegates to CseEngine.run on the same instance; the
        # reentrancy guard keeps that to one recorded run
        assert registry.get("engine_runs_total", engine=engine.name).value == 1

    def test_sequential_engine_instrumented(self, dfa, word):
        with obs.using() as registry:
            SequentialEngine(dfa).run(word)
        assert registry.get("engine_runs_total", engine="Baseline").value == 1


class TestStreamInstrumentation:
    def test_feed_records_chunks(self, dfa, rng):
        scanner = StreamScanner(dfa, backend="python")
        chunks = [rng.integers(0, 8, size=500) for _ in range(4)]
        obs.disable()
        for c in chunks:
            scanner.feed(c)
        plain_final = scanner.state
        scanner.reset()
        with obs.using() as registry:
            for c in chunks:
                scanner.feed(c)
        assert scanner.state == plain_final
        assert registry.get("stream_chunks_total").value == 4
        assert registry.get("stream_symbols_total").value == 2000
        hist = registry.get("stream_chunk_seconds")
        assert hist.count == 4
        assert len([s for s in registry.spans if s.name == "stream.feed"]) == 4

    def test_fleet_scan_gauges(self, rng):
        dfas = [random_dfa(8, 4, rng) for _ in range(3)]
        word = rng.integers(0, 4, size=400)
        fleet = FleetScanner(dfas, n_segments=4, backend="python")
        with obs.using() as registry:
            result = fleet.scan(word)
        for idx in range(3):
            gauge = registry.get("fleet_machine_throughput", fsm=idx)
            assert gauge is not None and gauge.touched
            assert gauge.value > 0
        assert registry.get("fleet_scans_total").value == 1
        assert len([s for s in registry.spans if s.name == "fleet.scan"]) == 1
        assert result.n_fsms == 3


class TestBackendRecording:
    def test_requested_backend_on_run(self, dfa, word):
        partition = StatePartition.discrete(dfa.num_states)
        run = software_cse_scan(dfa, word, partition, n_segments=8,
                                backend="auto")
        assert run.requested_backend == "auto"
        assert run.backend in (
            "python", "lockstep", "dense", "native", "prefilter"
        )

    def test_explicit_backend_passthrough(self, dfa, word):
        partition = StatePartition.trivial(dfa.num_states)
        run = software_cse_scan(dfa, word, partition, n_segments=8,
                                backend="bitset")
        assert run.requested_backend == "bitset"
        assert run.backend == "bitset"

    def test_resolution_counter(self, dfa):
        with obs.using() as registry:
            software_cse_scan(
                dfa, np.zeros(200, dtype=np.int64),
                StatePartition.discrete(dfa.num_states),
                n_segments=4, backend="auto",
            )
        resolved = [
            m for m in registry.snapshot()["metrics"]
            if m["name"] == "kernels_backend_resolved_total"
        ]
        assert len(resolved) == 1
        assert resolved[0]["labels"]["requested"] == "auto"
        assert resolved[0]["value"] == 1


class TestCliTelemetry:
    @pytest.fixture
    def rules_file(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text("cat\ndog\nfi(sh|ne)\n")
        return str(path)

    @pytest.fixture
    def input_file(self, tmp_path):
        path = tmp_path / "input.bin"
        path.write_bytes(b"the cat chased a fish past the dog " * 200)
        return str(path)

    def test_software_metrics_and_trace(self, rules_file, input_file,
                                        tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        code = main([
            "software", rules_file, input_file,
            "--backend", "lockstep", "--segments", "4", "--trivial",
            "--metrics-out", str(metrics), "--trace-out", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend: lockstep (requested: lockstep)" in out

        snap = json.loads(metrics.read_text())
        names = {m["name"] for m in snap["metrics"]}
        assert "software_scans_total" in names
        assert "software_segment_reexec_total" in names
        assert "kernels_batch_runs_total" in names

        events = json.loads(trace.read_text())["traceEvents"]
        seg_events = [e for e in events if e["name"] == "software.segment"]
        assert len(seg_events) == 4  # one span per segment

        # recorder is torn down after export
        assert not obs.is_enabled()

    def test_run_metrics_out(self, rules_file, input_file, tmp_path, capsys):
        metrics = tmp_path / "m.prom"
        code = main([
            "run", rules_file, input_file, "--engine", "enumerative",
            "--segments", "4", "--metrics-out", str(metrics),
        ])
        assert code == 0
        text = metrics.read_text()
        assert "# TYPE engine_runs_total counter" in text
        assert 'engine_runs_total{engine="Enumerative"} 1' in text

    def test_stats_pretty_print(self, rules_file, input_file, tmp_path,
                                capsys):
        metrics = tmp_path / "m.json"
        main([
            "software", rules_file, input_file,
            "--backend", "lockstep", "--segments", "4", "--trivial",
            "--metrics-out", str(metrics),
        ])
        capsys.readouterr()
        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "software_scans_total" in out
        assert "spans (" in out

    def test_stats_prom_format(self, rules_file, input_file, tmp_path,
                               capsys):
        metrics = tmp_path / "m.json"
        main([
            "software", rules_file, input_file,
            "--backend", "python", "--segments", "4", "--trivial",
            "--metrics-out", str(metrics),
        ])
        capsys.readouterr()
        assert main(["stats", str(metrics), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE software_scans_total counter" in out
