"""Compiler correctness: our DFA vs Python's `re` on the supported subset."""

import re

import numpy as np
import pytest

from repro.regex.compile import compile_pattern, compile_ruleset, pattern_to_nfa


def assert_fullmatch_agrees(pattern, strings):
    dfa = compile_pattern(pattern, mode="fullmatch")
    compiled = re.compile(pattern)
    for s in strings:
        got = dfa.accepts(s)
        want = compiled.fullmatch(s) is not None
        assert got == want, (pattern, s, got, want)


class TestFullmatchSemantics:
    def test_literal(self):
        assert_fullmatch_agrees("abc", ["abc", "ab", "abcd", "", "xbc"])

    def test_alternation(self):
        assert_fullmatch_agrees("ab|cd", ["ab", "cd", "abcd", "a", ""])

    def test_star(self):
        assert_fullmatch_agrees("a*b", ["b", "ab", "aaab", "ba", ""])

    def test_plus(self):
        assert_fullmatch_agrees("a+", ["", "a", "aa", "ab"])

    def test_question(self):
        assert_fullmatch_agrees("colou?r", ["color", "colour", "colouur"])

    def test_counted(self):
        assert_fullmatch_agrees("a{2,4}", ["a", "aa", "aaa", "aaaa", "aaaaa"])

    def test_counted_exact(self):
        assert_fullmatch_agrees("(ab){2}", ["abab", "ab", "ababab"])

    def test_counted_open(self):
        assert_fullmatch_agrees("a{3,}", ["aa", "aaa", "aaaaaa"])

    def test_class_and_range(self):
        assert_fullmatch_agrees("[a-cx]+", ["abc", "x", "axc", "d", ""])

    def test_negated_class(self):
        assert_fullmatch_agrees("[^ab]+", ["cd", "ca", "", "xyz"])

    def test_dot(self):
        assert_fullmatch_agrees("a.c", ["abc", "axc", "ac", "a\nc"])

    def test_nested_groups(self):
        assert_fullmatch_agrees("(a(b|c))+d", ["abd", "acd", "ababd", "ad", "abacd"])

    def test_digit_escape(self):
        assert_fullmatch_agrees(r"\d{2}-\d{2}", ["12-34", "1-23", "ab-cd"])

    def test_word_escape(self):
        assert_fullmatch_agrees(r"\w+", ["abc_123", "a b", ""])

    def test_empty_pattern_matches_empty(self):
        dfa = compile_pattern("", mode="fullmatch")
        assert dfa.accepts("")
        assert not dfa.accepts("a")

    def test_repeat_zero(self):
        assert_fullmatch_agrees("a{0}b", ["b", "ab"])

    @pytest.mark.parametrize(
        "pattern",
        ["ab(c|d)*e", "x[0-9]{1,3}y", "(foo|bar|baz)+", "a?b?c?d?", "[a-f]*z{2}"],
    )
    def test_random_strings(self, pattern, rng):
        alphabet = "abcdefxyz0123459"
        strings = [
            "".join(
                alphabet[int(i)]
                for i in rng.integers(0, len(alphabet), int(rng.integers(0, 10)))
            )
            for _ in range(200)
        ]
        assert_fullmatch_agrees(pattern, strings)


class TestSearchSemantics:
    def test_reports_match_re_finditer_ends(self):
        """Scan-DFA reports must be exactly re's match end offsets.

        For patterns without overlapping self-matches, every position where
        some match *ends* is an accepting offset of the scan DFA.
        """
        pattern = "ab+c"
        dfa = compile_pattern(pattern, mode="search")
        text = "xxabcyyabbbczzabc"
        got = {off for off, _ in dfa.run_reports(text)}
        # ends of all matches (including overlapping prefixes of longer ones)
        want = set()
        compiled = re.compile(pattern)
        for end in range(1, len(text) + 1):
            for start in range(end):
                if compiled.fullmatch(text, start, end):
                    want.add(end - 1)
                    break
        assert got == want

    def test_anchored_start_pattern(self):
        dfa = compile_pattern("^abc", mode="search")
        assert dfa.matches_anywhere("abcxx")
        assert not dfa.matches_anywhere("xabc")

    def test_search_finds_anywhere(self):
        dfa = compile_pattern("needle", mode="search")
        assert dfa.matches_anywhere("hay needle stack")
        assert not dfa.matches_anywhere("haystack")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            pattern_to_nfa("a", mode="nonsense")


class TestRuleset:
    def test_reports_union_of_patterns(self):
        dfa = compile_ruleset(["cat", "dog"])
        text = "the cat saw a dog"
        offsets = {off for off, _ in dfa.run_reports(text)}
        assert offsets == {6, 16}

    def test_accepting_states_not_absorbing(self):
        dfa = compile_ruleset(["ab"])
        reports = dfa.run_reports("abxab")
        assert [off for off, _ in reports] == [1, 4]

    def test_single_pattern_ruleset(self):
        dfa = compile_ruleset(["xyz"])
        assert dfa.matches_anywhere("wxyz")

    def test_empty_ruleset_rejected(self):
        with pytest.raises(ValueError):
            compile_ruleset([])

    def test_minimize_flag(self):
        raw = compile_ruleset(["abc", "abd"], minimize=False)
        small = compile_ruleset(["abc", "abd"], minimize=True)
        assert small.num_states <= raw.num_states

    def test_ruleset_equals_individual_scan(self, rng):
        """Multi-pattern DFA reports = union of single-pattern reports."""
        patterns = ["ab", "bc", "ca+b"]
        combined = compile_ruleset(patterns)
        singles = [compile_ruleset([p]) for p in patterns]
        text = "".join("abc"[int(i)] for i in rng.integers(0, 3, 60))
        combined_offsets = {off for off, _ in combined.run_reports(text)}
        single_offsets = set()
        for dfa in singles:
            single_offsets.update(off for off, _ in dfa.run_reports(text))
        assert combined_offsets == single_offsets


class TestAlphabetClipping:
    def test_small_alphabet(self):
        dfa = compile_pattern("[ab]+", alphabet_size=128, mode="fullmatch")
        assert dfa.alphabet_size == 128
        assert dfa.accepts(b"ab")

    def test_class_outside_alphabet_rejected(self):
        with pytest.raises(ValueError, match="alphabet_size"):
            compile_pattern("\xff", alphabet_size=128)
