"""Unit tests for the CSE + lookback hybrid engine."""

import numpy as np
import pytest

from repro.automata.builders import cycle_dfa, random_dfa
from repro.core.hybrid import HybridCseEngine
from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.core.profiling import ProfilingConfig
from repro.regex.compile import compile_ruleset

TEXT = (b"the cat chased a fish while the dog slept in gray hot weather ") * 30

PROFILE = ProfilingConfig(n_inputs=60, input_len=120, symbol_low=97,
                          symbol_high=122)


class TestCorrectness:
    def test_matches_sequential(self, small_ruleset_dfa):
        engine = HybridCseEngine(small_ruleset_dfa, lookback=15,
                                 n_segments=8, profiling=PROFILE)
        assert engine.run(TEXT).final_state == small_ruleset_dfa.run(TEXT)

    def test_matches_under_divergence(self, rng):
        dfa = cycle_dfa(6)
        engine = HybridCseEngine(dfa, lookback=5, n_segments=4,
                                 partition=StatePartition.trivial(6))
        word = rng.integers(0, 2, size=100)
        result = engine.run(word)
        assert result.final_state == dfa.run(word)

    def test_random_dfas_all_partitions(self, rng):
        for trial in range(8):
            local = np.random.default_rng(trial + 400)
            dfa = random_dfa(10, 3, local)
            partition = StatePartition.from_labels(
                local.integers(0, 3, size=10).tolist()
            )
            engine = HybridCseEngine(dfa, lookback=int(local.integers(0, 10)),
                                     n_segments=4, partition=partition)
            word = local.integers(0, 3, size=160)
            assert engine.run(word).final_state == dfa.run(word), trial

    def test_zero_lookback_equals_cse(self, small_ruleset_dfa, rng):
        """L = 0 means no pruning: identical flow behaviour to plain CSE."""
        partition = StatePartition.trivial(small_ruleset_dfa.num_states)
        hybrid = HybridCseEngine(small_ruleset_dfa, lookback=0,
                                 n_segments=4, partition=partition)
        plain = CseEngine(small_ruleset_dfa, n_segments=4,
                          partition=partition)
        word = rng.integers(97, 123, size=800)
        h, p = hybrid.run(word), plain.run(word)
        assert h.final_state == p.final_state
        assert h.r0_mean == p.r0_mean

    def test_rejects_negative_lookback(self, small_ruleset_dfa):
        with pytest.raises(ValueError):
            HybridCseEngine(small_ruleset_dfa, lookback=-1,
                            partition=StatePartition.trivial(
                                small_ruleset_dfa.num_states))


class TestPruning:
    def _multi_set_dfa(self):
        """An FSM whose predicted partition has several blocks."""
        return compile_ruleset(["^(..)*abc", "^(...)*xy"])

    def test_pruning_reduces_flows(self, rng):
        dfa = self._multi_set_dfa()
        # discrete partition: every state its own set -> max pruning room
        partition = StatePartition.discrete(dfa.num_states)
        word = rng.integers(97, 123, size=1600)
        hybrid = HybridCseEngine(dfa, lookback=20, n_segments=8,
                                 partition=partition)
        plain = CseEngine(dfa, n_segments=8, partition=partition)
        h, p = hybrid.run(word), plain.run(word)
        assert h.final_state == p.final_state
        assert h.r0_mean <= p.r0_mean
        assert h.details["pruned_sets"] > 0

    def test_pruned_sets_counted(self, small_ruleset_dfa, rng):
        partition = StatePartition.discrete(small_ruleset_dfa.num_states)
        engine = HybridCseEngine(small_ruleset_dfa, lookback=30,
                                 n_segments=4, partition=partition)
        word = rng.integers(97, 123, size=800)
        result = engine.run(word)
        assert result.details["pruned_sets"] >= 0
        assert result.details["lookback"] == 30

    def test_report_recovery_still_works(self, small_ruleset_dfa, rng):
        engine = HybridCseEngine(small_ruleset_dfa, lookback=15,
                                 n_segments=4, profiling=PROFILE)
        word = rng.integers(97, 123, size=600)
        _, recovered = engine.run_with_reports(word)
        assert recovered.reports == small_ruleset_dfa.run_reports(word)
