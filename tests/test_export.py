"""Unit tests for the JSON results export layer."""

import pytest

from repro.analysis.export import (
    FORMAT_VERSION,
    diff_results,
    load_results,
    save_results,
)


class TestDiffResults:
    def test_identical_no_drift(self):
        data = {"a": {"x": 1.0, "y": [1, 2]}, "b": "text"}
        assert diff_results(data, data) == {}

    def test_numeric_within_tolerance(self):
        a = {"v": 100.0}
        b = {"v": 101.0}
        assert diff_results(a, b, rel_tolerance=0.02) == {}
        assert diff_results(a, b, rel_tolerance=0.005) != {}

    def test_missing_key_detected(self):
        drifts = diff_results({"a": 1}, {"a": 1, "b": 2})
        assert any("missing in expected" in v for v in drifts.values())
        drifts = diff_results({"a": 1, "b": 2}, {"a": 1})
        assert any("missing in actual" in v for v in drifts.values())

    def test_string_change_detected(self):
        drifts = diff_results({"s": "x"}, {"s": "y"})
        assert "results.s" in drifts

    def test_list_length_change_detected(self):
        drifts = diff_results({"l": [1, 2]}, {"l": [1]})
        assert "results.l" in drifts

    def test_nested_paths_reported(self):
        drifts = diff_results({"a": {"b": [{"c": 1.0}]}},
                              {"a": {"b": [{"c": 9.0}]}})
        assert "results.a.b[0].c" in drifts

    def test_bool_compared_exactly(self):
        # bools are ints in Python; ensure they are not tolerance-compared
        drifts = diff_results({"f": True}, {"f": False})
        assert drifts


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        data = {"version": FORMAT_VERSION, "x": [1, 2.5, "a"]}
        path = tmp_path / "results.json"
        save_results(data, path)
        assert load_results(path) == data

    def test_version_guard(self, tmp_path):
        path = tmp_path / "results.json"
        save_results({"version": 99}, path)
        with pytest.raises(ValueError, match="version"):
            load_results(path)
