"""Pillar 2 tests: every lint rule fires on its fixture and only there.

Each rule is exercised through :func:`lint_source` with a ``path`` chosen
to trigger (or dodge) the module-scoped rules, plus the inline
``# repro: noqa(...)`` suppression contract.
"""

from __future__ import annotations

import textwrap

from repro.check import lint_source

HOT = "src/repro/kernels/fixture.py"
COLD = "src/repro/obs/fixture.py"
POOL = "src/repro/software.py"
ENGINE_BASE = "src/repro/engines/base.py"


def codes(source, path=COLD, **kw):
    return [d.code for d in lint_source(textwrap.dedent(source), path, **kw)]


# ----------------------------------------------------------------------
# R100: unparseable files are a finding, not a crash
# ----------------------------------------------------------------------
def test_syntax_error_is_r100():
    diags = lint_source("def f(:\n", path="broken.py")
    assert [d.code for d in diags] == ["R100"]
    assert diags[0].severity == "error"
    assert diags[0].line == 1


# ----------------------------------------------------------------------
# R101: dtype-less numpy constructors in hot paths
# ----------------------------------------------------------------------
DTYPELESS = """
    import numpy as np

    def f(n):
        return np.zeros(n)
"""


def test_r101_fires_in_hot_path():
    assert "R101" in codes(DTYPELESS, path=HOT)


def test_r101_ignores_cold_paths():
    assert "R101" not in codes(DTYPELESS, path=COLD)


def test_r101_satisfied_by_explicit_dtype():
    src = """
        import numpy as np

        def f(n):
            return np.zeros(n, dtype=np.int64)
    """
    assert "R101" not in codes(src, path=HOT)


def test_r101_sees_through_multiline_calls():
    src = """
        import numpy as np

        def f(values):
            return np.asarray(
                values,
                dtype=np.int64,
            )
    """
    assert "R101" not in codes(src, path=HOT)


def test_r101_ignores_non_constructor_attrs():
    src = """
        import numpy as np

        def f(a):
            return np.unique(a)
    """
    assert "R101" not in codes(src, path=HOT)


# ----------------------------------------------------------------------
# R102: SharedMemory without a close-and-unlink path
# ----------------------------------------------------------------------
UNGUARDED_SHM = """
    from multiprocessing import shared_memory

    def acquire(n):
        shm = shared_memory.SharedMemory(create=True, size=n)
        return shm
"""


def test_r102_fires_without_cleanup_handler():
    assert "R102" in codes(UNGUARDED_SHM, path=POOL)


def test_r102_satisfied_by_finally_close_and_unlink():
    src = """
        from multiprocessing import shared_memory

        def acquire(n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            try:
                return fill(shm)
            finally:
                shm.close()
                shm.unlink()
    """
    assert "R102" not in codes(src, path=POOL)


def test_r102_satisfied_by_release_helper():
    src = """
        from multiprocessing import shared_memory

        def acquire(pool, n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            try:
                return fill(shm)
            except OSError:
                _release_shared(pool)
                raise
    """
    assert "R102" not in codes(src, path=POOL)


# ----------------------------------------------------------------------
# R103: multiprocessing stays inside segment_pool
# ----------------------------------------------------------------------
def test_r103_fires_outside_pool_module():
    assert "R103" in codes("import multiprocessing\n", path=COLD)
    assert "R103" in codes(
        "from concurrent.futures import ProcessPoolExecutor\n", path=COLD)


def test_r103_allows_the_pool_module():
    assert "R103" not in codes("import multiprocessing\n", path=POOL)


def test_r103_ignores_thread_pools():
    assert "R103" not in codes(
        "from concurrent.futures import ThreadPoolExecutor\n", path=COLD)


# ----------------------------------------------------------------------
# R104: Engine instrumentation bypasses
# ----------------------------------------------------------------------
def test_r104_flags_init_subclass_override():
    src = """
        class SneakyEngine(Engine):
            def __init_subclass__(cls, **kw):
                pass
    """
    assert "R104" in codes(src)


def test_r104_flags_run_reassignment():
    assert "R104" in codes("SoftwareEngine.run = fast_run\n")


def test_r104_flags_forged_marker():
    src = """
        def patch(fn):
            fn.__obs_wrapped__ = True
            return fn
    """
    assert "R104" in codes(src)


def test_r104_exempts_engines_base():
    src = """
        class Engine:
            def __init_subclass__(cls, **kw):
                cls.run.__obs_wrapped__ = True
    """
    assert "R104" not in codes(src, path=ENGINE_BASE)


def test_r104_ignores_plain_classes():
    src = """
        class Widget(Base):
            def __init_subclass__(cls, **kw):
                pass
    """
    assert "R104" not in codes(src)


# ----------------------------------------------------------------------
# R105: mutable defaults
# ----------------------------------------------------------------------
def test_r105_flags_literal_and_constructor_defaults():
    assert "R105" in codes("def f(x=[]):\n    return x\n")
    assert "R105" in codes("def f(x={}):\n    return x\n")
    assert "R105" in codes("def f(x=dict()):\n    return x\n")
    assert "R105" in codes("def f(*, x=set()):\n    return x\n")


def test_r105_allows_none_and_immutables():
    assert "R105" not in codes("def f(x=None, y=(), z=0):\n    return x\n")


# ----------------------------------------------------------------------
# R106: bare / overbroad except
# ----------------------------------------------------------------------
def severities(source, path=COLD):
    return {(d.code, d.severity)
            for d in lint_source(textwrap.dedent(source), path)}


def test_r106_bare_except_is_error():
    src = """
        def f():
            try:
                work()
            except:
                pass
    """
    assert ("R106", "error") in severities(src)


def test_r106_base_exception_without_reraise_is_error():
    src = """
        def f():
            try:
                work()
            except BaseException:
                log()
    """
    assert ("R106", "error") in severities(src)


def test_r106_exception_without_reraise_is_warning():
    src = """
        def f():
            try:
                work()
            except Exception:
                log()
    """
    assert ("R106", "warning") in severities(src)


def test_r106_allows_cleanup_and_propagate():
    src = """
        def f(shm):
            try:
                work()
            except BaseException:
                shm.close()
                raise
    """
    assert "R106" not in codes(src)


def test_r106_allows_narrow_handlers():
    src = """
        def f():
            try:
                work()
            except (OSError, ValueError):
                pass
    """
    assert "R106" not in codes(src)


# ----------------------------------------------------------------------
# noqa suppression
# ----------------------------------------------------------------------
def test_noqa_bare_suppresses_everything_on_the_line():
    assert codes("def f(x=[]):  # repro: noqa\n    return x\n") == []


def test_noqa_with_matching_code_suppresses():
    assert codes("def f(x=[]):  # repro: noqa(R105)\n    return x\n") == []


def test_noqa_with_other_code_does_not_suppress():
    assert "R105" in codes("def f(x=[]):  # repro: noqa(R101)\n    return x\n")


def test_noqa_only_covers_its_own_line():
    src = """
        def f(x=[]):  # repro: noqa(R105)
            return x

        def g(y=[]):
            return y
    """
    assert codes(src) == ["R105"]


def test_noqa_accepts_code_lists():
    src = "def f(x=[]):  # repro: noqa(R101, R105)\n    return x\n"
    assert codes(src) == []
