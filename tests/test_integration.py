"""Cross-module integration tests: the full pipeline per benchmark family.

For each of the 13 families: generate rules -> compile -> run every engine
-> check final states, reports and cost-accounting invariants.  These are
the closest tests to "the system works end to end" short of the benchmark
harness itself (which runs at full scale).
"""

import numpy as np
import pytest

from repro.analysis.metrics import summarize_runs
from repro.core.engine import CseEngine
from repro.core.profiling import ProfilingConfig
from repro.engines.enumerative import EnumerativeEngine
from repro.engines.lbe import LbeEngine
from repro.engines.pap import PapEngine
from repro.engines.sequential import SequentialEngine
from repro.regex.compile import compile_ruleset
from repro.workloads.rulesets import FAMILY_GENERATORS, generate_ruleset
from repro.workloads.traces import becchi_trace, deepening_symbols

FAMILIES = sorted(FAMILY_GENERATORS)


@pytest.fixture(scope="module")
def family_setups():
    """One compiled FSM + inputs per family (module-scoped: compile once)."""
    setups = {}
    for family in FAMILIES:
        patterns = generate_ruleset(family, 2, seed=11)
        dfa = compile_ruleset(patterns)
        rng = np.random.default_rng(99)
        deepening = deepening_symbols(dfa, 97, 122)
        words = [
            becchi_trace(dfa, rng, 600, p_match=0.5, symbol_low=97,
                         symbol_high=122, deepening=deepening)
            for _ in range(2)
        ]
        setups[family] = (dfa, words)
    return setups


@pytest.mark.parametrize("family", FAMILIES)
class TestFamilyPipeline:
    def test_all_engines_agree(self, family, family_setups):
        dfa, words = family_setups[family]
        baseline = SequentialEngine(dfa)
        engines = [
            EnumerativeEngine(dfa, n_segments=4),
            LbeEngine(dfa, n_segments=4, lookback=15),
            PapEngine(dfa, n_segments=4),
            CseEngine(
                dfa, n_segments=4,
                profiling=ProfilingConfig(n_inputs=40, input_len=150,
                                          symbol_low=97, symbol_high=122),
            ),
        ]
        for word in words:
            expected = baseline.run(word).final_state
            for engine in engines:
                assert engine.run(word).final_state == expected, engine.name

    def test_cse_report_recovery(self, family, family_setups):
        dfa, words = family_setups[family]
        engine = CseEngine(
            dfa, n_segments=4,
            profiling=ProfilingConfig(n_inputs=30, input_len=150,
                                      symbol_low=97, symbol_high=122),
        )
        result, recovered = engine.run_with_reports(words[0])
        assert recovered.reports == dfa.run_reports(words[0])

    def test_cost_invariants(self, family, family_setups):
        dfa, words = family_setups[family]
        engine = CseEngine(
            dfa, n_segments=4,
            profiling=ProfilingConfig(n_inputs=30, input_len=150,
                                      symbol_low=97, symbol_high=122),
        )
        runs = [engine.run(w) for w in words]
        stats = summarize_runs(runs)
        for run in runs:
            assert run.cycles > 0
            assert run.speedup <= run.ideal_speedup + 1e-9
            assert sum(s.length for s in run.segments) == run.n_symbols
            assert run.rt_mean <= run.r0_mean + 1e-9
        assert stats.throughput > 0
