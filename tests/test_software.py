"""Unit tests for the software-only CSE prototype."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.automata.builders import cycle_dfa
from repro.core.partition import StatePartition
from repro.regex.compile import compile_ruleset
from repro.software import run_segment, scan_sequential, software_cse_scan


@pytest.fixture
def dfa():
    return compile_ruleset(["cat", "dog", "fi(sh|ne)"])


@pytest.fixture
def word(rng):
    return rng.integers(97, 123, size=40_000)


class TestScanSequential:
    def test_matches_dfa_run(self, dfa, word):
        final, seconds = scan_sequential(dfa, word)
        assert final == dfa.run(word)
        assert seconds > 0

    def test_custom_start(self, dfa, word):
        final, _ = scan_sequential(dfa, word, start_state=1)
        assert final == dfa.run(word, state=1)

    def test_empty_input(self, dfa):
        final, _ = scan_sequential(dfa, b"")
        assert final == dfa.start


class TestRunSegment:
    def test_converged_outcome_matches_oracle(self, dfa, rng):
        partition = StatePartition.trivial(dfa.num_states)
        segment = rng.integers(97, 123, size=2_000)
        function, seconds = run_segment(dfa, partition, segment)
        assert seconds > 0
        outcome = function.outcomes[0]
        if outcome.converged:
            for q in range(dfa.num_states):
                assert dfa.run(segment, state=q) == outcome.state

    def test_divergent_outcome_is_exact_set(self, rng):
        perm = cycle_dfa(5)
        partition = StatePartition.trivial(5)
        segment = rng.integers(0, 2, size=50)
        function, _ = run_segment(perm, partition, segment)
        outcome = function.outcomes[0]
        assert not outcome.converged
        want = sorted({int(perm.run(segment, state=q)) for q in range(5)})
        assert outcome.states.tolist() == want

    def test_scalar_fast_path_equals_slow_path(self, dfa, rng):
        """Singleton blocks take the scalar path; results must be exact."""
        partition = StatePartition.discrete(dfa.num_states)
        segment = rng.integers(97, 123, size=500)
        function, _ = run_segment(dfa, partition, segment)
        for q in range(dfa.num_states):
            assert function.concrete_for(q) == dfa.run(segment, state=q)


class TestSoftwareCseScan:
    def test_final_state_correct(self, dfa, word):
        partition = StatePartition.trivial(dfa.num_states)
        run = software_cse_scan(dfa, word, partition, n_segments=8)
        assert run.final_state == dfa.run(word)

    def test_work_speedup_positive_on_converging_load(self, dfa, word):
        partition = StatePartition.trivial(dfa.num_states)
        run = software_cse_scan(dfa, word, partition, n_segments=8)
        assert run.work_speedup > 1.0
        assert 0 < run.work_efficiency <= 1.5  # timing noise tolerance

    def test_divergent_load_repairs_correctly(self, rng):
        perm = cycle_dfa(5)
        word = rng.integers(0, 2, size=4_000)
        run = software_cse_scan(perm, word, StatePartition.trivial(5),
                                n_segments=4)
        assert run.final_state == perm.run(word)
        assert run.reexec_segments > 0

    def test_with_executor(self, dfa, word):
        partition = StatePartition.trivial(dfa.num_states)
        with ThreadPoolExecutor(max_workers=2) as pool:
            run = software_cse_scan(dfa, word, partition, n_segments=8,
                                    executor=pool)
        assert run.final_state == dfa.run(word)
        assert len(run.segment_seconds) == 8

    def test_segment_seconds_shape(self, dfa, word):
        partition = StatePartition.trivial(dfa.num_states)
        run = software_cse_scan(dfa, word, partition, n_segments=8)
        assert len(run.segment_seconds) == 8
        assert all(s >= 0 for s in run.segment_seconds)
        assert run.critical_path_seconds >= max(run.segment_seconds)


class TestSharedMemoryPool:
    """The zero-copy segment dispatch path on a fingerprint-matched pool."""

    def test_shm_and_pickle_paths_agree(self, dfa, word):
        from repro.compilecache import CompileCache, scan_with_cache
        from repro.core.profiling import ProfilingConfig
        from repro.software import segment_pool

        config = ProfilingConfig(n_inputs=30, input_len=50)
        cache = CompileCache()
        with segment_pool(dfa, max_workers=2) as pool:
            shm_run = scan_with_cache(dfa, word, cache=cache, n_segments=4,
                                      executor=pool, profiling=config)
            pickled = scan_with_cache(dfa, word, cache=cache, n_segments=4,
                                      executor=pool, profiling=config,
                                      use_shared_memory=False)
        assert shm_run.final_state == pickled.final_state == dfa.run(word)
        assert cache.stats()["builds"] == 1

    def test_shm_metrics_and_cleanup(self, dfa, word):
        import glob

        from repro import obs
        from repro.compilecache import CompileCache, scan_with_cache
        from repro.core.profiling import ProfilingConfig
        from repro.software import segment_pool

        before = set(glob.glob("/dev/shm/psm_*"))
        with obs.using() as registry:
            cache = CompileCache()
            with segment_pool(dfa, max_workers=2) as pool:
                scan_with_cache(
                    dfa, word, cache=cache, n_segments=4, executor=pool,
                    profiling=ProfilingConfig(n_inputs=30, input_len=50),
                )
            snapshot = registry.snapshot()
        names = {m["name"]: m for m in snapshot["metrics"]}
        if "software_shm_scans_total" in names:
            assert names["software_shm_scans_total"]["value"] == 1
            assert names["software_shm_bytes_total"]["value"] >= word.size * 8
            # the parent released and unlinked its segment
            assert set(glob.glob("/dev/shm/psm_*")) <= before
        else:  # platform without shared memory: the fallback was counted
            assert "software_shm_fallbacks_total" in names
