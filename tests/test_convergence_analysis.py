"""Unit tests for convergence-dynamics analysis."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    StabilizationStats,
    stabilization_stats,
    symbols_to_stabilize,
)
from repro.automata.builders import cycle_dfa
from repro.automata.dfa import Dfa
from repro.regex.compile import compile_ruleset


class TestSymbolsToStabilize:
    def test_instant_collapse(self):
        # everything maps to state 0 on any symbol: the recorded size trace
        # is constant (all 1s), so the machine is stable from position 0
        table = np.zeros((2, 3), dtype=np.int32)
        dfa = Dfa(table, 0, [])
        assert symbols_to_stabilize(dfa, [0, 1, 0]) == 0

    def test_permutation_stabilizes_immediately_at_full_size(self):
        # sizes never change: stable from the start
        dfa = cycle_dfa(4)
        assert symbols_to_stabilize(dfa, [0] * 10) == 0

    def test_empty_input(self, mod3_dfa):
        assert symbols_to_stabilize(mod3_dfa, []) == 0

    def test_late_collapse_detected(self):
        # collapse only happens on symbol 1; feed 0s then a single 1
        table = np.array([[1, 2, 0], [0, 0, 0]], dtype=np.int32)
        dfa = Dfa(table, 0, [])
        word = [0] * 7 + [1] + [0] * 3
        # sizes: 3 for positions 0..6, then 1 from position 7 on — the last
        # differing position is 6, so stabilization takes 7 symbols
        assert symbols_to_stabilize(dfa, word) == 7

    def test_matches_size_trace(self, small_ruleset_dfa, rng):
        word = rng.integers(97, 123, size=200)
        t = symbols_to_stabilize(small_ruleset_dfa, word)
        states = np.arange(small_ruleset_dfa.num_states, dtype=np.int32)
        _, sizes = small_ruleset_dfa.set_run(states, word, record_sizes=True)
        assert len(set(sizes[t:])) <= 1  # constant after t
        if t > 0:
            assert sizes[t - 1] != sizes[-1]


class TestStabilizationStats:
    def test_aggregates_over_units(self):
        from repro.workloads.suite import load_benchmark

        instance = load_benchmark("ExactMatch", scale=0.25)
        stats = stabilization_stats(instance)
        assert isinstance(stats, StabilizationStats)
        assert stats.benchmark == "ExactMatch"
        assert stats.mean_symbols >= 0
        assert 0 <= stats.within_10 <= 1
        assert stats.mean_final_size >= 1.0

    def test_easy_benchmark_converges_fully(self):
        from repro.workloads.suite import load_benchmark

        instance = load_benchmark("ExactMatch", scale=0.25)
        stats = stabilization_stats(instance)
        assert stats.mean_final_size == 1.0
        assert stats.within_10 == 1.0
