"""Unit tests for structured corpora."""

import numpy as np
import pytest

from repro.workloads.corpus import (
    mixed_corpus,
    packet_corpus,
    protein_corpus,
    sentence_corpus,
)
from repro.workloads.splitting import split_by_delimiter


class TestSentenceCorpus:
    def test_length_exact(self, rng):
        text = sentence_corpus(rng, 1000)
        assert text.size == 1000

    def test_contains_periods_and_spaces(self, rng):
        text = sentence_corpus(rng, 2000)
        assert (text == ord(".")).any()
        assert (text == ord(" ")).any()

    def test_words_from_vocabulary(self, rng):
        text = sentence_corpus(rng, 500, vocabulary=["cat", "dog"])
        decoded = bytes(text.astype(np.uint8)).decode()
        words = decoded.replace(".", " ").split()
        assert set(words) <= {"cat", "dog"}

    def test_sentences_bounded(self, rng):
        text = sentence_corpus(rng, 3000, words_per_sentence=5)
        sentences = split_by_delimiter(text, ord("."))
        # each sentence roughly 5 words; none enormously long
        assert all(s.size < 100 for s in sentences)


class TestPacketCorpus:
    def test_length_exact(self, rng):
        stream = packet_corpus(rng, 1500)
        assert stream.size == 1500

    def test_delimiters_present(self, rng):
        stream = packet_corpus(rng, 3000, packet_len=200, delimiter=0)
        assert (stream == 0).any()
        packets = split_by_delimiter(stream, 0)
        assert all(p.size <= 200 for p in packets)

    def test_keywords_injected(self, rng):
        stream = packet_corpus(rng, 5000, keywords=["NEEDLE"],
                               keyword_rate=0.05)
        decoded = bytes((stream % 256).astype(np.uint8)).decode("latin-1")
        assert "NEEDLE" in decoded

    def test_payload_printable(self, rng):
        stream = packet_corpus(rng, 1000, delimiter=0)
        non_delim = stream[stream != 0]
        assert non_delim.min() >= 32 and non_delim.max() <= 126


class TestProteinCorpus:
    def test_amino_alphabet_only(self, rng):
        seq = protein_corpus(rng, 800)
        decoded = bytes(seq.astype(np.uint8)).decode()
        assert set(decoded) <= set("ACDEFGHIKLMNPQRSTVWY")

    def test_fragments_present(self, rng):
        seq = protein_corpus(rng, 5000, motif_fragments=["WWWWW"],
                             fragment_rate=0.02)
        assert "WWWWW" in bytes(seq.astype(np.uint8)).decode()


class TestMixedCorpus:
    def test_concatenates_to_length(self, rng):
        pieces = [np.array([1, 2, 3]), np.array([4, 5])]
        out = mixed_corpus(rng, 10, pieces)
        assert out.size == 10

    def test_empty_pieces_rejected(self, rng):
        with pytest.raises(ValueError):
            mixed_corpus(rng, 10, [])
