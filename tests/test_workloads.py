"""Unit tests for the workload substrate: rulesets, traces, splitting, suite."""

import numpy as np
import pytest

from repro.regex.compile import compile_ruleset
from repro.regex.parser import parse
from repro.workloads.rulesets import FAMILY_GENERATORS, generate_ruleset
from repro.workloads.splitting import insert_delimiters, split_by_delimiter
from repro.workloads.suite import (
    SUITE,
    benchmark_names,
    get_benchmark,
    load_benchmark,
)
from repro.workloads.traces import becchi_trace, deepening_symbols, random_trace


class TestRulesets:
    @pytest.mark.parametrize("family", sorted(FAMILY_GENERATORS))
    def test_patterns_parse(self, family):
        patterns = generate_ruleset(family, 4, seed=3)
        assert len(patterns) == 4
        for p in patterns:
            parse(p)  # must not raise

    @pytest.mark.parametrize("family", sorted(FAMILY_GENERATORS))
    def test_patterns_compile_to_small_dfa(self, family):
        patterns = generate_ruleset(family, 2, seed=5)
        dfa = compile_ruleset(patterns)
        assert 2 <= dfa.num_states <= 2000

    def test_deterministic_by_seed(self):
        assert generate_ruleset("Snort", 5, 1) == generate_ruleset("Snort", 5, 1)
        assert generate_ruleset("Snort", 5, 1) != generate_ruleset("Snort", 5, 2)

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            generate_ruleset("NoSuch", 3, 1)

    def test_dotstar_probability_ordering(self):
        """Higher dotstar probability => at least as many .* rules."""
        n = 30
        count03 = sum(".*" in p for p in generate_ruleset("Dotstar03", n, 1))
        count09 = sum(".*" in p for p in generate_ruleset("Dotstar09", n, 1))
        assert count09 >= count03

    def test_exactmatch_is_pure_literals(self):
        for p in generate_ruleset("ExactMatch", 10, 2):
            assert p.isalpha()

    def test_poweren_contains_stride_rules(self):
        patterns = generate_ruleset("PowerEN", 4, 1)
        assert any(p.startswith("^(") for p in patterns)

    def test_protomata_uses_amino_alphabet(self):
        for p in generate_ruleset("Protomata", 6, 1):
            # strip regex metacharacters; the rest are amino letters
            letters = {c for c in p if c.isalpha()}
            assert letters <= set("ACDEFGHIKLMNPQRSTVWYZ")


class TestTraces:
    def test_random_trace_range(self, rng):
        trace = random_trace(rng, 500, 10, 20)
        assert trace.min() >= 10 and trace.max() <= 20
        assert trace.size == 500

    def test_random_trace_invalid_range(self, rng):
        with pytest.raises(ValueError):
            random_trace(rng, 10, 5, 2)

    def test_deepening_symbols_move_deeper(self, small_ruleset_dfa):
        depths = small_ruleset_dfa.state_depths()
        deepening = deepening_symbols(small_ruleset_dfa, 97, 122)
        for q, symbols in enumerate(deepening):
            for c in symbols.tolist():
                assert depths[small_ruleset_dfa.step(q, c)] > depths[q]

    def test_becchi_trace_pm_zero_is_uniform_range(self, small_ruleset_dfa, rng):
        trace = becchi_trace(small_ruleset_dfa, rng, 300, p_match=0.0,
                             symbol_low=97, symbol_high=122)
        assert trace.min() >= 97 and trace.max() <= 122

    def test_becchi_trace_pm_one_matches_more(self, small_ruleset_dfa):
        """Higher p_match must produce more pattern hits."""
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        low = becchi_trace(small_ruleset_dfa, rng1, 2000, p_match=0.1,
                           symbol_low=97, symbol_high=122)
        high = becchi_trace(small_ruleset_dfa, rng2, 2000, p_match=0.9,
                            symbol_low=97, symbol_high=122)
        hits_low = len(small_ruleset_dfa.run_reports(low))
        hits_high = len(small_ruleset_dfa.run_reports(high))
        assert hits_high >= hits_low

    def test_becchi_trace_invalid_pm(self, small_ruleset_dfa, rng):
        with pytest.raises(ValueError):
            becchi_trace(small_ruleset_dfa, rng, 10, p_match=1.5)


class TestSplitting:
    def test_split_basic(self):
        pieces = split_by_delimiter([1, 2, 0, 3, 0, 4], 0)
        assert [p.tolist() for p in pieces] == [[1, 2], [3], [4]]

    def test_split_keep_delimiter(self):
        pieces = split_by_delimiter([1, 0, 2], 0, keep_delimiter=True)
        assert [p.tolist() for p in pieces] == [[1, 0], [2]]

    def test_split_drop_empty(self):
        pieces = split_by_delimiter([0, 0, 1], 0)
        assert [p.tolist() for p in pieces] == [[1]]

    def test_split_keep_empty(self):
        pieces = split_by_delimiter([0, 1], 0, drop_empty=False)
        assert [p.tolist() for p in pieces] == [[], [1]]

    def test_roundtrip(self):
        pieces = [np.array([1, 2]), np.array([3])]
        joined = insert_delimiters(pieces, 0)
        assert joined.tolist() == [1, 2, 0, 3]
        back = split_by_delimiter(joined, 0)
        assert [p.tolist() for p in back] == [[1, 2], [3]]

    def test_split_equivalence_to_sequential(self):
        """Restarting at delimiters matches one pass when patterns cannot
        cross the delimiter."""
        dfa = compile_ruleset(["ab", "cd"])
        text = b"ab.cd.ab"
        pieces = split_by_delimiter(np.frombuffer(text, dtype=np.uint8), ord("."))
        split_reports = []
        for piece in pieces:
            split_reports.extend(off for off, _ in dfa.run_reports(piece))
        whole = [off for off, _ in dfa.run_reports(text)]
        assert len(split_reports) == len(whole)

    def test_empty_input(self):
        assert insert_delimiters([], 0).size == 0
        assert split_by_delimiter([], 0) == []


class TestSuiteRegistry:
    def test_thirteen_benchmarks(self):
        assert len(SUITE) == 13
        assert len(benchmark_names()) == 13

    def test_paper_table1_values(self):
        """Spot-check Table I parameters carried over verbatim."""
        assert get_benchmark("Clamav").lookback == 40
        assert get_benchmark("Brill").lookback == 50
        assert get_benchmark("ExactMatch").lookback == 10
        assert get_benchmark("Snort").cores_per_segment == 3
        assert get_benchmark("Snort").n_segments == 5
        assert get_benchmark("Dotstar").cores_per_segment == 2
        assert get_benchmark("Dotstar").n_segments == 8
        assert get_benchmark("Protomata").merge_cutoff == 0.99
        assert get_benchmark("TCP").merge_cutoff == 1.00

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_load_benchmark_cached(self):
        a = load_benchmark("ExactMatch")
        b = load_benchmark("ExactMatch")
        assert a is b

    def test_load_benchmark_structure(self):
        instance = load_benchmark("ExactMatch")
        assert instance.n_fsms == get_benchmark("ExactMatch").n_fsms
        for unit in instance.units:
            assert unit.dfa.num_states >= 2
            assert len(unit.strings) == instance.spec.n_strings
            for s in unit.strings:
                assert s.size == instance.spec.input_len

    def test_scaled_spec(self):
        spec = get_benchmark("ExactMatch").scaled(0.5)
        assert spec.n_fsms == round(get_benchmark("ExactMatch").n_fsms * 0.5)
        assert spec.input_len == get_benchmark("ExactMatch").input_len // 2

    def test_profile_len_tracks_segments(self):
        spec = get_benchmark("ExactMatch")
        assert spec.profile_len == max(100, spec.input_len // spec.n_segments)

    def test_profiling_config_range(self):
        spec = get_benchmark("Protomata")
        config = spec.profiling_config()
        assert config.symbol_low == 65
        assert config.symbol_high == 89
