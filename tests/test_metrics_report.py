"""Unit tests for metrics aggregation and text report rendering."""

import pytest

from repro.analysis.metrics import EngineStats, reexecution_rate, summarize_runs
from repro.analysis.report import (
    render_bars,
    render_grouped,
    render_series,
    render_table,
)
from repro.engines.base import RunResult, SegmentTrace
from repro.hardware.ap import APConfig


def make_result(cycles=100, n_symbols=400, segments=4, r0=3, rt=1, reexec=0):
    traces = [SegmentTrace(0, 100, [1] * 101, 100)]
    traces += [
        SegmentTrace(100 * i, 100 * (i + 1), [r0] + [rt] * 100, 100)
        for i in range(1, segments)
    ]
    return RunResult(
        engine="X",
        n_symbols=n_symbols,
        final_state=0,
        cycles=cycles,
        config=APConfig(),
        segments=traces,
        reexec_segments=reexec,
    )


class TestRunResultProperties:
    def test_speedup(self):
        result = make_result(cycles=100, n_symbols=400)
        assert result.speedup == 4.0

    def test_ideal_speedup(self):
        assert make_result(segments=4).ideal_speedup == 4.0

    def test_r0_rt_skip_first_segment(self):
        result = make_result(r0=5, rt=2)
        assert result.r0_mean == 5.0
        assert result.rt_mean == 2.0

    def test_single_segment_defaults(self):
        result = RunResult("X", 10, 0, 10, APConfig(),
                           [SegmentTrace(0, 10, [1] * 11, 10)])
        assert result.r0_mean == 1.0
        assert result.rt_mean == 1.0

    def test_baseline_cycles(self):
        assert make_result(n_symbols=400).baseline_cycles == 400

    def test_throughput_positive(self):
        assert make_result().throughput > 0


class TestSummarize:
    def test_averages(self):
        runs = [make_result(cycles=100), make_result(cycles=200)]
        stats = summarize_runs(runs)
        assert stats.n_runs == 2
        assert stats.speedup == pytest.approx((4.0 + 2.0) / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])

    def test_reexecution_rate(self):
        runs = [make_result(segments=4, reexec=0), make_result(segments=4, reexec=3)]
        # 6 enumerative segments total, 3 re-executed
        assert reexecution_rate(runs) == 0.5

    def test_reexecution_rate_empty(self):
        assert reexecution_rate([]) == 0.0

    def test_str_contains_key_numbers(self):
        stats = summarize_runs([make_result()])
        text = str(stats)
        assert "speedup" in text and "R0" in text


class TestRender:
    def test_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        out = render_table(rows)
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table_empty(self):
        assert render_table([]) == "(no rows)"

    def test_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = render_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_float_formatting(self):
        out = render_table([{"v": 0.00123}])
        assert "0.0012" in out

    def test_series(self):
        out = render_series({"x": 1.5}, name="speedup")
        assert "speedup" in out and "1.50" in out

    def test_grouped(self):
        data = {"B1": {"LBE": 1.0, "CSE": 2.0}}
        out = render_grouped(data, columns=["LBE", "CSE"])
        assert "B1" in out and "LBE" in out

    def test_bars_proportional(self):
        out = render_bars({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bars_empty(self):
        assert render_bars({}) == "(no data)"

    def test_bars_zero_values(self):
        out = render_bars({"a": 0.0})
        assert "#" not in out

    def test_bars_fixed_max(self):
        out = render_bars({"a": 1.0}, width=10, max_value=2.0)
        assert out.count("#") == 5
