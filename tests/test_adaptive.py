"""Unit tests for the adaptive (online-refinement) CSE extension."""

import numpy as np
import pytest

from repro.automata.builders import cycle_dfa
from repro.core.adaptive import AdaptiveCseEngine
from repro.core.engine import CseEngine
from repro.core.partition import StatePartition
from repro.regex.compile import compile_ruleset


@pytest.fixture
def stride_dfa():
    """An FSM with permanent stride basins: trivial partitions misfire."""
    return compile_ruleset(["^(..)*abc"])


class TestLearning:
    def test_refines_after_repeated_divergence(self, rng):
        dfa = cycle_dfa(6)
        engine = AdaptiveCseEngine(
            dfa, n_segments=4, partition=StatePartition.trivial(6),
            min_divergences=2,
        )
        initial_blocks = engine.partition.num_blocks
        for _ in range(4):
            word = rng.integers(0, 2, size=80)
            result = engine.run(word)
            assert result.final_state == dfa.run(word)
        assert engine.refinements_applied >= 1
        assert engine.partition.num_blocks > initial_blocks

    def test_reexec_drops_after_learning(self, stride_dfa, rng):
        """The headline property: re-executions vanish once the stride
        basins are separated."""
        engine = AdaptiveCseEngine(
            stride_dfa, n_segments=8,
            partition=StatePartition.trivial(stride_dfa.num_states),
            min_divergences=1,
        )
        words = [rng.integers(97, 123, size=800) for _ in range(6)]
        early = engine.run(words[0]).reexec_segments
        for word in words[1:-1]:
            engine.run(word)
        late = engine.run(words[-1]).reexec_segments
        assert late <= early
        if early > 0:
            assert engine.refinements_applied >= 1

    def test_correctness_preserved_throughout(self, stride_dfa, rng):
        engine = AdaptiveCseEngine(
            stride_dfa, n_segments=4,
            partition=StatePartition.trivial(stride_dfa.num_states),
            min_divergences=1,
        )
        for _ in range(5):
            word = rng.integers(97, 123, size=400)
            assert engine.run(word).final_state == stride_dfa.run(word)


class TestGuards:
    def test_max_blocks_cap(self, rng):
        dfa = cycle_dfa(8)
        engine = AdaptiveCseEngine(
            dfa, n_segments=4, partition=StatePartition.trivial(8),
            min_divergences=1, max_blocks=2,
        )
        for _ in range(4):
            engine.run(rng.integers(0, 2, size=60))
        assert engine.partition.num_blocks <= 2

    def test_min_divergences_hysteresis(self, rng):
        dfa = cycle_dfa(6)
        patient = AdaptiveCseEngine(
            dfa, n_segments=4, partition=StatePartition.trivial(6),
            min_divergences=50,
        )
        patient.run(rng.integers(0, 2, size=60))
        assert patient.refinements_applied == 0

    def test_invalid_min_divergences(self):
        dfa = cycle_dfa(4)
        with pytest.raises(ValueError):
            AdaptiveCseEngine(dfa, partition=StatePartition.trivial(4),
                              min_divergences=0)

    def test_no_learning_when_everything_converges(self, small_ruleset_dfa, rng):
        engine = AdaptiveCseEngine(
            small_ruleset_dfa, n_segments=4,
            partition=StatePartition.trivial(small_ruleset_dfa.num_states),
            min_divergences=1,
        )
        word = rng.integers(97, 123, size=800)
        engine.run(word)
        if engine.run(word).reexec_segments == 0:
            # converging workload: partition may stay put
            assert engine.partition.num_blocks >= 1


class TestComparisonWithStatic:
    def test_adaptive_never_slower_on_stationary_divergent_load(self, rng):
        """On a workload the static partition keeps mispredicting, the
        adaptive engine ends up with fewer total re-executions."""
        dfa = cycle_dfa(6)
        words = [np.random.default_rng(i).integers(0, 2, size=120)
                 for i in range(8)]
        static = CseEngine(dfa, n_segments=4,
                           partition=StatePartition.trivial(6))
        adaptive = AdaptiveCseEngine(dfa, n_segments=4,
                                     partition=StatePartition.trivial(6),
                                     min_divergences=1)
        static_total = sum(static.run(w).reexec_segments for w in words)
        adaptive_total = sum(adaptive.run(w).reexec_segments for w in words)
        assert adaptive_total <= static_total
