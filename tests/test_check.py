"""Pillar 1 tests: artifact verification + exact convergence certification.

Property-based core (the ISSUE's satellite): any well-formed DFA passes
``verify_dfa`` with zero errors, and every mutation class — out-of-bounds
transition, overlapping convergence set, mismatched bitset row, tampered
derived tables / content addresses — is flagged with the *right*
diagnostic code, never a generic failure.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.builders import random_dfa
from repro.automata.dfa import Dfa
from repro.check import (
    CODES,
    CONVERGENT,
    DIVERGENT,
    UNKNOWN,
    certify_partition,
    certify_set,
    has_errors,
    lint_paths,
    verify_artifact_file,
    verify_compiled,
    verify_dfa,
    verify_partition,
)
from repro.compilecache import compile_dfa
from repro.compilecache.store import (
    ArtifactValidationError,
    artifact_path,
    load_artifact,
    save_artifact,
)
from repro.core.partition import StatePartition
from repro.core.profiling import ProfilingConfig
from repro.regex.compile import compile_ruleset
from repro.workloads.rulesets import generate_ruleset

DOCS = Path(__file__).resolve().parent.parent / "docs" / "static_analysis.md"


def codes_of(diagnostics):
    return {d.code for d in diagnostics}


def error_codes(diagnostics):
    return {d.code for d in diagnostics if d.severity == "error"}


@st.composite
def dfas(draw):
    num_states = draw(st.integers(min_value=1, max_value=12))
    alphabet = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return random_dfa(num_states, alphabet, rng)


# ----------------------------------------------------------------------
# verify_dfa
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(dfas())
def test_random_dfas_always_verify_clean(dfa):
    assert not error_codes(verify_dfa(dfa, deep=True))


@settings(max_examples=40, deadline=None)
@given(dfas(), st.data())
def test_out_of_bounds_mutation_is_always_d103(dfa, data):
    c = data.draw(st.integers(0, dfa.alphabet_size - 1))
    q = data.draw(st.integers(0, dfa.num_states - 1))
    dfa.transitions[c, q] = dfa.num_states + data.draw(st.integers(0, 5))
    assert "D103" in error_codes(verify_dfa(dfa))


def test_verify_dfa_rejects_wrong_shape_and_dtype():
    dfa = Dfa(np.zeros((2, 3), dtype=np.int32), 0, [0])
    dfa.transitions = np.zeros(6, dtype=np.int32)  # 1-D
    assert "D101" in error_codes(verify_dfa(dfa))
    dfa.transitions = np.zeros((2, 3), dtype=np.int64)
    assert "D102" in error_codes(verify_dfa(dfa))


def test_verify_dfa_start_accepting_and_mask(mod3_dfa):
    mod3_dfa.start = 7
    assert "D104" in error_codes(verify_dfa(mod3_dfa))
    mod3_dfa.start = 0

    mod3_dfa.accepting = frozenset({0, 99})
    assert "D105" in error_codes(verify_dfa(mod3_dfa))

    mod3_dfa.accepting = frozenset({0, 1})  # mask still marks only {0}
    assert "D106" in error_codes(verify_dfa(mod3_dfa))


def test_verify_dfa_deep_warnings():
    # state 2 unreachable from start=0; no accepting states at all
    table = np.zeros((1, 3), dtype=np.int32)
    dfa = Dfa(table, 0, [])
    diags = verify_dfa(dfa, deep=True)
    assert not error_codes(diags)
    assert {"D201", "D203"} <= codes_of(diags)


# ----------------------------------------------------------------------
# verify_partition
# ----------------------------------------------------------------------
def tampered_partition(blocks, num_states=None):
    """Build a StatePartition around its validating constructor."""
    p = object.__new__(StatePartition)
    p.blocks = tuple(frozenset(b) for b in blocks)
    p.num_states = num_states if num_states is not None else 3
    p._block_of = {q: i for i, b in enumerate(p.blocks) for q in b}
    return p


@settings(max_examples=40, deadline=None)
@given(dfas())
def test_discrete_and_trivial_partitions_verify_clean(dfa):
    n = dfa.num_states
    assert not verify_partition(StatePartition.discrete(n))
    assert not error_codes(verify_partition(StatePartition.trivial(n)))


def test_overlapping_sets_are_p101():
    p = tampered_partition([{0, 1}, {1, 2}])
    assert "P101" in error_codes(verify_partition(p))


def test_uncovered_states_are_p102():
    p = tampered_partition([{0}, {2}])
    assert "P102" in error_codes(verify_partition(p))


def test_empty_set_is_p103():
    p = tampered_partition([{0, 1, 2}, set()])
    assert "P103" in error_codes(verify_partition(p))


def test_out_of_range_member_is_p104():
    p = tampered_partition([{0, 1, 2, 7}])
    assert "P104" in error_codes(verify_partition(p))


def test_stale_block_index_is_p105():
    p = StatePartition([[0, 1], [2]], 3)
    p._block_of = {0: 0, 1: 1, 2: 1}  # wrong: 1 lives in block 0
    assert "P105" in error_codes(verify_partition(p))


def test_raw_blocks_with_explicit_num_states():
    assert not verify_partition([[0, 1], [2]], num_states=3)
    assert "P102" in error_codes(verify_partition([[0]], num_states=2))


# ----------------------------------------------------------------------
# verify_compiled: every mutation class gets its own code
# ----------------------------------------------------------------------
@pytest.fixture
def compiled(mod3_dfa):
    cfg = ProfilingConfig(n_inputs=40, input_len=24, symbol_high=1, seed=7)
    return compile_dfa(mod3_dfa, profiling=cfg, n_segments=4)


def test_clean_artifact_verifies_clean(compiled):
    assert not error_codes(verify_compiled(compiled, deep=True))


def test_scalar_row_mutation_is_k101(compiled):
    compiled.rows[0][1] = (compiled.rows[0][1] + 1) % 3
    assert error_codes(verify_compiled(compiled)) == {"K101"}


def test_flat_table_mutation_is_k102(compiled):
    compiled.flat_table = compiled.flat_table.copy()
    compiled.flat_table[0] = (compiled.flat_table[0] + 1) % 3
    assert error_codes(verify_compiled(compiled)) == {"K102"}


def test_mismatched_bitset_row_is_k103(compiled):
    compiled.bitset_tables()  # build, then flip one predecessor word
    compiled._bitset.pred[0, 0, 0] ^= np.uint64(1)
    assert error_codes(verify_compiled(compiled, deep=True)) == {"K103"}
    # shallow verification deliberately skips the O(C*N^2/64) recompute
    assert not error_codes(verify_compiled(compiled, deep=False))


def test_tampered_key_is_k104(compiled):
    compiled.key = "0" * 64
    assert error_codes(verify_compiled(compiled)) == {"K104"}


def test_tampered_fingerprint_is_k105(compiled):
    # the key still re-derives from the *recomputed* fingerprint, so only
    # the stored-fingerprint check fires
    compiled.fingerprint = ("bogus",)
    assert error_codes(verify_compiled(compiled)) == {"K105"}


def test_bad_backend_fields_are_k106(compiled):
    compiled.backend = "cuda"
    assert error_codes(verify_compiled(compiled)) == {"K106"}


def test_tampered_coverage_is_k107(compiled):
    # MergeResult is frozen; pickle-level corruption bypasses that
    object.__setattr__(compiled.merge, "covered", 0.123)
    assert error_codes(verify_compiled(compiled)) == {"K107"}


def test_mutated_dense_table_is_k111(compiled):
    from repro.kernels import native_available

    compiled.dense_tables()  # build, then corrupt one transition
    compiled._dense.table = compiled._dense.table.copy()
    compiled._dense.table[0] = (compiled._dense.table[0] + 1) % 3
    # the native tier diffs its table view against the same corrupted
    # tables, so when it is loadable the tamper trips K114 as well
    want = {"K111", "K114"} if native_available() else {"K111"}
    assert error_codes(verify_compiled(compiled)) == want


def test_wrong_dense_dtype_is_k111(compiled):
    import numpy as np

    compiled.dense_tables()
    # same values, wrong width: the narrowing contract is part of the
    # artifact (store.py records it in the envelope)
    compiled._dense.table = compiled._dense.table.astype(np.int32)
    # int32 is outside the native tier's table kinds, so when it is
    # loadable the unviewable table additionally trips K114
    from repro.kernels import native_available

    want = {"K111", "K114"} if native_available() else {"K111"}
    assert error_codes(verify_compiled(compiled)) == want


def test_mutated_dense_offsets_is_k112(compiled):
    compiled.dense_tables()
    compiled._dense.offsets = compiled._dense.offsets.copy()
    compiled._dense.offsets[1] += 1
    assert error_codes(verify_compiled(compiled)) == {"K112"}


def test_unbuilt_dense_tables_verify_clean(compiled):
    assert compiled._dense is None
    assert not error_codes(verify_compiled(compiled, deep=True))


def test_invalid_census_entry_is_k108(compiled):
    entry = next(iter(compiled.census))
    tampered = tampered_partition([{0, 1}, {1, 2}],
                                  num_states=compiled.dfa.num_states)
    count = compiled.census.pop(entry)
    compiled.census[tampered] = count
    assert "K108" in error_codes(verify_compiled(compiled))


# ----------------------------------------------------------------------
# exact convergence certification
# ----------------------------------------------------------------------
def test_permutation_dfa_is_proven_divergent(mod3_dfa):
    # symbol 0 permutes {0,1,2}: the full set can never collapse
    cert = certify_set(mod3_dfa, np.arange(3))
    assert cert.status == DIVERGENT


def test_constant_dfa_is_proven_convergent_depth_one():
    dfa = Dfa(np.zeros((2, 4), dtype=np.int32), 0, [0])
    cert = certify_set(dfa, np.arange(4))
    assert cert.status == CONVERGENT
    assert cert.depth == 1


def test_singleton_is_trivially_convergent(mod3_dfa):
    cert = certify_set(mod3_dfa, np.asarray([1]))
    assert cert.status == CONVERGENT and cert.depth == 0


def test_budget_exhaustion_is_unknown_and_c301(mod3_dfa):
    cert = certify_set(mod3_dfa, np.arange(3), max_depth=0)
    assert cert.status == UNKNOWN
    _, diags = certify_partition(mod3_dfa, StatePartition.trivial(3),
                                 max_depth=0)
    assert codes_of(diags) == {"C301"}


def test_paper_suite_ruleset_certifies_convergent():
    # the acceptance criterion: a real paper-suite artifact has at least
    # one convergence set the analysis proves convergent outright
    dfa = compile_ruleset(generate_ruleset("ExactMatch", 20, seed=7))
    compiled = compile_dfa(
        dfa, profiling=ProfilingConfig(n_inputs=120, input_len=120, seed=7))
    certs, diags = certify_partition(
        dfa, compiled.partition, census=compiled.census,
        profiling_len=compiled.profiling.input_len)
    assert any(c.status == CONVERGENT for c in certs)
    assert "C201" in codes_of(diags)
    assert not error_codes(diags)  # honest census: no contradiction


def test_corrupt_census_contradiction_is_c401():
    dfa = Dfa(np.zeros((2, 4), dtype=np.int32), 0, [0])  # collapses in 1
    partition = StatePartition.trivial(4)
    # a census claiming the set never converged on length-8 inputs is
    # impossible given the table: C401 must fire as an error
    from collections import Counter

    lying_census = Counter({StatePartition.discrete(4): 10})
    certs, diags = certify_partition(dfa, partition, census=lying_census,
                                     profiling_len=8)
    assert certs[0].status == CONVERGENT
    assert certs[0].profiled_convergence == 0.0
    assert "C401" in error_codes(diags)


# ----------------------------------------------------------------------
# Dfa.validate + load-time artifact rejection
# ----------------------------------------------------------------------
def test_dfa_validate_passes_and_raises(mod3_dfa):
    assert not error_codes(mod3_dfa.validate(deep=True))
    mod3_dfa.transitions[0, 0] = 99
    with pytest.raises(ValueError, match="D103"):
        mod3_dfa.validate()


def _rewrite_consistent(path: Path, payload: dict) -> None:
    """Re-derive the envelope header so checksums agree with the content."""
    compiled = payload["artifact"]
    compiled.dfa._fingerprint = None
    compiled.fingerprint = compiled.dfa.fingerprint
    payload["fingerprint"] = compiled.fingerprint
    path.write_bytes(pickle.dumps(payload))


def test_load_artifact_rejects_corrupt_but_consistent_dfa(compiled, tmp_path):
    save_artifact(compiled, tmp_path)
    path = artifact_path(tmp_path, compiled.key)
    payload = pickle.loads(path.read_bytes())
    # corrupt the table, then make every checksum self-consistent again:
    # only the structural re-validation can catch this
    payload["artifact"].dfa.transitions[0, 0] = 77
    _rewrite_consistent(path, payload)
    with pytest.raises(ArtifactValidationError, match="structurally invalid"):
        load_artifact(tmp_path, compiled.key)


def test_load_artifact_rejects_unsound_partition(compiled, tmp_path):
    save_artifact(compiled, tmp_path)
    path = artifact_path(tmp_path, compiled.key)
    payload = pickle.loads(path.read_bytes())
    bad = tampered_partition([{0, 1}, {1, 2}], num_states=3)
    object.__setattr__(payload["artifact"].merge, "partition", bad)
    _rewrite_consistent(path, payload)
    with pytest.raises(ArtifactValidationError, match="unsound"):
        load_artifact(tmp_path, compiled.key)


def test_verify_artifact_file_reports_envelope_and_content(compiled, tmp_path):
    path = save_artifact(compiled, tmp_path)
    assert not error_codes(verify_artifact_file(path))

    payload = pickle.loads(path.read_bytes())
    payload["format_version"] = 99
    path.write_bytes(pickle.dumps(payload))
    assert "K109" in error_codes(verify_artifact_file(path))

    path.write_bytes(b"not a pickle")
    assert "K110" in error_codes(verify_artifact_file(path))


def test_envelope_dense_dtype_mismatch_is_k111(compiled, tmp_path):
    path = save_artifact(compiled, tmp_path)
    payload = pickle.loads(path.read_bytes())
    assert payload["dense_dtype"] == "uint8"  # mod3: 3 states narrow to u8
    payload["dense_dtype"] = "uint16"
    path.write_bytes(pickle.dumps(payload))
    assert "K111" in error_codes(verify_artifact_file(path))


def test_version_skew_names_missing_fields_and_gates_their_checks(
        compiled, tmp_path):
    path = save_artifact(compiled, tmp_path)
    original = path.read_bytes()

    # a v2 envelope predates the prefilter field: the skew diagnostic
    # must say exactly that (with the remedy), and K133 must not fire
    # against a field the format never carried
    payload = pickle.loads(original)
    payload["format_version"] = 2
    del payload["prefilter"]
    path.write_bytes(pickle.dumps(payload))
    diags = verify_artifact_file(path)
    codes = error_codes(diags)
    assert "K109" in codes
    assert "K133" not in codes
    k109 = next(d for d in diags if d.code == "K109")
    assert "prefilter" in k109.message
    assert "recompile" in k109.message
    assert "dense_dtype" not in k109.message

    # ...but the field v2 *does* carry is still cross-checked
    payload["dense_dtype"] = "uint16"
    path.write_bytes(pickle.dumps(payload))
    assert "K111" in error_codes(verify_artifact_file(path))

    # a v1 envelope predates both fields: named in the skew message,
    # neither envelope cross-check fires
    payload = pickle.loads(original)
    payload["format_version"] = 1
    del payload["dense_dtype"]
    del payload["prefilter"]
    path.write_bytes(pickle.dumps(payload))
    diags = verify_artifact_file(path)
    codes = error_codes(diags)
    assert "K109" in codes
    assert codes.isdisjoint({"K111", "K133"})
    k109 = next(d for d in diags if d.code == "K109")
    assert "dense_dtype" in k109.message and "prefilter" in k109.message

    # an unknown version gets the generic message and the full battery
    # (a missing dense_dtype is not excused for a version this build
    # has never heard of)
    payload = pickle.loads(original)
    payload["format_version"] = 99
    del payload["dense_dtype"]
    path.write_bytes(pickle.dumps(payload))
    diags = verify_artifact_file(path)
    codes = error_codes(diags)
    assert "K109" in codes
    k109 = next(d for d in diags if d.code == "K109")
    assert "recompile" not in k109.message
    assert "K111" in codes


# ----------------------------------------------------------------------
# CLI, docs and the shipped tree
# ----------------------------------------------------------------------
def test_cli_check_artifact_exit_codes(compiled, tmp_path):
    from repro.cli import main

    path = save_artifact(compiled, tmp_path)
    assert main(["check", "artifact", str(path)]) == 0

    payload = pickle.loads(path.read_bytes())
    payload["artifact"].rows[0][0] = (payload["artifact"].rows[0][0] + 1) % 3
    _rewrite_consistent(path, payload)
    assert main(["check", "artifact", str(path)]) == 1


def test_cli_check_lint_exit_codes(tmp_path):
    from repro.cli import main

    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    assert main(["check", "lint", str(clean)]) == 0

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert main(["check", "lint", str(dirty)]) == 1


def test_every_registered_code_is_documented():
    text = DOCS.read_text(encoding="utf-8")
    missing = [code for code in CODES if code not in text]
    assert not missing, f"codes missing from docs/static_analysis.md: {missing}"


def test_shipped_tree_lints_clean():
    import repro

    diags = lint_paths([Path(repro.__file__).parent])
    assert not has_errors(diags), "\n".join(
        f"{d.where}: {d.code} {d.message}"
        for d in diags if d.severity == "error")
