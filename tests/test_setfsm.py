"""Unit tests for the set(N)->set(M) primitive."""

import numpy as np
import pytest

from repro.automata.builders import cycle_dfa, random_dfa
from repro.core.setfsm import SetFsm
from repro.regex.compile import compile_ruleset


class TestStep:
    def test_m_never_exceeds_n(self, rng):
        """The convergence property: set size is non-increasing."""
        dfa = random_dfa(12, 3, rng)
        machine = SetFsm(dfa)
        states = machine.full_set()
        for sym in rng.integers(0, 3, size=40):
            nxt = machine.step(states, int(sym))
            assert nxt.size <= states.size
            states = nxt

    def test_singleton_step_is_state_to_state(self, mod3_dfa):
        machine = SetFsm(mod3_dfa)
        result = machine.step(np.array([1], dtype=np.int32), 0)
        assert result.tolist() == [mod3_dfa.step(1, 0)]

    def test_m_equal_one_computes_all_paths(self, small_ruleset_dfa, rng):
        """When M=1, every member provably mapped to the same state."""
        machine = SetFsm(small_ruleset_dfa)
        word = rng.integers(97, 123, size=400)
        final, sizes = machine.run(machine.full_set(), word, record_sizes=True)
        if final.size == 1:
            target = int(final[0])
            for q in range(small_ruleset_dfa.num_states):
                assert small_ruleset_dfa.run(word, state=q) == target

    def test_permutation_dfa_never_converges(self):
        dfa = cycle_dfa(5)
        machine = SetFsm(dfa)
        final = machine.run(machine.full_set(), [0] * 50)
        assert final.size == 5


class TestRun:
    def test_record_sizes_length(self, mod3_dfa):
        machine = SetFsm(mod3_dfa)
        _, sizes = machine.run(machine.full_set(), [0, 1, 0], record_sizes=True)
        assert len(sizes) == 3

    def test_make_set_dedups(self, mod3_dfa):
        machine = SetFsm(mod3_dfa)
        assert machine.make_set([2, 0, 2, 0]).tolist() == [0, 2]

    def test_converged_predicate(self, mod3_dfa):
        machine = SetFsm(mod3_dfa)
        assert machine.converged(np.array([1]))
        assert not machine.converged(np.array([1, 2]))

    def test_result_is_union_of_individual_runs(self, rng):
        dfa = random_dfa(10, 4, rng)
        machine = SetFsm(dfa)
        word = rng.integers(0, 4, size=25)
        start = machine.make_set([0, 4, 7])
        got = machine.run(start, word)
        want = sorted({int(dfa.run(word, state=int(q))) for q in [0, 4, 7]})
        assert got.tolist() == want


class TestLookback:
    def test_lookback_contains_true_state(self, small_ruleset_dfa, rng):
        """The boundary state after any prefix lies in the lookback set."""
        machine = SetFsm(small_ruleset_dfa)
        word = rng.integers(97, 123, size=100)
        suffix = word[-20:]
        possible = machine.lookback(suffix)
        # whatever state the machine was in 20 symbols ago, the final
        # state is in the image of the suffix
        for q in range(small_ruleset_dfa.num_states):
            final = small_ruleset_dfa.run(suffix, state=q)
            assert final in possible.tolist()

    def test_empty_suffix_returns_all(self, mod3_dfa):
        machine = SetFsm(mod3_dfa)
        assert machine.lookback([]).tolist() == [0, 1, 2]


class TestReports:
    def test_ambiguity_flag_on_two_accepting(self):
        # two patterns whose accepting states can be co-active in a set run
        dfa = compile_ruleset(["aa", "ba"])
        machine = SetFsm(dfa)
        # starting from all states, reading 'a' puts both the "after aa"
        # and "after ba" accepting states in the set
        final, sizes, ambiguous = machine.run_with_reports(
            machine.full_set(), b"a"
        )
        n_acc = int(np.count_nonzero(dfa.accepting_mask[final]))
        assert ambiguous == (n_acc > 1)

    def test_no_ambiguity_without_accepting(self, mod3_dfa):
        machine = SetFsm(mod3_dfa)
        # accepting state 0 alone can never trigger multi-accept ambiguity
        _, _, ambiguous = machine.run_with_reports(machine.full_set(), [0, 1])
        assert not ambiguous
