"""Integration tests for the experiment harness (scaled-down suite runs)."""

import pytest

from repro.analysis.experiments import (
    MERGE_STRATEGIES,
    cse_partition_for,
    evaluate_suite,
    fig8_mfp_frequency,
    fig15_lbe_lookback,
    fig16_cse_r0_by_merge,
    table1,
    table2,
    unit_census,
)
from repro.workloads.suite import benchmark_names

# Scale 0.25 shrinks FSM counts and input lengths so these integration
# tests stay fast; the full-scale run lives in benchmarks/.
SCALE = 0.25
FAST_NAMES = ("ExactMatch", "Ranges1")


class TestTables:
    def test_table1_rows(self):
        rows = table1(scale=SCALE)
        assert len(rows) == 13
        names = [r["Benchmark"] for r in rows]
        assert names == benchmark_names()
        for row in rows:
            assert row["#State"] > 0
            assert row["#FSM"] >= 1

    def test_table2_taxonomy(self):
        rows = table2()
        assert [r["FSM"] for r in rows] == ["Baseline", "LBE", "PAP", "CSE"]
        cse = rows[-1]
        assert cse["Basic FSM"] == "set FSM"
        assert "convergence set" in cse["Static Optimization"]


class TestCensusAndPartitions:
    def test_census_cached(self):
        c1 = unit_census("ExactMatch", 0, SCALE)
        c2 = unit_census("ExactMatch", 0, SCALE)
        assert c1 is c2

    def test_partition_strategies_ordered(self):
        """baseline <= 99% <= 100% in block count."""
        blocks = [
            cse_partition_for("ExactMatch", 0, strategy, SCALE).num_blocks
            for strategy in MERGE_STRATEGIES
        ]
        assert blocks[0] <= blocks[1] <= blocks[2]

    def test_table1_strategy(self):
        p = cse_partition_for("ExactMatch", 0, "table1", SCALE)
        assert p.num_blocks >= 1

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            cse_partition_for("ExactMatch", 0, "110%", SCALE)


class TestSuiteEvaluation:
    def test_sweep_structure_and_oracle(self):
        sweep = evaluate_suite(scale=SCALE, names=FAST_NAMES)
        assert set(sweep) == set(FAST_NAMES)
        for stats in sweep.values():
            assert {"Baseline", "LBE", "PAP", "CSE"} <= set(stats)
            assert stats["Baseline"].speedup == pytest.approx(1.0)

    def test_sweep_cached(self):
        s1 = evaluate_suite(scale=SCALE, names=FAST_NAMES)
        s2 = evaluate_suite(scale=SCALE, names=FAST_NAMES)
        assert s1 is s2

    def test_cse_at_least_half_ideal_on_easy_benchmarks(self):
        sweep = evaluate_suite(scale=SCALE, names=FAST_NAMES)
        for name, stats in sweep.items():
            ideal = stats["CSE"].ideal_speedup
            assert stats["CSE"].speedup >= 0.5 * ideal, name

    def test_include_enumerative_adds_the_dpfsm_baseline(self):
        sweep = evaluate_suite(scale=SCALE, names=("ExactMatch",),
                               include_enumerative=True)
        stats = sweep["ExactMatch"]
        assert "Enumerative" in stats
        # full enumeration starts from every state: R0 is the state count
        assert stats["Enumerative"].r0 > stats["CSE"].r0
        # and CSE never loses to it
        assert stats["CSE"].speedup >= stats["Enumerative"].speedup - 1e-9


class TestFigures:
    def test_fig8_frequencies_in_range(self):
        freqs = fig8_mfp_frequency(scale=SCALE)
        assert set(freqs) == set(benchmark_names())
        assert all(0 < f <= 1 for f in freqs.values())

    def test_fig15_sweep_shape(self):
        data = fig15_lbe_lookback(lengths=(10, 30), scale=SCALE,
                                  names=FAST_NAMES)
        for name in FAST_NAMES:
            assert set(data[name]) == {10, 30}
            assert all(v > 0 for v in data[name].values())

    def test_fig16_shape(self):
        data = fig16_cse_r0_by_merge(scale=SCALE)
        for name in benchmark_names():
            row = data[name]
            assert row["baseline"] <= row["99%"] <= row["100%"]
