"""Second round of property-based tests: the extension modules.

The first round (test_properties.py) covers the paper-core invariants;
this file extends the same treatment to recovery, streaming, the prefix
engine and the software prototype.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import Dfa
from repro.core.partition import StatePartition
from repro.core.recovery import recover_reports
from repro.engines.prefix import PrefixEngine
from repro.software import software_cse_scan
from repro.stream import StreamScanner


@st.composite
def dfas(draw, max_states=10, max_alphabet=3):
    n = draw(st.integers(2, max_states))
    k = draw(st.integers(1, max_alphabet))
    table = draw(
        st.lists(
            st.lists(st.integers(0, n - 1), min_size=n, max_size=n),
            min_size=k,
            max_size=k,
        )
    )
    start = draw(st.integers(0, n - 1))
    accepting = draw(st.sets(st.integers(0, n - 1), max_size=n))
    return Dfa(np.asarray(table, dtype=np.int32), start, accepting)


@st.composite
def dfa_and_word(draw, max_len=80):
    dfa = draw(dfas())
    word = draw(
        st.lists(st.integers(0, dfa.alphabet_size - 1), min_size=0,
                 max_size=max_len)
    )
    return dfa, np.asarray(word, dtype=np.int64)


@st.composite
def partitions_for(draw, n):
    labels = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    return StatePartition.from_labels(labels)


class TestRecoveryProperties:
    @given(dfa_and_word(), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_recovery_reports_exact(self, dw, n_segments):
        dfa, word = dw
        recovered = recover_reports(dfa, word, n_segments)
        assert recovered.reports == dfa.run_reports(word)
        assert recovered.final_state == dfa.run(word)

    @given(dfa_and_word(), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_skip_flag_invariant(self, dw, n_segments):
        dfa, word = dw
        with_skip = recover_reports(dfa, word, n_segments, skip_reportless=True)
        without = recover_reports(dfa, word, n_segments, skip_reportless=False)
        assert with_skip.reports == without.reports


class TestStreamProperties:
    @given(dfa_and_word(), st.lists(st.integers(1, 20), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_any_chunking_equals_one_shot(self, dw, chunk_sizes):
        dfa, word = dw
        scanner = StreamScanner(dfa)
        pos = 0
        idx = 0
        while pos < word.size:
            size = chunk_sizes[idx % len(chunk_sizes)]
            scanner.feed(word[pos:pos + size])
            pos += size
            idx += 1
        state, reports = scanner.finish()
        assert state == dfa.run(word)
        assert reports == dfa.run_reports(word)


class TestPrefixProperties:
    @given(dfa_and_word(), st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_prefix_equals_sequential(self, dw, n_segments):
        dfa, word = dw
        engine = PrefixEngine(dfa, n_segments=n_segments)
        assert engine.run(word).final_state == dfa.run(word)


class TestSoftwareProperties:
    @given(dfa_and_word(max_len=60), st.integers(2, 4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_software_cse_equals_tight_loop(self, dw, n_segments, data):
        dfa, word = dw
        partition = data.draw(partitions_for(dfa.num_states))
        run = software_cse_scan(dfa, word, partition, n_segments=n_segments)
        assert run.final_state == dfa.run(word)
