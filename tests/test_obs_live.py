"""Live observability plane: endpoint, traces, flight recorder, top.

Covers the acceptance surface of the live plane:

- the HTTP endpoint serves spec-compliant Prometheus text,
  ``/snapshot.json``, ``/trace.json``, ``/flight.json``, ``/healthz``;
- during a sharded fleet scan ``/metrics`` carries the shard gauges;
- one ``trace_id`` spans the parent and every ``segment_pool`` worker,
  reassembling into a single Chrome trace;
- the flight recorder rings are bounded, dump to JSON, and arm the
  dump-on-exception postmortem;
- the sampling profiler emits folded-stack flamegraph text;
- ``repro top`` renders snapshot deltas without a terminal;
- per-metric histogram bucket ladders stay exactly mergeable;
- ``MetricRegistry.merge`` is associative and commutative over random
  snapshots (hypothesis).
"""

from __future__ import annotations

import io
import json
import os
import re
import sys
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.automata.builders import random_dfa
from repro.cli import main
from repro.core.partition import StatePartition
from repro.obs.live.flight import FlightRecorder
from repro.obs.live.top import histogram_quantile, render_top, top
from repro.obs.registry import DEFAULT_BUCKETS, MetricRegistry, SpanEvent
from repro.regex.compile import compile_ruleset
from repro.software import segment_pool, software_cse_scan
from repro.stream import CHUNK_LATENCY_BUCKETS, FleetScanner, StreamScanner


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with the live plane fully disarmed."""
    obs.disable_flight()
    obs.disable()
    yield
    obs.disable_flight()
    obs.disable()


@pytest.fixture
def dfa(rng):
    return random_dfa(16, 8, rng)


@pytest.fixture
def word(rng):
    return rng.integers(0, 8, size=6000)


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


# one full sample line: name{labels} value  (labels optional)
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$"
)


def parse_prometheus(text):
    """Validate + index the exposition text: family -> help/type/samples."""
    families = {}
    for line in text.splitlines():
        assert line.strip(), "no blank lines in the exposition"
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"help": line.split(" ", 3)[3], "samples": []}
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert "type" not in families[name], f"duplicate TYPE for {name}"
            families[name]["type"] = kind
        else:
            assert _SAMPLE_RE.match(line), f"unparseable sample: {line!r}"
            sample_name = line.split("{", 1)[0].split(" ", 1)[0]
            family = sample_name
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix) and family[: -len(suffix)] in families:
                    family = family[: -len(suffix)]
            assert family in families, f"sample before HELP/TYPE: {line!r}"
            families[family]["samples"].append(line)
    for name, fam in families.items():
        assert "type" in fam, f"{name} has HELP but no TYPE"
    return families


class TestLiveServer:
    def test_endpoints(self):
        with obs.using() as registry:
            registry.counter("software_scans_total").inc(3)
            registry.histogram("stream_chunk_seconds").observe(0.01)
            registry.record_span("stream.feed", 1.0, 0.01, chunk=1)
            with obs.ObsServer(registry) as server:
                status, headers, body = fetch(server.url + "/metrics")
                assert status == 200
                assert headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                families = parse_prometheus(body.decode())
                assert "software_scans_total" in families

                status, _, body = fetch(server.url + "/snapshot.json")
                snap = json.loads(body)
                assert {m["name"] for m in snap["metrics"]} >= {
                    "software_scans_total", "stream_chunk_seconds",
                }

                status, _, body = fetch(server.url + "/trace.json")
                events = json.loads(body)["traceEvents"]
                assert [e["name"] for e in events] == ["stream.feed"]

                status, _, body = fetch(server.url + "/healthz")
                health = json.loads(body)
                assert health["status"] == "ok" and health["recording"]

    def test_not_found_and_flight_absent(self):
        with obs.using() as registry:
            with obs.ObsServer(registry) as server:
                with pytest.raises(urllib.error.HTTPError) as err:
                    fetch(server.url + "/nope")
                assert err.value.code == 404
                with pytest.raises(urllib.error.HTTPError) as err:
                    fetch(server.url + "/flight.json")
                assert err.value.code == 404

    def test_request_counter(self):
        with obs.using() as registry:
            with obs.ObsServer(registry) as server:
                fetch(server.url + "/healthz")
                fetch(server.url + "/healthz")
                fetch(server.url + "/metrics")
            assert registry.get(
                "obs_live_requests_total", path="/healthz"
            ).value == 2
            assert registry.get(
                "obs_live_requests_total", path="/metrics"
            ).value == 1

    def test_serve_enables_when_disabled(self):
        assert not obs.is_enabled()
        server = obs.serve(port=0)
        try:
            assert obs.is_enabled()
            status, _, body = fetch(server.url + "/healthz")
            assert json.loads(body)["recording"]
        finally:
            server.stop()

    def test_metrics_during_fleet_scan_has_shard_gauges(self, rng):
        dfas = [compile_ruleset([w]) for w in ("cat", "dog", "emu", "fox")]
        fleet = FleetScanner(dfas, n_segments=4, shard=True)
        assert fleet.plan is not None and fleet.plan.n_shards >= 1
        word = rng.integers(0, 256, size=4000)
        with obs.using() as registry:
            with obs.ObsServer(registry) as server:
                fleet.scan_wallclock(word, verify=False)
                _, _, body = fetch(server.url + "/metrics")
        families = parse_prometheus(body.decode())
        shard_samples = families["fleet_shard_wallclock_throughput"]["samples"]
        assert len(shard_samples) == fleet.plan.n_shards
        assert all('fsm="' in s for s in shard_samples)


class TestPrometheusSpec:
    def test_label_escaping(self):
        registry = MetricRegistry()
        registry.gauge(
            "weird", path='C:\\tmp\n"x"'
        ).set(1)
        text = obs.prometheus_text(registry)
        families = parse_prometheus(text)
        (sample,) = families["weird"]["samples"]
        assert '\\\\tmp' in sample and '\\n' in sample and '\\"x\\"' in sample
        assert "\n" not in sample

    def test_histogram_exposition(self):
        registry = MetricRegistry()
        h = registry.histogram("lat", buckets=(0.3, 1.0), op="scan")
        for v in (0.25, 0.5, 0.5, 5.0):
            h.observe(v)
        families = parse_prometheus(obs.prometheus_text(registry))
        samples = families["lat"]["samples"]
        assert families["lat"]["type"] == "histogram"
        buckets = [s for s in samples if s.startswith("lat_bucket")]
        # cumulative and ending in +Inf == _count
        assert buckets[0].endswith(" 1")      # le=0.3
        assert buckets[1].endswith(" 3")      # le=1.0
        assert 'le="+Inf"' in buckets[2] and buckets[2].endswith(" 4")
        assert any(s.startswith("lat_sum{") and s.endswith(" 6.25")
                   for s in samples)
        assert any(s.startswith("lat_count{") and s.endswith(" 4")
                   for s in samples)

    def test_every_family_has_help_and_type_once(self):
        registry = MetricRegistry()
        registry.counter("software_scans_total", backend="a").inc()
        registry.counter("software_scans_total", backend="b").inc()
        registry.counter("not_in_help_table_total").inc()
        text = obs.prometheus_text(registry)
        assert text.count("# HELP software_scans_total") == 1
        assert text.count("# TYPE software_scans_total") == 1
        families = parse_prometheus(text)
        assert "unregistered help" in families["not_in_help_table_total"]["help"]
        assert len(families["software_scans_total"]["samples"]) == 2


class TestTracePropagation:
    def test_trace_scope_mints_and_inherits(self):
        assert obs.current_trace_id() is None
        with obs.trace() as outer:
            assert obs.current_trace_id() == outer
            with obs.trace() as inner:
                assert inner == outer  # inherits by default
            with obs.trace(inherit=False) as fresh:
                assert fresh != outer
        assert obs.current_trace_id() is None

    def test_spans_carry_trace_id(self):
        with obs.using() as registry:
            with obs.trace() as tid:
                with obs.span("software.scan", backend="python"):
                    pass
            with obs.span("untraced"):
                pass
        spans = {s.name: s for s in registry.spans}
        assert spans["software.scan"].trace_id == tid
        assert spans["untraced"].trace_id is None
        # chrome trace filters by trace id and surfaces it in args
        events = obs.chrome_trace(registry.snapshot(), trace_id=tid)
        assert [e["name"] for e in events["traceEvents"]] == ["software.scan"]
        assert events["traceEvents"][0]["args"]["trace_id"] == tid

    def test_span_trace_id_survives_snapshot_roundtrip(self):
        event = SpanEvent(name="x", ts=1.0, duration=0.5, pid=1, tid=2,
                          args={"a": 1}, trace_id="abc123")
        assert SpanEvent.from_dict(event.to_dict()) == event
        plain = SpanEvent(name="y", ts=1.0, duration=0.5, pid=1, tid=2)
        assert "trace_id" not in plain.to_dict()
        assert SpanEvent.from_dict(plain.to_dict()).trace_id is None

    @pytest.mark.slow
    def test_pool_spans_share_one_trace(self, dfa, word):
        partition = StatePartition.discrete(dfa.num_states)
        with obs.using() as registry:
            with segment_pool(dfa, max_workers=2) as executor:
                software_cse_scan(dfa, word, partition, n_segments=4,
                                  executor=executor, backend="python")
        spans = [s for s in registry.spans if s.trace_id is not None]
        trace_ids = {s.trace_id for s in spans}
        assert len(trace_ids) == 1
        (tid,) = trace_ids
        segment_spans = [s for s in spans if s.name == "software.segment"]
        assert len(segment_spans) == 4  # scalar segment 0 + 3 enumerative
        worker_spans = [s for s in segment_spans
                        if s.args.get("worker")]
        assert len(worker_spans) == 3
        assert os.getpid() not in {s.pid for s in worker_spans}
        scan_span = next(s for s in spans if s.name == "software.scan")
        assert scan_span.trace_id == tid
        events = obs.chrome_trace(registry.snapshot(), trace_id=tid)
        assert len(events["traceEvents"]) == len(spans)


class TestFlightRecorder:
    def test_ring_bounds_and_dropped(self):
        flight = FlightRecorder(max_spans=4, max_scans=2)
        for i in range(7):
            flight.record_span(
                SpanEvent(name=f"s{i}", ts=float(i), duration=0.0,
                          pid=1, tid=1)
            )
            flight.record_scan(kind="software", i=i)
        snap = flight.snapshot()
        assert len(snap["spans"]) == 4 and len(flight) == 4
        assert [s["name"] for s in snap["spans"]] == ["s3", "s4", "s5", "s6"]
        assert snap["dropped_spans"] == 3
        assert [s["i"] for s in snap["scans"]] == [5, 6]

    def test_enable_requires_registry(self):
        with pytest.raises(RuntimeError):
            obs.enable_flight()

    def test_scan_summaries_from_software_scan(self, dfa, word):
        partition = StatePartition.discrete(dfa.num_states)
        with obs.using() as registry:
            flight = obs.enable_flight()
            software_cse_scan(dfa, word, partition, n_segments=4,
                              backend="python")
            snap = flight.snapshot()
        scans = [s for s in snap["scans"] if s["kind"] == "software"]
        assert len(scans) == 1
        record = scans[0]
        assert record["backend"] == "python"
        assert record["n_symbols"] == len(word)
        assert record["trace_id"]
        # the registry's spans also landed in the ring via the observer
        assert any(s["name"] == "software.scan" for s in snap["spans"])
        assert registry is not None

    def test_dump_and_format_tail(self, tmp_path):
        flight = FlightRecorder()
        flight.record_scan(kind="fleet", n_shards=2)
        flight.record_span(SpanEvent(name="fleet.scan", ts=1.0,
                                     duration=0.002, pid=7, tid=1,
                                     trace_id="t1"))
        path = flight.dump(tmp_path / "flight.json", reason="test")
        payload = json.loads(path.read_text())
        assert payload["reason"] == "test"
        text = obs.format_tail(payload)
        assert "kind=fleet" in text and "fleet.scan" in text
        assert "trace=t1" in text
        assert "empty" in obs.format_tail({"spans": [], "scans": []})

    def test_excepthook_dumps_on_exception(self, tmp_path):
        target = tmp_path / "post.json"
        with obs.using():
            obs.enable_flight()
            obs.record_scan(kind="software", backend="dense")
            previous = obs.install_excepthook(path=target)
            try:
                hook = sys.excepthook
                hook(ValueError, ValueError("boom"), None)
            finally:
                sys.excepthook = previous
        payload = json.loads(target.read_text())
        assert payload["reason"] == "ValueError: boom"
        assert payload["scans"][0]["backend"] == "dense"

    def test_flight_served_when_armed(self):
        with obs.using() as registry:
            obs.enable_flight()
            obs.record_scan(kind="stream", chunk=1)
            with obs.ObsServer(registry) as server:
                _, _, body = fetch(server.url + "/flight.json")
        assert json.loads(body)["scans"][0]["kind"] == "stream"


class TestProfiler:
    def test_folded_output(self):
        def busy(deadline):
            import time
            total = 0.0
            while time.perf_counter() < deadline:
                total += sum(range(500))
            return total

        import time
        with obs.using() as registry:
            with obs.profile(interval=0.001) as prof:
                busy(time.perf_counter() + 0.25)
        assert prof.n_samples > 0
        folded = prof.folded()
        for line in folded.splitlines():
            assert re.match(r"^\S.* \d+$", line)
        assert any("busy" in stack for stack in prof.samples)
        leaves = dict(prof.hotspots(5))
        assert sum(leaves.values()) <= prof.n_samples
        assert registry.get("obs_profiler_samples_total").value \
            == prof.n_samples

    def test_stop_idempotent(self):
        prof = obs.SamplingProfiler(interval=0.001)
        prof.start()
        prof.stop()
        prof.stop()
        assert prof.folded() == "" or prof.n_samples >= 0


class TestTop:
    def test_histogram_quantile(self):
        metric = {
            "count": 10, "max": 9.0,
            "buckets": [0.1, 1.0, 5.0],
            "bucket_counts": [5, 3, 1],
        }
        assert histogram_quantile(metric, 0.5) == 0.1
        assert histogram_quantile(metric, 0.8) == 1.0
        assert histogram_quantile(metric, 0.99) == 9.0  # +Inf -> max
        assert histogram_quantile({"count": 0}, 0.5) is None

    def test_render_and_loop_with_callable_source(self):
        def snap_at(symbols):
            registry = MetricRegistry()
            registry.counter("software_symbols_total").inc(symbols)
            registry.counter("kernels_positions_total",
                             backend="dense").inc(symbols)
            registry.gauge("fleet_shard_throughput", shard=0).set(1e6)
            h = registry.histogram("stream_chunk_seconds")
            h.observe(0.002)
            return registry.snapshot()

        snapshots = [snap_at(0), snap_at(1_000_000), snap_at(3_000_000)]
        frames = iter(snapshots)
        out = io.StringIO()
        rendered = top(lambda: next(frames), interval=0.0, iterations=3,
                       out=out, clear=False)
        assert rendered == 3
        text = out.getvalue()
        assert "repro top" in text
        assert "positions by backend" in text and "dense" in text
        assert "fleet shards:" in text and "shard 0" in text
        assert "chunk latency" in text
        # second frame sees the 1M-symbol delta
        frame = render_top(snapshots[0], snapshots[1], dt=1.0, tick=1)
        assert "1.00 Msym/s" in frame

    def test_backend_decisions_and_prefilter_rows(self):
        registry = MetricRegistry()
        registry.counter("kernels_backend_resolved_total", requested="auto",
                         backend="prefilter", reason="literal-certified").inc(3)
        registry.counter("kernels_backend_resolved_total", requested="dense",
                         backend="dense", reason="explicit").inc()
        registry.counter("kernels_prefilter_skipped_bytes_total").inc(4096)
        registry.counter("kernels_prefilter_windows_total").inc(4)
        registry.counter("kernels_prefilter_fallbacks_total").inc(1)
        frame = render_top(None, registry.snapshot(), dt=1.0)
        assert "backend decisions:" in frame
        assert "resolve auto->prefilter" in frame
        assert "x3" in frame and "(literal-certified)" in frame
        assert "resolve dense->dense" in frame and "(explicit)" in frame
        assert "prefilter" in frame and "fallbacks 1" in frame

    def test_file_source(self, tmp_path):
        registry = MetricRegistry()
        registry.counter("software_scans_total").inc()
        path = tmp_path / "snap.json"
        obs.write_metrics(registry.snapshot(), path)
        out = io.StringIO()
        assert top(str(path), interval=0.0, iterations=2, out=out,
                   clear=False) == 2
        assert "repro top" in out.getvalue()


class TestBucketOverrides:
    def test_call_site_ladder(self):
        with obs.using() as registry:
            obs.histogram("kernels_batch_seconds",
                          buckets=(0.5, 1.0)).observe(0.7)
            metric = registry.get("kernels_batch_seconds")
        assert metric.buckets == (0.5, 1.0)
        assert metric.bucket_counts == [0, 1, 0]  # le=0.5, le=1.0, +Inf

    def test_rebucket_only_when_empty(self):
        registry = MetricRegistry()
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        registry.histogram("lat", buckets=(0.5, 5.0))  # empty: adopts
        assert h.buckets == (0.5, 5.0)
        h.observe(0.7)
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(9.0,))
        # same ladder is always fine
        assert registry.histogram("lat", buckets=(0.5, 5.0)) is h

    def test_merge_adopts_buckets_into_empty(self):
        worker = MetricRegistry()
        worker.histogram("lat", buckets=(0.25, 0.75)).observe(0.5)
        parent = MetricRegistry()
        parent.histogram("lat")  # default ladder, no observations
        parent.merge(worker.snapshot())
        merged = parent.get("lat")
        assert merged.buckets == (0.25, 0.75)
        assert merged.bucket_counts == [0, 1, 0] and merged.count == 1

    def test_stream_uses_chunk_ladder(self, dfa, rng):
        scanner = StreamScanner(dfa, backend="python")
        with obs.using() as registry:
            scanner.feed(rng.integers(0, 8, size=100))
        metric = registry.get("stream_chunk_seconds")
        assert metric.buckets == CHUNK_LATENCY_BUCKETS
        assert metric.buckets[0] == pytest.approx(1e-5)

    @pytest.mark.slow
    def test_pool_merge_stays_exact_with_overrides(self, dfa, word):
        partition = StatePartition.discrete(dfa.num_states)
        with obs.using() as registry:
            with segment_pool(dfa, max_workers=2) as executor:
                software_cse_scan(dfa, word, partition, n_segments=4,
                                  executor=executor, backend="python")
        assert registry.get("software_symbols_total").value == len(word)
        # worker-side counters merged in exactly (3 enumerative segments)
        assert registry.get("software_worker_segments_total").value == 3


# ---------------------------------------------------------------------------
# merge algebra (hypothesis)
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a_total", "b_total", "lat_seconds"])
_labels = st.fixed_dictionaries({}, optional={
    "backend": st.sampled_from(["python", "dense"]),
})

# integer-valued increments/observations keep every sum exact, so the
# algebra holds to the bit (float addition alone is not associative)
_counter_ops = st.lists(
    st.tuples(_names, _labels,
              st.integers(min_value=0, max_value=10**6).map(float)),
    max_size=8,
)
_histogram_ops = st.lists(
    st.tuples(_labels, st.integers(min_value=0, max_value=100).map(float)),
    max_size=8,
)
_span_ops = st.lists(
    st.tuples(st.sampled_from(["scan", "segment"]),
              st.floats(min_value=0, max_value=10, allow_nan=False),
              st.none() | st.text("ab", min_size=1, max_size=4)),
    max_size=4,
)


@st.composite
def snapshots(draw):
    registry = MetricRegistry()
    for name, labels, value in draw(_counter_ops):
        registry.counter(name, **labels).inc(value)
    for labels, value in draw(_histogram_ops):
        registry.histogram("hist_seconds", **labels).observe(value)
    for name, ts, trace_id in draw(_span_ops):
        registry.record_span(name, ts, 0.001, trace_id=trace_id, k=1)
    return registry.snapshot()


def canonical(registry):
    """Order-independent form of a registry's contents."""
    snap = registry.snapshot()
    metrics = sorted(
        (json.dumps(m, sort_keys=True) for m in snap["metrics"])
    )
    spans = sorted(
        (json.dumps(s, sort_keys=True) for s in snap["spans"])
    )
    return metrics, spans


def merged(*snaps):
    registry = MetricRegistry()
    for snap in snaps:
        registry.merge(snap)
    return registry


class TestMergeAlgebra:
    """merge is associative + commutative over counter/histogram/span
    snapshots (gauges are last-writer-wins by design and excluded)."""

    @settings(max_examples=40, deadline=None)
    @given(a=snapshots(), b=snapshots(), c=snapshots())
    def test_associative(self, a, b, c):
        left = merged(merged(a, b).snapshot(), c)
        right = merged(a, merged(b, c).snapshot())
        assert canonical(left) == canonical(right)

    @settings(max_examples=40, deadline=None)
    @given(a=snapshots(), b=snapshots())
    def test_commutative(self, a, b):
        assert canonical(merged(a, b)) == canonical(merged(b, a))

    @settings(max_examples=25, deadline=None)
    @given(a=snapshots())
    def test_identity(self, a):
        empty = MetricRegistry().snapshot()
        assert canonical(merged(a, empty)) == canonical(merged(empty, a))


class TestCliLive:
    @pytest.fixture
    def rules_file(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text("cat\ndog\n")
        return str(path)

    @pytest.fixture
    def input_file(self, tmp_path):
        path = tmp_path / "input.bin"
        path.write_bytes(b"the cat chased the dog " * 100)
        return str(path)

    def test_software_metrics_port_and_profile(self, rules_file, input_file,
                                               tmp_path, capsys):
        folded = tmp_path / "scan.folded"
        code = main([
            "software", rules_file, input_file,
            "--backend", "lockstep", "--segments", "4", "--trivial",
            "--metrics-port", "0", "--profile-out", str(folded),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "live metrics: http://127.0.0.1:" in out
        assert "profile:" in out
        assert folded.exists()
        assert not obs.is_enabled()  # torn down after the run
        assert obs.active_flight() is None

    def test_obs_tail_reads_dump(self, tmp_path, capsys):
        flight = FlightRecorder()
        flight.record_scan(kind="software", backend="dense")
        dump = flight.dump(tmp_path / "flight.json")
        assert main(["obs", "tail", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "kind=software" in out and "backend=dense" in out

    def test_top_iterations(self, tmp_path, capsys):
        registry = MetricRegistry()
        registry.counter("software_symbols_total").inc(10)
        snap = tmp_path / "snap.json"
        obs.write_metrics(registry.snapshot(), snap)
        code = main(["top", str(snap), "--iterations", "1",
                     "--interval", "0", "--no-clear"])
        assert code == 0
        assert "repro top" in capsys.readouterr().out
