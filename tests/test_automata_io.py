"""Unit tests for DFA serialization."""

import numpy as np
import pytest

from repro.automata.io import (
    dfa_from_dict,
    dfa_to_dict,
    load_dfa,
    load_dfa_json,
    save_dfa,
    save_dfa_json,
)
from repro.automata.builders import random_dfa
from repro.regex.compile import compile_ruleset


class TestNpzRoundtrip:
    def test_roundtrip_small(self, mod3_dfa, tmp_path):
        path = tmp_path / "machine.npz"
        save_dfa(mod3_dfa, path)
        assert load_dfa(path) == mod3_dfa

    def test_roundtrip_ruleset(self, small_ruleset_dfa, tmp_path):
        path = tmp_path / "rules.npz"
        save_dfa(small_ruleset_dfa, path)
        loaded = load_dfa(path)
        assert loaded == small_ruleset_dfa
        text = b"the cat sat"
        assert loaded.run_reports(text) == small_ruleset_dfa.run_reports(text)

    def test_roundtrip_random(self, rng, tmp_path):
        for trial in range(3):
            dfa = random_dfa(20, 5, np.random.default_rng(trial))
            path = tmp_path / f"r{trial}.npz"
            save_dfa(dfa, path)
            assert load_dfa(path) == dfa


class TestDictRoundtrip:
    def test_roundtrip(self, mod3_dfa):
        assert dfa_from_dict(dfa_to_dict(mod3_dfa)) == mod3_dfa

    def test_json_file_roundtrip(self, mod3_dfa, tmp_path):
        path = tmp_path / "machine.json"
        save_dfa_json(mod3_dfa, path)
        assert load_dfa_json(path) == mod3_dfa

    def test_version_guard(self, mod3_dfa):
        data = dfa_to_dict(mod3_dfa)
        data["version"] = 0
        with pytest.raises(ValueError, match="version"):
            dfa_from_dict(data)

    def test_shape_guard(self, mod3_dfa):
        data = dfa_to_dict(mod3_dfa)
        data["num_states"] = 99
        with pytest.raises(ValueError, match="shape"):
            dfa_from_dict(data)

    def test_loaded_dfa_usable_in_engine(self, small_ruleset_dfa, tmp_path):
        from repro.engines.sequential import SequentialEngine

        path = tmp_path / "m.npz"
        save_dfa(small_ruleset_dfa, path)
        engine = SequentialEngine(load_dfa(path))
        text = b"hot dog"
        assert engine.run(text).final_state == small_ruleset_dfa.run(text)
