"""Zero-copy ingestion: mmap-backed views through the whole scan stack.

``repro.ingest.open_input`` maps a file once and every consumer slices
the same pages: ``as_symbols`` widens without a ``bytes()`` round-trip,
the prefilter kernel scans the uint8 view directly, and a pooled scan
ships ``(path, offset, length)`` coordinates so workers mmap the file
themselves.  The contract under test is equivalence — an mmap view and
the equivalent ``bytes`` object must produce bit-identical scans on
every backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import as_symbols
from repro.core.partition import StatePartition
from repro.ingest import InputView, byte_view, from_bytes, open_input
from repro.regex.compile import compile_ruleset
from repro.software import segment_pool, software_cse_scan
from repro.workloads import generate_ruleset, literal_payload


@pytest.fixture(scope="module")
def patterns():
    return generate_ruleset("LiteralHeavy", 5, 23)


@pytest.fixture(scope="module")
def literal_dfa(patterns):
    return compile_ruleset(patterns)


@pytest.fixture
def payload_file(tmp_path, patterns):
    data = literal_payload(patterns, 16384, match_density=0.002, seed=41)
    path = tmp_path / "payload.bin"
    path.write_bytes(data)
    return path, data


class TestInputView:
    def test_open_input_maps_file(self, payload_file):
        path, data = payload_file
        with open_input(path) as view:
            assert len(view) == len(data)
            assert bytes(view) == data
            assert view.path == str(path)
            assert view.offset == 0
            assert view.nbytes == len(data)

    def test_view8_is_zero_copy_uint8(self, payload_file):
        path, data = payload_file
        with open_input(path) as view:
            arr = view.view8()
            assert arr.dtype == np.uint8
            assert not arr.flags.writeable
            assert arr.base is not None  # a view, not a copy
            assert bytes(arr[:64]) == data[:64]

    def test_coords_roundtrip(self, payload_file):
        path, data = payload_file
        with open_input(path) as view:
            coords = view.coords()
            assert coords == (str(path), 0, len(data))

    def test_from_bytes_has_no_coords(self):
        view = from_bytes(b"abcdef")
        assert view.coords() is None
        assert bytes(view) == b"abcdef"

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with open_input(path) as view:
            assert len(view) == 0
            assert not view
            assert bytes(view) == b""

    def test_getitem_slices(self, payload_file):
        path, data = payload_file
        with open_input(path) as view:
            assert bytes(view[10:20]) == data[10:20]

    def test_find_single_byte(self, payload_file):
        path, data = payload_file
        with open_input(path) as view:
            needle = data[100:101]
            assert view.find(needle) == data.find(needle)
            assert view.find(b"\x00" * 64) == data.find(b"\x00" * 64)

    def test_numpy_protocol(self, payload_file):
        path, data = payload_file
        with open_input(path) as view:
            arr = np.asarray(view)
            assert arr.dtype == np.uint8
            assert arr.size == len(data)


class TestByteView:
    def test_accepts_byte_likes(self):
        for source in (b"abc", bytearray(b"abc"), memoryview(b"abc"),
                       from_bytes(b"abc"),
                       np.frombuffer(b"abc", dtype=np.uint8)):
            arr = byte_view(source)
            assert arr is not None
            assert arr.dtype == np.uint8
            assert bytes(arr) == b"abc"

    def test_rejects_wide_symbols(self):
        assert byte_view(np.asarray([1, 2, 300], dtype=np.int64)) is None
        assert byte_view([1, 2, 3]) is None

    def test_as_symbols_on_view(self):
        view = from_bytes(bytes(range(8)))
        syms = as_symbols(view)
        assert syms.dtype == np.int64
        assert syms.tolist() == list(range(8))


class TestScanEquivalence:
    @pytest.mark.parametrize(
        "backend", ["python", "lockstep", "dense", "prefilter", "auto"]
    )
    def test_mmap_equals_bytes(self, payload_file, literal_dfa, backend):
        path, data = payload_file
        partition = StatePartition.trivial(literal_dfa.num_states)
        want = software_cse_scan(
            literal_dfa, data, partition, n_segments=4, backend=backend
        )
        with open_input(path) as view:
            got = software_cse_scan(
                literal_dfa, view, partition, n_segments=4, backend=backend
            )
        assert got.final_state == want.final_state
        assert got.backend == want.backend
        assert got.n_symbols == want.n_symbols

    @given(st.binary(min_size=0, max_size=400), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_bytes_vs_view(self, literal_dfa, data, n_segments):
        partition = StatePartition.trivial(literal_dfa.num_states)
        for backend in ("dense", "prefilter"):
            want = software_cse_scan(
                literal_dfa, data, partition,
                n_segments=n_segments, backend=backend,
            ).final_state
            got = software_cse_scan(
                literal_dfa, from_bytes(data), partition,
                n_segments=n_segments, backend=backend,
            ).final_state
            assert got == want


class TestPooledMmapDispatch:
    def test_workers_scan_by_coordinates(self, payload_file, literal_dfa):
        from repro import obs

        path, data = payload_file
        partition = StatePartition.trivial(literal_dfa.num_states)
        want = software_cse_scan(
            literal_dfa, data, partition, n_segments=4, backend="dense"
        ).final_state
        with obs.using() as registry:
            with segment_pool(literal_dfa, max_workers=2) as pool:
                with open_input(path) as view:
                    run = software_cse_scan(
                        literal_dfa, view, partition, n_segments=4,
                        backend="dense", executor=pool,
                    )
            snapshot = registry.snapshot()
        assert run.final_state == want
        names = {m["name"]: m for m in snapshot["metrics"]}
        assert names["software_mmap_scans_total"]["value"] == 1
        assert names["software_mmap_bytes_total"]["value"] >= len(data)
        # no shm segment was populated: coordinates replaced the copy
        assert "software_shm_scans_total" not in names

    def test_pooled_without_coords_uses_shm(self, payload_file, literal_dfa):
        from repro import obs

        _path, data = payload_file
        partition = StatePartition.trivial(literal_dfa.num_states)
        with obs.using() as registry:
            with segment_pool(literal_dfa, max_workers=2) as pool:
                run = software_cse_scan(
                    literal_dfa, data, partition, n_segments=4,
                    backend="dense", executor=pool,
                )
            snapshot = registry.snapshot()
        names = {m["name"]: m for m in snapshot["metrics"]}
        assert "software_mmap_scans_total" not in names
        assert run.final_state == software_cse_scan(
            literal_dfa, data, partition, n_segments=4, backend="dense"
        ).final_state
