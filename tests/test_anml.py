"""Unit tests for the ANML loader."""

import pytest

from repro.regex.compile import compile_ruleset
from repro.workloads.anml import (
    anml_to_nfa,
    load_anml,
    load_anml_dfa,
    parse_symbol_set,
)

# a scan-style 'ab' matcher: start STE on 'a' re-armed at every position
ANML_AB = """
<automata-network id="net">
  <state-transition-element id="q_a" symbol-set="[a]"
                            start-of-data="all-input">
    <activate-on-match element="q_b"/>
  </state-transition-element>
  <state-transition-element id="q_b" symbol-set="[b]">
    <report-on-match/>
  </state-transition-element>
</automata-network>
"""

ANML_ANCHORED = """
<automata-network id="net">
  <state-transition-element id="s0" symbol-set="[x]"
                            start-of-data="start-of-data">
    <activate-on-match element="s1"/>
  </state-transition-element>
  <state-transition-element id="s1" symbol-set="[y]">
    <report-on-match/>
  </state-transition-element>
</automata-network>
"""


class TestParseSymbolSet:
    def test_single_char(self):
        assert parse_symbol_set("a") == frozenset([ord("a")])

    def test_star(self):
        assert len(parse_symbol_set("*")) == 256

    def test_bracket_range(self):
        assert parse_symbol_set("[a-c]") == frozenset(map(ord, "abc"))

    def test_bracket_negation(self):
        symbols = parse_symbol_set("[^a]")
        assert ord("a") not in symbols

    def test_hex_escape(self):
        assert parse_symbol_set(r"\x41") == frozenset([0x41])

    def test_unsupported(self):
        with pytest.raises(ValueError):
            parse_symbol_set("abc")


class TestAnmlToNfa:
    def test_scan_semantics(self):
        nfa = anml_to_nfa(ANML_AB)
        assert nfa.accepts(b"ab")
        assert nfa.accepts(b"zzab")
        assert not nfa.accepts(b"a")
        assert not nfa.accepts(b"ba")

    def test_matches_regex_equivalent(self):
        """The ANML 'ab' scanner equals our compiled scan DFA for 'ab'."""
        dfa_anml = load_anml_dfa(ANML_AB)
        dfa_regex = compile_ruleset(["ab"])
        text = b"xxabyyabz"
        assert (
            [off for off, _ in dfa_anml.run_reports(text)]
            == [off for off, _ in dfa_regex.run_reports(text)]
        )

    def test_anchored_start(self):
        nfa = anml_to_nfa(ANML_ANCHORED)
        assert nfa.accepts(b"xy")
        assert not nfa.accepts(b"zxy")  # start-of-data: position 0 only

    def test_missing_report_rejected(self):
        bad = ANML_AB.replace("<report-on-match/>", "")
        with pytest.raises(ValueError, match="report"):
            anml_to_nfa(bad)

    def test_missing_start_rejected(self):
        bad = ANML_AB.replace(' start-of-data="all-input"', "")
        with pytest.raises(ValueError, match="start"):
            anml_to_nfa(bad)

    def test_unknown_activation_target(self):
        bad = ANML_AB.replace('element="q_b"', 'element="nope"')
        with pytest.raises(ValueError, match="unknown"):
            anml_to_nfa(bad)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            anml_to_nfa("<automata-network/>")

    def test_malformed_xml_rejected_cleanly(self):
        with pytest.raises(ValueError, match="well-formed"):
            anml_to_nfa("this is not xml <at all")

    def test_missing_id_rejected(self):
        bad = ANML_AB.replace('id="q_a" ', "")
        with pytest.raises(ValueError, match="id"):
            anml_to_nfa(bad)


class TestLoadFiles:
    def test_load_from_path(self, tmp_path):
        path = tmp_path / "net.anml"
        path.write_text(ANML_AB)
        nfa = load_anml(path)
        assert nfa.accepts(b"ab")

    def test_load_dfa_from_path(self, tmp_path):
        path = tmp_path / "net.anml"
        path.write_text(ANML_AB)
        dfa = load_anml_dfa(path)
        assert dfa.matches_anywhere(b"zzab")

    def test_load_dfa_from_text(self):
        dfa = load_anml_dfa(ANML_AB)
        assert dfa.matches_anywhere(b"ab")

    def test_dfa_runs_in_engine(self):
        from repro.core.engine import CseEngine
        from repro.core.partition import StatePartition

        dfa = load_anml_dfa(ANML_AB)
        engine = CseEngine(
            dfa, n_segments=4,
            partition=StatePartition.trivial(dfa.num_states),
        )
        text = b"the ab word appears twice: ab." * 10
        assert engine.run(text).final_state == dfa.run(text)
