"""Unit tests for the regex parser."""

import pytest

from repro.regex import charclass as cc
from repro.regex.ast import Alternate, CharClass, Concat, Empty, Repeat
from repro.regex.parser import RegexSyntaxError, parse


class TestAtoms:
    def test_single_char(self):
        node = parse("a").node
        assert isinstance(node, CharClass)
        assert node.symbols == frozenset([ord("a")])

    def test_dot_excludes_newline(self):
        node = parse(".").node
        assert ord("\n") not in node.symbols
        assert ord("a") in node.symbols

    def test_concatenation(self):
        node = parse("ab").node
        assert isinstance(node, Concat)
        assert len(node.parts) == 2

    def test_empty_pattern(self):
        assert isinstance(parse("").node, Empty)

    def test_group(self):
        assert parse("(ab)").node == parse("ab").node

    def test_non_capturing_group(self):
        assert parse("(?:ab)").node == parse("ab").node


class TestEscapes:
    def test_digit_class(self):
        assert parse(r"\d").node.symbols == cc.DIGITS

    def test_negated_word(self):
        assert parse(r"\W").node.symbols == cc.negate(cc.WORD)

    def test_hex_escape(self):
        assert parse(r"\x41").node.symbols == frozenset([0x41])

    def test_bad_hex(self):
        with pytest.raises(RegexSyntaxError):
            parse(r"\xzz")

    def test_escaped_metachar(self):
        assert parse(r"\.").node.symbols == frozenset([ord(".")])

    def test_newline_escape(self):
        assert parse(r"\n").node.symbols == frozenset([10])

    def test_dangling_backslash(self):
        with pytest.raises(RegexSyntaxError):
            parse("ab\\")


class TestQuantifiers:
    def test_star(self):
        node = parse("a*").node
        assert isinstance(node, Repeat)
        assert (node.low, node.high) == (0, None)

    def test_plus(self):
        node = parse("a+").node
        assert (node.low, node.high) == (1, None)

    def test_question(self):
        node = parse("a?").node
        assert (node.low, node.high) == (0, 1)

    def test_exact_count(self):
        node = parse("a{3}").node
        assert (node.low, node.high) == (3, 3)

    def test_range_count(self):
        node = parse("a{2,5}").node
        assert (node.low, node.high) == (2, 5)

    def test_open_count(self):
        node = parse("a{2,}").node
        assert (node.low, node.high) == (2, None)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{5,2}")

    def test_nothing_to_repeat(self):
        with pytest.raises(RegexSyntaxError):
            parse("*a")

    def test_double_quantifier_allowed(self):
        # (a*)* — parsed as nested repeats
        node = parse("a**").node
        assert isinstance(node, Repeat)
        assert isinstance(node.node, Repeat)


class TestClasses:
    def test_simple_class(self):
        assert parse("[abc]").node.symbols == frozenset(map(ord, "abc"))

    def test_range(self):
        assert parse("[a-d]").node.symbols == frozenset(map(ord, "abcd"))

    def test_negated(self):
        symbols = parse("[^a]").node.symbols
        assert ord("a") not in symbols
        assert ord("b") in symbols

    def test_literal_dash_at_end(self):
        assert parse("[a-]").node.symbols == frozenset(map(ord, "a-"))

    def test_literal_bracket_first(self):
        assert parse("[]a]").node.symbols == frozenset(map(ord, "]a"))

    def test_class_with_escape(self):
        assert parse(r"[\d]").node.symbols == cc.DIGITS

    def test_class_escape_dash_is_literal(self):
        # like Python's re, `[\d-z]` is digits plus literal '-' and 'z'
        symbols = parse(r"[\d-z]").node.symbols
        assert symbols == cc.DIGITS | frozenset([ord("-"), ord("z")])

    def test_reversed_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[z-a]")

    def test_unterminated_class(self):
        with pytest.raises(RegexSyntaxError):
            parse("[abc")


class TestAlternation:
    def test_two_options(self):
        node = parse("a|b").node
        assert isinstance(node, Alternate)
        assert len(node.options) == 2

    def test_empty_option(self):
        node = parse("a|").node
        assert isinstance(node, Alternate)
        assert isinstance(node.options[1], Empty)

    def test_precedence_concat_over_alt(self):
        node = parse("ab|cd").node
        assert isinstance(node, Alternate)
        assert all(isinstance(o, Concat) for o in node.options)


class TestAnchors:
    def test_start_anchor(self):
        parsed = parse("^abc")
        assert parsed.anchored_start and not parsed.anchored_end

    def test_end_anchor(self):
        parsed = parse("abc$")
        assert parsed.anchored_end and not parsed.anchored_start

    def test_both_anchors(self):
        parsed = parse("^abc$")
        assert parsed.anchored_start and parsed.anchored_end

    def test_escaped_dollar_not_anchor(self):
        parsed = parse(r"abc\$")
        assert not parsed.anchored_end


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse("(ab")

    def test_unexpected_close(self):
        with pytest.raises(RegexSyntaxError):
            parse("ab)")

    def test_error_reports_position(self):
        with pytest.raises(RegexSyntaxError, match="position"):
            parse("a{x}")
