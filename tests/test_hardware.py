"""Unit tests for the AP cost model."""

import pytest

from repro.hardware.ap import APConfig
from repro.hardware.cost import (
    chunk_overhead_cycles,
    flow_step_cycles,
    parallel_cycles,
    segment_cycles,
    throughput_symbols_per_sec,
)


class TestAPConfig:
    def test_defaults_match_paper(self):
        config = APConfig()
        assert config.cycle_ns == 7.5
        assert config.total_half_cores == 16
        assert config.context_switch_cycles == 3
        assert config.convergence_check_cycles_per_pair == 1

    def test_frozen(self):
        config = APConfig()
        with pytest.raises(Exception):
            config.cycle_ns = 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cycle_ns": 0},
            {"total_half_cores": 0},
            {"symbol_cycles": 0},
            {"check_interval": 0},
            {"context_switch_cycles": -1},
            {"convergence_check_cycles_per_pair": -1},
            {"reeval_cycles_per_cs": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            APConfig(**kwargs)

    def test_hashable_for_caching(self):
        assert hash(APConfig()) == hash(APConfig())


class TestFlowStepCycles:
    def test_single_flow_one_cycle(self):
        assert flow_step_cycles(1, 1, APConfig()) == 1

    def test_multiplexed_flows(self):
        assert flow_step_cycles(4, 1, APConfig()) == 4

    def test_multiple_cores_divide_load(self):
        assert flow_step_cycles(4, 2, APConfig()) == 2
        assert flow_step_cycles(5, 2, APConfig()) == 3  # ceil

    def test_zero_flows_free(self):
        assert flow_step_cycles(0, 1, APConfig()) == 0

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            flow_step_cycles(2, 0, APConfig())


class TestChunkOverhead:
    def test_single_flow_no_overhead(self):
        assert chunk_overhead_cycles(1, 1, APConfig(), checks=True) == 0

    def test_switches_and_checks(self):
        config = APConfig()
        # 4 flows on 1 core: 3 switches * 3 cycles + 2 pair-checks * 1
        assert chunk_overhead_cycles(4, 1, config, checks=True) == 11

    def test_checks_disabled(self):
        assert chunk_overhead_cycles(4, 1, APConfig(), checks=False) == 9

    def test_cores_reduce_switches(self):
        config = APConfig()
        # 4 flows on 2 cores: per-core 2 flows -> 1 switch; checks on flows
        assert chunk_overhead_cycles(4, 2, config, checks=False) == 3


class TestSegmentCycles:
    def test_all_single_flow(self):
        config = APConfig()
        assert segment_cycles([1] * 100, 1, config) == 100

    def test_prologue_added(self):
        config = APConfig()
        assert segment_cycles([1] * 10, 1, config, prologue_cycles=5) == 15

    def test_overhead_charged_per_chunk(self):
        config = APConfig(check_interval=10)
        # 20 symbols at R=2: 40 step cycles + 2 chunks * (3 switch + 1 check)
        assert segment_cycles([2] * 20, 1, config) == 48

    def test_empty_trace(self):
        assert segment_cycles([], 1, APConfig()) == 0


class TestParallelCycles:
    def test_max_of_segments(self):
        assert parallel_cycles([10, 30, 20]) == 30

    def test_serial_tail_added(self):
        assert parallel_cycles([10, 30], serial_tail=5) == 35

    def test_empty(self):
        assert parallel_cycles([], serial_tail=7) == 7


class TestThroughput:
    def test_one_symbol_per_cycle(self):
        config = APConfig(cycle_ns=7.5)
        # 1 sym/cycle at 7.5ns = 133.3M sym/s
        assert throughput_symbols_per_sec(1000, 1000, config) == pytest.approx(
            1 / 7.5e-9
        )

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            throughput_symbols_per_sec(10, 0, APConfig())
