"""Unit tests for the analytic performance model."""

import pytest

from repro.analysis.model import SegmentModel, predict_segment_cycles, predict_speedup
from repro.hardware.ap import APConfig


class TestSegmentModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentModel(r0=0, t_stabilize=5)
        with pytest.raises(ValueError):
            SegmentModel(r0=2, t_stabilize=-1)

    def test_instant_convergence_is_sequential_cost(self):
        model = SegmentModel(r0=1, t_stabilize=0, r_floor=1)
        cycles = predict_segment_cycles(model, 100)
        assert cycles == 100

    def test_permanent_floor_multiplies_cost(self):
        model = SegmentModel(r0=3, t_stabilize=0, r_floor=3)
        cycles = predict_segment_cycles(model, 100)
        assert cycles >= 300  # 3 flows forever

    def test_ramp_charged(self):
        fast = SegmentModel(r0=4, t_stabilize=10, r_floor=1)
        slow = SegmentModel(r0=4, t_stabilize=80, r_floor=1)
        assert (
            predict_segment_cycles(slow, 100)
            > predict_segment_cycles(fast, 100)
        )

    def test_cores_divide_load(self):
        model = SegmentModel(r0=4, t_stabilize=100, r_floor=4)
        one = predict_segment_cycles(model, 100, cores=1)
        two = predict_segment_cycles(model, 100, cores=2)
        assert two < one

    def test_stabilization_clipped_to_segment(self):
        model = SegmentModel(r0=4, t_stabilize=10_000, r_floor=1)
        cycles = predict_segment_cycles(model, 100)
        # never charges beyond the segment itself
        assert cycles <= 100 * 4 + 100  # flows + overhead headroom


class TestPredictSpeedup:
    def test_ideal_case(self):
        model = SegmentModel(r0=1, t_stabilize=0, r_floor=1)
        speedup = predict_speedup(model, input_len=1600, n_segments=16)
        assert speedup == pytest.approx(16.0)

    def test_floor_bounds_speedup(self):
        model = SegmentModel(r0=3, t_stabilize=0, r_floor=3)
        speedup = predict_speedup(model, input_len=1600, n_segments=16)
        assert speedup <= 16 / 3 + 1

    def test_reexec_penalty(self):
        model = SegmentModel(r0=1, t_stabilize=0, r_floor=1)
        clean = predict_speedup(model, 1600, 16, reexec_rate=0.0)
        dirty = predict_speedup(model, 1600, 16, reexec_rate=0.2)
        assert dirty < clean

    def test_more_segments_help_when_convergent(self):
        model = SegmentModel(r0=2, t_stabilize=20, r_floor=1)
        few = predict_speedup(model, 3200, 4)
        many = predict_speedup(model, 3200, 16)
        assert many > few

    def test_invalid_segments(self):
        model = SegmentModel(r0=1, t_stabilize=0)
        with pytest.raises(ValueError):
            predict_speedup(model, 100, 0)

    def test_custom_config_respected(self):
        model = SegmentModel(r0=4, t_stabilize=50, r_floor=2)
        cheap = predict_speedup(model, 1600, 8,
                                config=APConfig(context_switch_cycles=0))
        pricey = predict_speedup(model, 1600, 8,
                                 config=APConfig(context_switch_cycles=30))
        assert cheap >= pricey
