"""Unit tests for the sparse NFA."""

import pytest

from repro.automata.nfa import EPSILON, Nfa


def build_ab_or_ac():
    """NFA for 'ab' | 'ac' with an epsilon fork."""
    nfa = Nfa(256)
    s = [nfa.add_state() for _ in range(6)]
    nfa.set_start(s[0])
    nfa.add_transition(s[0], EPSILON, s[1])
    nfa.add_transition(s[0], EPSILON, s[3])
    nfa.add_transition(s[1], ord("a"), s[2])
    nfa.add_transition(s[2], ord("b"), s[5])
    nfa.add_transition(s[3], ord("a"), s[4])
    nfa.add_transition(s[4], ord("c"), s[5])
    nfa.add_accepting(s[5])
    return nfa


class TestConstruction:
    def test_add_state_returns_sequential_ids(self):
        nfa = Nfa(4)
        assert [nfa.add_state() for _ in range(3)] == [0, 1, 2]

    def test_rejects_bad_symbol(self):
        nfa = Nfa(4)
        q = nfa.add_state()
        with pytest.raises(ValueError):
            nfa.add_transition(q, 4, q)

    def test_epsilon_symbol_allowed(self):
        nfa = Nfa(4)
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_transition(a, EPSILON, b)
        assert b in nfa.epsilon_closure([a])

    def test_rejects_bad_state(self):
        nfa = Nfa(4)
        nfa.add_state()
        with pytest.raises(ValueError):
            nfa.add_transition(0, 0, 5)

    def test_rejects_zero_alphabet(self):
        with pytest.raises(ValueError):
            Nfa(0)

    def test_add_symbols_transition(self):
        nfa = Nfa(8)
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_symbols_transition(a, [1, 3, 5], b)
        assert nfa.transitions[a] == {1: {b}, 3: {b}, 5: {b}}


class TestExecution:
    def test_epsilon_closure_transitive(self):
        nfa = Nfa(2)
        a, b, c = (nfa.add_state() for _ in range(3))
        nfa.add_transition(a, EPSILON, b)
        nfa.add_transition(b, EPSILON, c)
        assert nfa.epsilon_closure([a]) == {a, b, c}

    def test_epsilon_closure_cycle_terminates(self):
        nfa = Nfa(2)
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_transition(a, EPSILON, b)
        nfa.add_transition(b, EPSILON, a)
        assert nfa.epsilon_closure([a]) == {a, b}

    def test_accepts_alternation(self):
        nfa = build_ab_or_ac()
        assert nfa.accepts(b"ab")
        assert nfa.accepts(b"ac")
        assert not nfa.accepts(b"ad")
        assert not nfa.accepts(b"a")
        assert not nfa.accepts(b"abc")

    def test_run_tracks_active_set(self):
        nfa = build_ab_or_ac()
        active = nfa.run(b"a")
        assert len(active) == 2  # both branches armed

    def test_run_without_start_raises(self):
        nfa = Nfa(2)
        nfa.add_state()
        with pytest.raises(RuntimeError):
            nfa.run([0])


class TestUnion:
    def test_union_accepts_either(self):
        u = Nfa.union([build_ab_or_ac(), build_ab_or_ac()])
        assert u.accepts(b"ab")
        assert not u.accepts(b"zz")

    def test_union_disjoint_patterns(self):
        n1 = Nfa(256)
        a, b = n1.add_state(), n1.add_state()
        n1.set_start(a)
        n1.add_transition(a, ord("x"), b)
        n1.add_accepting(b)
        n2 = Nfa(256)
        c, d = n2.add_state(), n2.add_state()
        n2.set_start(c)
        n2.add_transition(c, ord("y"), d)
        n2.add_accepting(d)
        u = Nfa.union([n1, n2])
        assert u.accepts(b"x")
        assert u.accepts(b"y")
        assert not u.accepts(b"z")

    def test_union_alphabet_mismatch(self):
        with pytest.raises(ValueError):
            Nfa.union([Nfa(2), Nfa(4)])

    def test_union_empty_list(self):
        with pytest.raises(ValueError):
            Nfa.union([])

    def test_union_preserves_state_count(self):
        n = build_ab_or_ac()
        u = Nfa.union([n, n])
        assert u.num_states == 1 + 2 * n.num_states
