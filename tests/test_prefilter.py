"""Literal-prefilter fast path: certification, scan equivalence, checks.

The prefilter is the one kernel licensed to *skip input bytes*, so its
tests are adversarial: every claim (home invariance, skip-width
soundness, anchor soundness) is probed with tampered certificates, and
scan outcomes are diffed bit-for-bit against the dense kernel and the
sequential oracle across match densities from zero to adversarially
dense — including payloads built entirely from anchor bytes, where the
prefilter must fall back rather than skip.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import Dfa
from repro.check import has_errors, verify_prefilter
from repro.core.partition import StatePartition
from repro.engines.base import even_boundaries
from repro.kernels import (
    PrefilterTables,
    certify_prefilter,
    derive_prefilter,
    prefilter_scan_scalar,
    run_segments_batch,
)
from repro.kernels.dense import run_segments_dense
from repro.kernels.prefilter import _last_reset, run_segments_prefilter
from repro.regex.compile import compile_ruleset
from repro.software import software_cse_scan
from repro.workloads import generate_ruleset, literal_payload


@pytest.fixture(scope="module")
def literal_dfa():
    return compile_ruleset(generate_ruleset("LiteralHeavy", 6, 11))


@pytest.fixture(scope="module")
def literal_patterns_fixture():
    return generate_ruleset("LiteralHeavy", 6, 11)


def _partition(dfa, n_labels=4, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_labels, dfa.num_states)
    return StatePartition.from_labels(labels.tolist())


class TestCertification:
    def test_literal_ruleset_certifies(self, literal_dfa):
        tables = derive_prefilter(literal_dfa)
        assert tables is not None
        assert tables.skip_width >= 1
        assert 0 < tables.n_anchors <= literal_dfa.alphabet_size // 2
        assert tables.num_states == literal_dfa.num_states

    def test_certificate_passes_verifier(self, literal_dfa):
        tables = derive_prefilter(literal_dfa)
        assert verify_prefilter(tables, literal_dfa) == []

    def test_home_invariance_by_construction(self, literal_dfa):
        t = derive_prefilter(literal_dfa)
        table = literal_dfa.transitions
        non_anchor = np.flatnonzero(~t.anchor_lut)
        assert (table[non_anchor, t.home] == t.home).all()

    def test_skip_width_absorbs_every_state(self, literal_dfa):
        """Brute-force fact 2: any skip_width-long non-anchor word sends
        every state home (sampled words, every start state)."""
        t = derive_prefilter(literal_dfa)
        rng = np.random.default_rng(5)
        non_anchor = np.flatnonzero(~t.anchor_lut)
        for _ in range(20):
            word = non_anchor[rng.integers(0, non_anchor.size, t.skip_width)]
            for q in range(literal_dfa.num_states):
                assert literal_dfa.run(word, state=q) == t.home

    def test_permutation_dfa_rejected(self):
        """A permutation machine has no absorbing home; never certifies."""
        table = np.asarray([[1, 2, 0], [2, 0, 1]], dtype=np.int32)
        assert derive_prefilter(Dfa(table, 0, [0])) is None

    def test_accepting_home_rejected(self):
        """All-self-loop machine whose only state accepts: skipping would
        hide reports, so anchor soundness must refuse it."""
        table = np.zeros((4, 1), dtype=np.int32)
        assert derive_prefilter(Dfa(table, 0, [0])) is None

    def test_memoized_by_fingerprint(self, literal_dfa):
        assert certify_prefilter(literal_dfa) is certify_prefilter(literal_dfa)

    def test_summary_is_envelope_stable(self, literal_dfa):
        a = derive_prefilter(literal_dfa).summary()
        b = derive_prefilter(literal_dfa).summary()
        assert a == b
        assert set(a) == {"home", "skip_width", "n_anchors", "anchor_digest"}


class TestLastReset:
    def test_no_hits_long_segment(self):
        assert _last_reset(np.asarray([], dtype=np.int64), 10, 3) == (True, 10)

    def test_no_hits_short_segment(self):
        assert _last_reset(np.asarray([], dtype=np.int64), 2, 3) == (False, 0)

    def test_trailing_run_qualifies(self):
        hits = np.asarray([0, 1, 4], dtype=np.int64)
        assert _last_reset(hits, 10, 3) == (True, 10)

    def test_interior_gap(self):
        # gap between 1 and 7 is 5 >= 3; walk resumes at the next hit
        hits = np.asarray([0, 1, 7, 9], dtype=np.int64)
        assert _last_reset(hits, 10, 3) == (True, 7)

    def test_leading_run(self):
        hits = np.asarray([5, 6, 7, 8, 9], dtype=np.int64)
        assert _last_reset(hits, 10, 3) == (True, 5)

    def test_dense_hits_not_proven(self):
        hits = np.arange(10, dtype=np.int64)
        assert _last_reset(hits, 10, 3) == (False, 0)


class TestScanEquivalence:
    @pytest.mark.parametrize("density,adversarial", [
        (0.0, False),
        (0.002, False),
        (0.05, False),
        (0.3, True),
        (1.0, True),
    ])
    def test_grid_bit_identical_to_dense(
        self, literal_dfa, literal_patterns_fixture, density, adversarial
    ):
        payload = literal_payload(
            literal_patterns_fixture, 20000, match_density=density,
            seed=13, adversarial=adversarial,
        )
        seg = np.frombuffer(payload, dtype=np.uint8)
        bounds = even_boundaries(seg.size, 8)
        segments = [seg[a:b] for a, b in bounds]
        partition = _partition(literal_dfa)
        tables = derive_prefilter(literal_dfa)
        grid, stats = run_segments_prefilter(
            literal_dfa, partition, segments, tables
        )
        want_grid, want_stats = run_segments_dense(
            literal_dfa, partition, [s.astype(np.int64) for s in segments]
        )
        assert stats["collapses"] == want_stats["collapses"]
        for got_fn, want_fn in zip(grid, want_grid):
            for got, want in zip(got_fn, want_fn):
                assert got.converged == want.converged
                assert got.state == want.state
                assert np.array_equal(got.states, want.states)

    @pytest.mark.parametrize("density,adversarial", [
        (0.0, False), (0.01, False), (0.5, True),
    ])
    def test_scalar_scan_matches_oracle(
        self, literal_dfa, literal_patterns_fixture, density, adversarial
    ):
        payload = literal_payload(
            literal_patterns_fixture, 5000, match_density=density,
            seed=29, adversarial=adversarial,
        )
        seg = np.frombuffer(payload, dtype=np.uint8)
        tables = derive_prefilter(literal_dfa)
        for start in (None, 0, literal_dfa.num_states - 1):
            final, walked = prefilter_scan_scalar(
                literal_dfa, tables, seg, start_state=start
            )
            assert final == literal_dfa.run(seg, state=start)
            assert 0 <= walked <= seg.size

    def test_end_to_end_matches_dense(
        self, literal_dfa, literal_patterns_fixture
    ):
        payload = literal_payload(
            literal_patterns_fixture, 30000, match_density=0.001, seed=3
        )
        partition = _partition(literal_dfa)
        pre = software_cse_scan(
            literal_dfa, payload, partition, n_segments=6, backend="prefilter"
        )
        den = software_cse_scan(
            literal_dfa, payload, partition, n_segments=6, backend="dense"
        )
        assert pre.backend == "prefilter"
        assert pre.final_state == den.final_state == literal_dfa.run(
            np.frombuffer(payload, dtype=np.uint8)
        )

    def test_auto_picks_prefilter_on_literal_machine(
        self, literal_dfa, literal_patterns_fixture
    ):
        payload = literal_payload(literal_patterns_fixture, 4096, seed=1)
        run = software_cse_scan(
            literal_dfa, payload, _partition(literal_dfa),
            n_segments=4, backend="auto",
        )
        assert run.backend == "prefilter"
        assert run.requested_backend == "auto"

    @given(st.integers(0, 2**32 - 1), st.sampled_from([0.0, 0.01, 0.6]),
           st.booleans(), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_density_sweep(self, seed, density, adversarial,
                                      n_segments):
        """prefilter == dense == lockstep == python across densities."""
        patterns = generate_ruleset("LiteralHeavy", 4, 17)
        dfa = compile_ruleset(patterns)
        payload = literal_payload(
            patterns, 2000, match_density=density, seed=seed,
            adversarial=adversarial,
        )
        partition = _partition(dfa, seed=seed % 97)
        finals = {
            backend: software_cse_scan(
                dfa, payload, partition, n_segments=n_segments,
                backend=backend,
            ).final_state
            for backend in ("python", "lockstep", "dense", "prefilter")
        }
        want = dfa.run(np.frombuffer(payload, dtype=np.uint8))
        assert set(finals.values()) == {want}


class TestFallback:
    def test_uncertifiable_request_degrades_to_dense(self, random_dfa_8, rng):
        assert certify_prefilter(random_dfa_8) is None
        word = rng.integers(0, 4, 3000)
        partition = StatePartition.trivial(random_dfa_8.num_states)
        run = software_cse_scan(
            random_dfa_8, word, partition, n_segments=4, backend="prefilter"
        )
        from repro.kernels import native_available

        expected = "native" if native_available() else "dense"
        assert run.backend == expected
        assert run.final_state == random_dfa_8.run(word)

    def test_batch_fallback_on_uncertifiable(self, random_dfa_8, rng):
        word = rng.integers(0, 4, 1200)
        partition = StatePartition.trivial(random_dfa_8.num_states)
        segments = [word[a:b] for a, b in even_boundaries(word.size, 4)]
        got = run_segments_batch(
            random_dfa_8, partition, segments, backend="prefilter"
        )
        want = run_segments_batch(
            random_dfa_8, partition, segments, backend="dense"
        )
        for g_fn, w_fn in zip(got, want):
            for g, w in zip(g_fn.outcomes, w_fn.outcomes):
                assert g.state == w.state
                assert np.array_equal(g.states, w.states)

    def test_all_anchor_segments_fall_back_inside_kernel(
        self, literal_dfa, literal_patterns_fixture
    ):
        """A payload of pure anchor bytes has no skippable run: every
        segment must route through dense and still be exact."""
        tables = derive_prefilter(literal_dfa)
        anchors = tables.anchors.astype(np.uint8)
        rng = np.random.default_rng(2)
        seg = anchors[rng.integers(0, anchors.size, 2000)]
        partition = _partition(literal_dfa)
        segments = [seg[a:b] for a, b in even_boundaries(seg.size, 4)]
        grid, stats = run_segments_prefilter(
            literal_dfa, partition, segments, tables
        )
        assert stats["fallback_segments"] == len(segments)
        assert stats["skipped_bytes"] == 0
        want, _ = run_segments_dense(
            literal_dfa, partition, [s.astype(np.int64) for s in segments]
        )
        for got_fn, want_fn in zip(grid, want):
            for g, w in zip(got_fn, want_fn):
                assert g.state == w.state


class TestVerifierDiagnostics:
    def _tables(self, dfa):
        t = derive_prefilter(dfa)
        assert t is not None
        return t

    def test_malformed_lut_is_k130(self, literal_dfa):
        t = self._tables(literal_dfa)
        bad = PrefilterTables(
            t.home, t.skip_width, t.anchor_lut[:10],
            t.num_states, t.alphabet_size,
        )
        diags = verify_prefilter(bad, literal_dfa)
        assert [d.code for d in diags] == ["K130"]

    def test_home_out_of_range_is_k130(self, literal_dfa):
        t = self._tables(literal_dfa)
        bad = PrefilterTables(
            literal_dfa.num_states, t.skip_width, t.anchor_lut,
            t.num_states, t.alphabet_size,
        )
        assert [d.code for d in verify_prefilter(bad, literal_dfa)] == ["K130"]

    def test_dropped_anchor_is_k131(self, literal_dfa):
        t = self._tables(literal_dfa)
        lut = t.anchor_lut.copy()
        lut[int(t.anchors[0])] = False
        bad = PrefilterTables(
            t.home, t.skip_width, lut, t.num_states, t.alphabet_size
        )
        codes = {d.code for d in verify_prefilter(bad, literal_dfa)}
        assert "K131" in codes

    def test_understated_skip_width_is_k132(self, literal_dfa):
        t = self._tables(literal_dfa)
        if t.skip_width <= 1:
            pytest.skip("machine absorbs in one step; width cannot be understated")
        bad = PrefilterTables(
            t.home, 1, t.anchor_lut, t.num_states, t.alphabet_size
        )
        codes = {d.code for d in verify_prefilter(bad, literal_dfa)}
        assert "K132" in codes

    def test_foreign_certificate_is_k130(self, literal_dfa):
        """A certificate with self-consistent but wrong content (anchor
        added) fails the re-derivation check."""
        t = self._tables(literal_dfa)
        lut = t.anchor_lut.copy()
        extra = int(np.flatnonzero(~lut)[0])
        lut[extra] = True
        bad = PrefilterTables(
            t.home, t.skip_width, lut, t.num_states, t.alphabet_size
        )
        codes = {d.code for d in verify_prefilter(bad, literal_dfa)}
        assert "K130" in codes
        assert not has_errors(verify_prefilter(t, literal_dfa))


class TestArtifactEnvelope:
    def test_roundtrip_with_prefilter(self, literal_dfa, tmp_path):
        from repro.compilecache import compile_dfa
        from repro.compilecache.store import load_artifact, save_artifact

        compiled = compile_dfa(literal_dfa, backend="prefilter", n_segments=4)
        assert compiled.backend == "prefilter"
        assert compiled.prefilter_tables() is not None
        save_artifact(compiled, tmp_path)
        loaded = load_artifact(tmp_path, compiled.key)
        assert loaded is not None
        assert loaded.prefilter_tables().summary() == \
            compiled.prefilter_tables().summary()

    def test_envelope_tamper_rejected(self, literal_dfa, tmp_path):
        import pickle

        from repro.compilecache import compile_dfa
        from repro.compilecache.store import (
            ArtifactValidationError,
            artifact_path,
            load_artifact,
            save_artifact,
        )

        compiled = compile_dfa(literal_dfa, backend="prefilter", n_segments=4)
        save_artifact(compiled, tmp_path)
        path = artifact_path(tmp_path, compiled.key)
        payload = pickle.loads(path.read_bytes())
        payload["prefilter"]["skip_width"] += 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ArtifactValidationError, match="prefilter"):
            load_artifact(tmp_path, compiled.key)

    def test_verify_artifact_file_flags_tamper_as_k133(
        self, literal_dfa, tmp_path
    ):
        import pickle

        from repro.check import verify_artifact_file
        from repro.compilecache import compile_dfa
        from repro.compilecache.store import artifact_path, save_artifact

        compiled = compile_dfa(literal_dfa, backend="prefilter", n_segments=4)
        save_artifact(compiled, tmp_path)
        path = artifact_path(tmp_path, compiled.key)
        assert not has_errors(verify_artifact_file(path))
        payload = pickle.loads(path.read_bytes())
        payload["prefilter"] = None
        path.write_bytes(pickle.dumps(payload))
        codes = {d.code for d in verify_artifact_file(path)}
        assert "K133" in codes
