"""Shared fixtures: small automata with known-by-hand behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.automata.dfa import Dfa
from repro.automata.builders import literal_matcher_dfa, random_dfa
from repro.regex.compile import compile_ruleset


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def mod3_dfa():
    """DFA over {0,1} computing (2*state + bit) mod 3; accepts multiples of 3.

    A permutation-free but non-trivially converging machine with a fully
    understood transition structure.
    """
    table = np.zeros((2, 3), dtype=np.int32)
    for q in range(3):
        table[0, q] = (2 * q) % 3
        table[1, q] = (2 * q + 1) % 3
    return Dfa(table, 0, [0])


@pytest.fixture
def ab_matcher():
    """Scan DFA reporting every occurrence of the literal 'ab'."""
    return literal_matcher_dfa([ord("a"), ord("b")], 256)


@pytest.fixture
def small_ruleset_dfa():
    """A realistic multi-pattern scan DFA used across engine tests."""
    return compile_ruleset(["cat", "dog", "fi(sh|ne)", "h[ao]t", "gr[ae]y{1,2}"])


@pytest.fixture
def random_dfa_8(rng):
    """A uniformly random 8-state DFA over a 4-symbol alphabet."""
    return random_dfa(8, 4, rng)


def make_text(words, repeats=30):
    """Helper: realistic text input as bytes."""
    return (" ".join(words) + " ").encode() * repeats
